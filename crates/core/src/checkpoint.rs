//! Automatic checkpoint instrumentation (paper §VIII).
//!
//! "Quantum programs usually operate on a finite number of qubits … thus
//! the system stays in a pure state for every instruction. As a result,
//! our systematic assertion scheme can essentially assert the state after
//! every instruction." This module automates that workflow: given a
//! program and a set of instruction positions, it computes the expected
//! pure state at each position (the paper's "precalculated state
//! vectors"), inserts a precise assertion there, and returns the handles
//! for localisation analysis.

use crate::assertion::{insert_assertion, AssertionHandle, Design};
use crate::spec::StateSpec;
use crate::AssertionError;
use qra_circuit::{Circuit, Operation};
use qra_math::CMatrix;

/// Where to place checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointPlacement {
    /// After the instructions with these indices (0-based) in the original
    /// program.
    AfterInstructions(Vec<usize>),
    /// After every `stride`-th instruction (stride ≥ 1), plus the end.
    EveryN(usize),
    /// Only at the very end of the program.
    EndOnly,
}

/// Options for [`instrument`].
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Assertion design for every checkpoint.
    pub design: Design,
    /// Placement policy.
    pub placement: CheckpointPlacement,
    /// Restrict assertions to these qubits; the expected state is then the
    /// reduced density matrix (a mixed-state assertion) instead of the full
    /// pure state. `None` asserts all program qubits.
    pub qubits: Option<Vec<usize>>,
    /// Reuse a shared ancilla pool across checkpoints (ancillas are reset
    /// after each checkpoint's measurements). Without reuse every
    /// checkpoint appends fresh ancillas, which exhausts the register for
    /// dense placements; with reuse the circuit needs only
    /// `max(per-checkpoint ancillas)` extra qubits but requires a
    /// simulator with mid-circuit reset support (both of ours have it).
    pub reuse_ancillas: bool,
}

impl Default for CheckpointOptions {
    fn default() -> Self {
        Self {
            design: Design::Auto,
            placement: CheckpointPlacement::EndOnly,
            qubits: None,
            reuse_ancillas: false,
        }
    }
}

/// A checkpointed program: the instrumented circuit plus per-checkpoint
/// handles (in program order).
#[derive(Debug, Clone)]
pub struct InstrumentedProgram {
    /// The program with assertions spliced in.
    pub circuit: Circuit,
    /// One handle per checkpoint, ordered by position.
    pub handles: Vec<AssertionHandle>,
    /// The instruction index each checkpoint follows.
    pub positions: Vec<usize>,
}

/// Instruments `program` with precise assertions of its own expected
/// states at the chosen positions.
///
/// The expected states are computed by evolving the unitary prefix — the
/// paper's pre-calculated `V1…Vn` vectors. The program must be
/// measurement-free up to the last checkpoint.
///
/// # Errors
///
/// * [`AssertionError::Circuit`] when a prefix contains measurements;
/// * [`AssertionError::Unassertable`] when a reduced checkpoint state has
///   full rank;
/// * synthesis failures from assertion construction.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_core::checkpoint::{instrument, CheckpointOptions, CheckpointPlacement};
/// use qra_core::Design;
/// use qra_sim::StatevectorSimulator;
///
/// let mut program = Circuit::new(2);
/// program.h(0).cx(0, 1);
/// let instrumented = instrument(&program, &CheckpointOptions {
///     design: Design::Swap,
///     placement: CheckpointPlacement::EveryN(1),
///     qubits: None,
///     reuse_ancillas: false,
/// })?;
/// let counts = StatevectorSimulator::with_seed(1).run(&instrumented.circuit, 512)?;
/// for handle in &instrumented.handles {
///     assert_eq!(handle.error_rate(&counts), 0.0);
/// }
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn instrument(
    program: &Circuit,
    options: &CheckpointOptions,
) -> Result<InstrumentedProgram, AssertionError> {
    instrument_against(program, program, options)
}

/// Instruments `program` with assertions of the states a **reference**
/// implementation would produce at the same positions — the debugging
/// workflow of §IX: the reference encodes the programmer's intent (or a
/// known-good version), the program under test may contain bugs, and the
/// first failing checkpoint brackets the faulty gates.
///
/// The two circuits must have the same width and instruction count
/// (position `i` refers to both).
///
/// # Errors
///
/// * [`AssertionError::InvalidSpec`] when the shapes disagree;
/// * everything [`instrument`] can return.
pub fn instrument_against(
    program: &Circuit,
    reference: &Circuit,
    options: &CheckpointOptions,
) -> Result<InstrumentedProgram, AssertionError> {
    if reference.num_qubits() != program.num_qubits() || reference.len() != program.len() {
        return Err(AssertionError::InvalidSpec {
            reason: format!(
                "reference shape ({} qubits, {} instructions) differs from program ({}, {})",
                reference.num_qubits(),
                reference.len(),
                program.num_qubits(),
                program.len()
            ),
        });
    }
    instrument_impl(program, reference, options)
}

fn instrument_impl(
    program: &Circuit,
    reference: &Circuit,
    options: &CheckpointOptions,
) -> Result<InstrumentedProgram, AssertionError> {
    let total = program.len();
    let positions: Vec<usize> = match &options.placement {
        CheckpointPlacement::AfterInstructions(list) => {
            let mut v: Vec<usize> = list.iter().copied().filter(|&i| i < total).collect();
            v.sort_unstable();
            v.dedup();
            v
        }
        CheckpointPlacement::EveryN(stride) => {
            let stride = (*stride).max(1);
            let mut v: Vec<usize> = (0..total).filter(|i| (i + 1) % stride == 0).collect();
            if total > 0 && v.last() != Some(&(total - 1)) {
                v.push(total - 1);
            }
            v
        }
        CheckpointPlacement::EndOnly => {
            if total == 0 {
                vec![]
            } else {
                vec![total - 1]
            }
        }
    };

    let n = program.num_qubits();
    let all_qubits: Vec<usize> = (0..n).collect();
    let asserted = options.qubits.as_ref().unwrap_or(&all_qubits);

    let mut out = Circuit::with_clbits(n, program.num_clbits());
    let mut handles = Vec::with_capacity(positions.len());
    let mut prefix = Circuit::new(n);

    let mut next = positions.iter().copied().peekable();
    for (idx, inst) in program.instructions().iter().enumerate() {
        let ref_inst = &reference.instructions()[idx];
        // Replay the instruction into the output; the *reference*
        // instruction feeds the expected-state prefix.
        match &inst.operation {
            Operation::Gate(g) => {
                out.append(g.clone(), &inst.qubits)?;
                if let Operation::Gate(rg) = &ref_inst.operation {
                    prefix.append(rg.clone(), &ref_inst.qubits)?;
                } else {
                    return Err(AssertionError::InvalidSpec {
                        reason: format!("reference instruction {idx} is not a gate"),
                    });
                }
            }
            Operation::Barrier => {
                out.barrier_on(inst.qubits.clone());
            }
            Operation::Measure => {
                if next.peek().is_some() {
                    return Err(AssertionError::Circuit(
                        qra_circuit::CircuitError::NonUnitaryOperation {
                            operation: "measure before the last checkpoint",
                        },
                    ));
                }
                out.measure(inst.qubits[0], inst.clbits[0])?;
            }
            Operation::Reset => {
                if next.peek().is_some() {
                    return Err(AssertionError::Circuit(
                        qra_circuit::CircuitError::NonUnitaryOperation {
                            operation: "reset before the last checkpoint",
                        },
                    ));
                }
                out.reset(inst.qubits[0])?;
            }
        }
        if next.peek() == Some(&idx) {
            next.next();
            let state = prefix.statevector()?;
            let spec = if asserted.len() == n {
                StateSpec::pure(state)?
            } else {
                let rho = CMatrix::outer(&state, &state);
                let traced: Vec<usize> = (0..n).filter(|q| !asserted.contains(q)).collect();
                StateSpec::mixed(rho.partial_trace(&traced)?)?
            };
            let handle = if options.reuse_ancillas {
                attach_pooled(&mut out, asserted, &spec, options.design, n)?
            } else {
                insert_assertion(&mut out, asserted, &spec, options.design)?
            };
            handles.push(handle);
        }
    }

    Ok(InstrumentedProgram {
        circuit: out,
        handles,
        positions,
    })
}

/// Composes an assertion using the shared ancilla pool at qubits `n..`,
/// resetting the pool afterwards so the next checkpoint can reuse it.
fn attach_pooled(
    out: &mut Circuit,
    asserted: &[usize],
    spec: &StateSpec,
    design: Design,
    pool_base: usize,
) -> Result<crate::assertion::AssertionHandle, AssertionError> {
    let assertion = crate::assertion::synthesize_assertion(spec, design)?;
    let needed = assertion.num_ancillas();
    out.expand_qubits(pool_base + needed);
    let cl_base = out.num_clbits();
    out.expand_clbits(cl_base + assertion.num_clbits());

    let mut qubit_map: Vec<usize> = asserted.to_vec();
    qubit_map.extend(pool_base..pool_base + needed);
    let clbit_map: Vec<usize> = (cl_base..cl_base + assertion.num_clbits()).collect();
    out.compose(assertion.circuit(), &qubit_map, &clbit_map)?;
    for a in pool_base..pool_base + needed {
        out.reset(a)?;
    }
    Ok(crate::assertion::AssertionHandle {
        design: assertion.design(),
        ancilla_qubits: (pool_base..pool_base + needed).collect(),
        clbits: clbit_map,
        counts: assertion.gate_counts(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_sim::StatevectorSimulator;

    fn ghz() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c
    }

    fn run(c: &Circuit) -> qra_sim::Counts {
        StatevectorSimulator::with_seed(1).run(c, 2048).unwrap()
    }

    #[test]
    fn every_instruction_checkpoints_pass_on_correct_program() {
        let instrumented = instrument(
            &ghz(),
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::EveryN(1),
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        assert_eq!(instrumented.handles.len(), 3);
        assert_eq!(instrumented.positions, vec![0, 1, 2]);
        let counts = run(&instrumented.circuit);
        for h in &instrumented.handles {
            assert_eq!(h.error_rate(&counts), 0.0);
        }
    }

    #[test]
    fn checkpoints_localize_an_injected_bug() {
        // Buggy GHZ: CX fan-out reversed. Instrument the buggy program
        // against the CORRECT reference; the first failing checkpoint must
        // bracket the faulty gates.
        let reference = ghz();
        let mut buggy = Circuit::new(3);
        buggy.h(0).cx(1, 2).cx(0, 1);
        let instrumented = instrument_against(
            &buggy,
            &reference,
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::EveryN(1),
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        let counts = run(&instrumented.circuit);
        let report = crate::AssertionReport::from_counts(&counts, &instrumented.handles);
        // Checkpoint 0 (after H) passes; checkpoint 1 (after the swapped
        // CX) is the first failure.
        assert_eq!(report.first_failing(0.01), Some(1));
    }

    #[test]
    fn instrument_against_rejects_shape_mismatch() {
        let a = ghz();
        let b = Circuit::new(2);
        assert!(matches!(
            instrument_against(&a, &b, &CheckpointOptions::default()),
            Err(AssertionError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn instrument_against_clean_program_passes_everywhere() {
        let reference = ghz();
        let instrumented = instrument_against(
            &ghz(),
            &reference,
            &CheckpointOptions {
                design: Design::Ndd,
                placement: CheckpointPlacement::EveryN(1),
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        let counts = run(&instrumented.circuit);
        for h in &instrumented.handles {
            assert_eq!(h.error_rate(&counts), 0.0);
        }
    }

    #[test]
    fn end_only_and_stride_placements() {
        let end = instrument(&ghz(), &CheckpointOptions::default()).unwrap();
        assert_eq!(end.positions, vec![2]);
        let strided = instrument(
            &ghz(),
            &CheckpointOptions {
                design: Design::Auto,
                placement: CheckpointPlacement::EveryN(2),
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        assert_eq!(strided.positions, vec![1, 2]);
    }

    #[test]
    fn subset_checkpoints_use_mixed_assertions() {
        let instrumented = instrument(
            &ghz(),
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::EndOnly,
                qubits: Some(vec![1, 2]),
                reuse_ancillas: false,
            },
        )
        .unwrap();
        let counts = run(&instrumented.circuit);
        assert_eq!(instrumented.handles[0].error_rate(&counts), 0.0);
    }

    #[test]
    fn rejects_measurement_before_checkpoint() {
        let mut program = Circuit::with_clbits(1, 1);
        program.h(0);
        program.measure(0, 0).unwrap();
        program.h(0);
        let err = instrument(
            &program,
            &CheckpointOptions {
                design: Design::Auto,
                placement: CheckpointPlacement::EveryN(1),
                qubits: None,
                reuse_ancillas: false,
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn ancilla_pool_reuse_bounds_the_register() {
        // Dense SWAP checkpoints on GHZ: without reuse 3 ancillas per
        // checkpoint accumulate; with reuse the register stays at
        // program + max-per-checkpoint.
        let opts = CheckpointOptions {
            design: Design::Swap,
            placement: CheckpointPlacement::EveryN(1),
            qubits: None,
            reuse_ancillas: true,
        };
        let instrumented = instrument(&ghz(), &opts).unwrap();
        assert_eq!(
            instrumented.circuit.num_qubits(),
            6,
            "3 program qubits + 3 pooled ancillas"
        );
        let counts = run(&instrumented.circuit);
        for h in &instrumented.handles {
            assert_eq!(h.error_rate(&counts), 0.0);
        }
        // The non-reusing variant needs 3 fresh ancillas per checkpoint.
        let fresh = instrument(
            &ghz(),
            &CheckpointOptions {
                reuse_ancillas: false,
                ..opts
            },
        )
        .unwrap();
        assert_eq!(fresh.circuit.num_qubits(), 3 + 3 * 3);
    }

    #[test]
    fn ancilla_pool_reuse_still_localizes_bugs() {
        let reference = ghz();
        let mut buggy = Circuit::new(3);
        buggy.h(0).cx(1, 2).cx(0, 1);
        let instrumented = instrument_against(
            &buggy,
            &reference,
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::EveryN(1),
                qubits: None,
                reuse_ancillas: true,
            },
        )
        .unwrap();
        let counts = run(&instrumented.circuit);
        let report = crate::AssertionReport::from_counts(&counts, &instrumented.handles);
        assert_eq!(report.first_failing(0.01), Some(1));
    }

    #[test]
    fn empty_program_yields_no_checkpoints() {
        let instrumented = instrument(&Circuit::new(2), &CheckpointOptions::default()).unwrap();
        assert!(instrumented.handles.is_empty());
        assert!(instrumented.positions.is_empty());
    }

    #[test]
    fn trailing_measurements_allowed_after_last_checkpoint() {
        let mut program = ghz();
        program.measure_all();
        let instrumented = instrument(
            &program,
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::AfterInstructions(vec![2]),
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        let counts = run(&instrumented.circuit);
        assert_eq!(instrumented.handles[0].error_rate(&counts), 0.0);
        // Data measurements still present.
        assert!(instrumented.circuit.measure_count() >= 3);
    }
}
