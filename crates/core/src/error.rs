//! Error types for assertion synthesis.

use qra_circuit::CircuitError;
use qra_math::MathError;
use qra_sim::SimError;
use std::error::Error;
use std::fmt;

/// Error produced when building or analysing assertions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AssertionError {
    /// The mixed state has full rank `t = 2ⁿ`: every basis state is
    /// "correct", so there is nothing to assert (paper §IV-C corner case).
    Unassertable {
        /// Number of qubits under test.
        num_qubits: usize,
    },
    /// The state specification is empty or malformed.
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// The qubit list passed to `insert_assertion` is invalid.
    InvalidQubitList {
        /// Human-readable reason.
        reason: String,
    },
    /// The requested design cannot assert the given specification (used by
    /// the baseline schemes with limited coverage).
    Unsupported {
        /// The scheme that declined.
        scheme: &'static str,
        /// Why it declined.
        reason: String,
    },
    /// Every candidate design failed during [`crate::Design::Auto`]
    /// selection; one entry per candidate, in the order they were tried,
    /// so no failure is hidden behind the last one.
    AutoSelectionFailed {
        /// `(design, error)` for each candidate that failed.
        failures: Vec<(crate::Design, Box<AssertionError>)>,
    },
    /// An underlying numerical operation failed.
    Math(MathError),
    /// An underlying circuit operation failed.
    Circuit(CircuitError),
    /// An underlying simulation failed.
    Sim(SimError),
}

impl fmt::Display for AssertionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssertionError::Unassertable { num_qubits } => write!(
                f,
                "mixed state over {num_qubits} qubits has full rank 2^n; every state is \"correct\" and no assertion can distinguish it"
            ),
            AssertionError::InvalidSpec { reason } => write!(f, "invalid state spec: {reason}"),
            AssertionError::InvalidQubitList { reason } => {
                write!(f, "invalid qubit list: {reason}")
            }
            AssertionError::Unsupported { scheme, reason } => {
                write!(f, "{scheme} cannot assert this state: {reason}")
            }
            AssertionError::AutoSelectionFailed { failures } => {
                write!(f, "auto design selection failed: ")?;
                for (i, (d, e)) in failures.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{d}: {e}")?;
                }
                Ok(())
            }
            AssertionError::Math(e) => write!(f, "numerical error: {e}"),
            AssertionError::Circuit(e) => write!(f, "circuit error: {e}"),
            AssertionError::Sim(e) => write!(f, "simulation error: {e}"),
        }
    }
}

impl Error for AssertionError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AssertionError::Math(e) => Some(e),
            AssertionError::Circuit(e) => Some(e),
            AssertionError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for AssertionError {
    fn from(e: MathError) -> Self {
        AssertionError::Math(e)
    }
}

impl From<CircuitError> for AssertionError {
    fn from(e: CircuitError) -> Self {
        AssertionError::Circuit(e)
    }
}

impl From<SimError> for AssertionError {
    fn from(e: SimError) -> Self {
        AssertionError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            AssertionError::Unassertable { num_qubits: 3 },
            AssertionError::InvalidSpec {
                reason: "empty".into(),
            },
            AssertionError::InvalidQubitList {
                reason: "dup".into(),
            },
            AssertionError::Unsupported {
                scheme: "primitive",
                reason: "ghz".into(),
            },
            AssertionError::AutoSelectionFailed {
                failures: vec![(
                    crate::Design::Swap,
                    Box::new(AssertionError::Unassertable { num_qubits: 2 }),
                )],
            },
            AssertionError::Math(MathError::LinearlyDependent),
            AssertionError::Circuit(CircuitError::DuplicateQubit { qubit: 0 }),
            AssertionError::Sim(SimError::InvalidProbability { value: 2.0 }),
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[5].source().is_some());
        assert!(errs[0].source().is_none());
        assert!(errs[4].to_string().contains("swap"));
    }
}
