//! Assertion state specifications and their orthonormal decomposition.
//!
//! All three assertion designs start the same way (paper §IV-B/C, §V):
//! turn the specification into a set of `t` orthonormal "correct" states,
//! complete them into a full basis, and treat the remaining `2ⁿ − t` basis
//! states as "incorrect". [`StateSpec::correct_states`] performs that
//! reduction: pure states pass through, density matrices are
//! eigendecomposed, and state sets are averaged into a density matrix
//! first (approximate assertion, §IV-D).

use crate::AssertionError;
use qra_math::{complete_basis, hermitian_eigen, CMatrix, CVector, C64};

/// Eigenvalue threshold below which a density-matrix eigenstate is
/// considered absent (rank counting).
pub const RANK_TOL: f64 = 1e-9;

/// What to assert: a precise pure state, a precise mixed state, or an
/// approximate set of states.
#[derive(Debug, Clone, PartialEq)]
pub enum StateSpec {
    /// A pure state vector (precise assertion).
    Pure(CVector),
    /// A density matrix (precise mixed-state assertion).
    Mixed(CMatrix),
    /// A set of pure states (approximate assertion — membership check).
    Set(Vec<CVector>),
}

impl StateSpec {
    /// Creates a pure-state spec, validating normalisability and dimension.
    ///
    /// # Errors
    ///
    /// Returns [`AssertionError::InvalidSpec`] for a zero vector or a
    /// non-power-of-two dimension.
    pub fn pure(state: CVector) -> Result<Self, AssertionError> {
        qra_math::qubits_for_dim(state.len()).map_err(|e| AssertionError::InvalidSpec {
            reason: e.to_string(),
        })?;
        let normalized = state
            .normalized()
            .map_err(|e| AssertionError::InvalidSpec {
                reason: e.to_string(),
            })?;
        Ok(StateSpec::Pure(normalized))
    }

    /// Creates a mixed-state spec, validating the density matrix.
    ///
    /// # Errors
    ///
    /// Returns [`AssertionError::InvalidSpec`] for non-Hermitian or
    /// non-unit-trace matrices.
    pub fn mixed(rho: CMatrix) -> Result<Self, AssertionError> {
        rho.validate_density(1e-6)
            .map_err(|e| AssertionError::InvalidSpec {
                reason: e.to_string(),
            })?;
        qra_math::qubits_for_dim(rho.rows()).map_err(|e| AssertionError::InvalidSpec {
            reason: e.to_string(),
        })?;
        Ok(StateSpec::Mixed(rho))
    }

    /// Creates an approximate (set) spec from one or more pure states.
    ///
    /// # Errors
    ///
    /// Returns [`AssertionError::InvalidSpec`] for an empty set, mixed
    /// dimensions, or unnormalisable members.
    pub fn set(states: Vec<CVector>) -> Result<Self, AssertionError> {
        if states.is_empty() {
            return Err(AssertionError::InvalidSpec {
                reason: "state set is empty".into(),
            });
        }
        let dim = states[0].len();
        qra_math::qubits_for_dim(dim).map_err(|e| AssertionError::InvalidSpec {
            reason: e.to_string(),
        })?;
        let mut normalized = Vec::with_capacity(states.len());
        for s in states {
            if s.len() != dim {
                return Err(AssertionError::InvalidSpec {
                    reason: "state set members have differing dimensions".into(),
                });
            }
            normalized.push(s.normalized().map_err(|e| AssertionError::InvalidSpec {
                reason: e.to_string(),
            })?);
        }
        Ok(StateSpec::Set(normalized))
    }

    /// The Hilbert-space dimension of the specification.
    pub fn dim(&self) -> usize {
        match self {
            StateSpec::Pure(v) => v.len(),
            StateSpec::Mixed(m) => m.rows(),
            StateSpec::Set(v) => v[0].len(),
        }
    }

    /// The number of qubits under test.
    pub fn num_qubits(&self) -> usize {
        qra_math::qubits_for_dim(self.dim()).expect("validated at construction")
    }

    /// Returns `true` for the approximate (set) form.
    pub fn is_approximate(&self) -> bool {
        matches!(self, StateSpec::Set(_))
    }

    /// The density matrix this spec asserts membership in: `|ψ⟩⟨ψ|` for
    /// pure states, the matrix itself for mixed, the equal mixture for
    /// sets.
    pub fn density(&self) -> CMatrix {
        match self {
            StateSpec::Pure(v) => CMatrix::outer(v, v),
            StateSpec::Mixed(m) => m.clone(),
            StateSpec::Set(states) => {
                let dim = states[0].len();
                let p = C64::from(1.0 / states.len() as f64);
                let mut acc = CMatrix::zeros(dim, dim);
                for s in states {
                    acc = acc
                        .add(&CMatrix::outer(s, s).scale(p))
                        .expect("shapes agree");
                }
                acc
            }
        }
    }

    /// Reduces the specification to the paper's canonical form: `t`
    /// orthonormal correct states completed to a full basis.
    ///
    /// # Errors
    ///
    /// * [`AssertionError::Unassertable`] when `t = 2ⁿ`;
    /// * [`AssertionError::Math`] on numerical failure.
    pub fn correct_states(&self) -> Result<CorrectStates, AssertionError> {
        let dim = self.dim();
        let n = self.num_qubits();
        let correct: Vec<CVector> = match self {
            StateSpec::Pure(v) => vec![v.clone()],
            _ => {
                let rho = self.density();
                let eig = hermitian_eigen(&rho)?;
                eig.values
                    .iter()
                    .zip(eig.vectors)
                    .filter(|(&val, _)| val > RANK_TOL)
                    .map(|(_, v)| v)
                    .collect()
            }
        };
        let t = correct.len();
        if t == dim {
            return Err(AssertionError::Unassertable { num_qubits: n });
        }
        debug_assert!(t >= 1, "density matrix must have at least one eigenstate");
        let basis = complete_basis(&correct, dim)?;
        Ok(CorrectStates { basis, t })
    }
}

/// The canonical decomposition: a full orthonormal basis with the `t`
/// "correct" states leading.
#[derive(Debug, Clone)]
pub struct CorrectStates {
    /// Full orthonormal basis of the `2ⁿ`-dimensional space; entries
    /// `0..t` are correct, the rest incorrect.
    pub basis: Vec<CVector>,
    /// The rank `t` (number of correct states).
    pub t: usize,
}

impl CorrectStates {
    /// Hilbert-space dimension.
    pub fn dim(&self) -> usize {
        self.basis.len()
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        qra_math::qubits_for_dim(self.dim()).expect("basis length is a power of two")
    }

    /// The basis-change unitary `W = Σᵢ |ψᵢ⟩⟨i|` whose columns are the
    /// basis states (`W` maps `|i⟩` to `|ψᵢ⟩`; `W†` is the paper's `U⁻¹`).
    pub fn basis_matrix(&self) -> CMatrix {
        let d = self.dim();
        CMatrix::from_fn(d, d, |r, c| self.basis[c].amplitude(r))
    }

    /// The NDD unitary `U = Σ_{i<t} |ψᵢ⟩⟨ψᵢ| − Σ_{i≥t} |ψᵢ⟩⟨ψᵢ|`
    /// (`= 2P_correct − I`).
    pub fn ndd_unitary(&self) -> CMatrix {
        let d = self.dim();
        let mut acc = CMatrix::identity(d).scale(C64::from(-1.0));
        for v in &self.basis[..self.t] {
            let proj = CMatrix::outer(v, v).scale(C64::from(2.0));
            acc = acc.add(&proj).expect("shapes agree");
        }
        acc
    }

    /// Returns `true` when the state `|φ⟩` lies entirely in the correct
    /// subspace (used by tests and the coverage analysis).
    pub fn accepts(&self, phi: &CVector, tol: f64) -> bool {
        let mut in_correct = 0.0;
        for v in &self.basis[..self.t] {
            if let Ok(ip) = v.inner(phi) {
                in_correct += ip.norm_sqr();
            }
        }
        (in_correct - phi.norm() * phi.norm()).abs() <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-8;

    fn ghz() -> CVector {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    }

    #[test]
    fn pure_spec_normalizes() {
        let spec = StateSpec::pure(CVector::from_real(&[3.0, 4.0])).unwrap();
        match &spec {
            StateSpec::Pure(v) => assert!(v.is_normalized(TOL)),
            _ => panic!(),
        }
        assert_eq!(spec.num_qubits(), 1);
        assert!(!spec.is_approximate());
    }

    #[test]
    fn pure_spec_rejects_zero_and_bad_dims() {
        assert!(StateSpec::pure(CVector::zeros(2)).is_err());
        assert!(StateSpec::pure(CVector::from_real(&[1.0, 0.0, 0.0])).is_err());
    }

    #[test]
    fn mixed_spec_validates_density() {
        let rho = CMatrix::from_real(2, 2, &[0.5, 0.0, 0.0, 0.5]);
        assert!(StateSpec::mixed(rho).is_ok());
        let bad_trace = CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert!(StateSpec::mixed(bad_trace).is_err());
    }

    #[test]
    fn set_spec_validation() {
        assert!(StateSpec::set(vec![]).is_err());
        let a = CVector::basis_state(4, 0);
        let b = CVector::basis_state(2, 0);
        assert!(StateSpec::set(vec![a.clone(), b]).is_err());
        let spec = StateSpec::set(vec![a, CVector::basis_state(4, 3)]).unwrap();
        assert!(spec.is_approximate());
        assert_eq!(spec.num_qubits(), 2);
    }

    #[test]
    fn pure_correct_states_has_rank_one() {
        let spec = StateSpec::pure(ghz()).unwrap();
        let cs = spec.correct_states().unwrap();
        assert_eq!(cs.t, 1);
        assert_eq!(cs.dim(), 8);
        assert!(cs.basis[0].approx_eq(&ghz(), TOL));
        assert!(qra_math::gram_schmidt::is_orthonormal(&cs.basis, TOL));
    }

    #[test]
    fn mixed_correct_states_rank_two() {
        // ρ = ½(|00⟩⟨00| + |11⟩⟨11|) — the GHZ trailing-pair mixed state.
        let rho = {
            let a = CVector::basis_state(4, 0);
            let b = CVector::basis_state(4, 3);
            CMatrix::outer(&a, &a)
                .scale(C64::from(0.5))
                .add(&CMatrix::outer(&b, &b).scale(C64::from(0.5)))
                .unwrap()
        };
        let cs = StateSpec::mixed(rho).unwrap().correct_states().unwrap();
        assert_eq!(cs.t, 2);
        // Correct states must span {|00⟩, |11⟩}.
        assert!(cs.accepts(&CVector::basis_state(4, 0), TOL));
        assert!(cs.accepts(&CVector::basis_state(4, 3), TOL));
        assert!(!cs.accepts(&CVector::basis_state(4, 1), TOL));
    }

    #[test]
    fn set_spec_matches_paper_even_parity_example() {
        // §V-C: set {|00⟩, |11⟩} → U = Z⊗Z.
        let spec =
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
        let cs = spec.correct_states().unwrap();
        assert_eq!(cs.t, 2);
        let u = cs.ndd_unitary();
        let z = CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]);
        let zz = z.kron(&z);
        assert!(u.approx_eq(&zz, TOL));
    }

    #[test]
    fn full_rank_is_unassertable() {
        let rho = CMatrix::identity(4).scale(C64::from(0.25));
        let err = StateSpec::mixed(rho).unwrap().correct_states().unwrap_err();
        assert!(matches!(
            err,
            AssertionError::Unassertable { num_qubits: 2 }
        ));
    }

    #[test]
    fn basis_matrix_is_unitary_and_maps_indices() {
        let cs = StateSpec::pure(ghz()).unwrap().correct_states().unwrap();
        let w = cs.basis_matrix();
        assert!(w.is_unitary(TOL));
        let col0 = w.mul_vec(&CVector::basis_state(8, 0));
        assert!(col0.approx_eq(&ghz(), TOL));
    }

    #[test]
    fn ndd_unitary_is_unitary_and_hermitian() {
        let cs = StateSpec::pure(ghz()).unwrap().correct_states().unwrap();
        let u = cs.ndd_unitary();
        assert!(u.is_unitary(TOL));
        assert!(u.is_hermitian(TOL));
        // Eigen-action: U|ghz⟩ = +|ghz⟩; orthogonal states get −1.
        let plus = u.mul_vec(&ghz());
        assert!(plus.approx_eq(&ghz(), TOL));
        let other = u.mul_vec(&CVector::basis_state(8, 1));
        assert!(other.approx_eq(&CVector::basis_state(8, 1).scale(C64::from(-1.0)), TOL));
    }

    #[test]
    fn overlapping_set_members_reduce_rank() {
        // Two identical states → t = 1, not 2.
        let v = CVector::basis_state(2, 1);
        let spec = StateSpec::set(vec![v.clone(), v]).unwrap();
        assert_eq!(spec.correct_states().unwrap().t, 1);
    }

    #[test]
    fn density_of_set_is_valid() {
        let spec = StateSpec::set(vec![
            CVector::basis_state(4, 0),
            CVector::basis_state(4, 1),
            CVector::basis_state(4, 2),
        ])
        .unwrap();
        let rho = spec.density();
        assert!(rho.validate_density(1e-9).is_ok());
        let cs = spec.correct_states().unwrap();
        assert_eq!(cs.t, 3);
    }
}
