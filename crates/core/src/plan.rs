//! Shared planning for the SWAP-based and logical-OR designs.
//!
//! Both designs share the paper's §IV structure: find a unitary `U` whose
//! inverse maps every correct state into the computational subspace with
//! certain qubits pinned to `|0⟩`, check those qubits, and restore with
//! `U`. [`AssertionPlan::build`] handles all the rank cases of §IV-C:
//!
//! * `t = 1` — pure state, `U` from state preparation, all qubits checked;
//! * `t = 2^m ≤ 2^{n−1}` — single assertion checking the leading `n − m`
//!   qubits;
//! * `2^m < t < 2^{m+1}`, `t < 2^{n−1}` — two superset assertions whose
//!   intersection is the correct set;
//! * `2^{n−1} < t < 2ⁿ` — one extension ancilla enlarges the space so the
//!   union of correct and "virtually correct" states has size `2ⁿ`.
//!
//! A *linear-coset fast path* recognises correct sets that are affine
//! subspaces of computational basis states (GHZ-style parity sets) and
//! synthesises `U` as a CNOT/X network, reproducing the paper's hand
//! costs (e.g. 2-CX `U` for the GHZ approximate set `{|000⟩, |111⟩}`).

use crate::spec::CorrectStates;
use crate::AssertionError;
use qra_circuit::synthesis::{prepare_state, unitary_circuit};
use qra_circuit::Circuit;
use qra_math::{CMatrix, CVector, C64};

const TOL: f64 = 1e-9;

/// A single §IV assertion step: invert, check pinned qubits, restore.
#[derive(Debug, Clone)]
pub struct SingleStep {
    /// Local qubit count, including the extension ancilla when present
    /// (local qubit 0 is the extension ancilla in that case).
    pub n_local: usize,
    /// `true` when local qubit 0 is a fresh `|0⟩` extension ancilla rather
    /// than a qubit under test.
    pub has_extension: bool,
    /// Local indices that must read `|0⟩` after `U⁻¹` when the assertion
    /// passes.
    pub checked: Vec<usize>,
    /// The restoring unitary `U` as a circuit over the local qubits.
    pub u: Circuit,
    /// `U⁻¹` as a circuit over the local qubits.
    pub u_inv: Circuit,
}

/// The full plan: one or two [`SingleStep`]s (two for the superset-pair
/// rank case).
#[derive(Debug, Clone)]
pub struct AssertionPlan {
    /// The assertion steps, applied in order.
    pub steps: Vec<SingleStep>,
}

impl AssertionPlan {
    /// Builds the plan for a canonical correct-state decomposition.
    ///
    /// # Errors
    ///
    /// Propagates synthesis failures; `t = 2ⁿ` is rejected earlier by
    /// [`CorrectStates`] construction.
    pub fn build(cs: &CorrectStates) -> Result<AssertionPlan, AssertionError> {
        let dim = cs.dim();
        let n = cs.num_qubits();
        let t = cs.t;
        debug_assert!(t >= 1 && t < dim);

        let half = dim / 2;
        if t == 1 {
            return Ok(AssertionPlan {
                steps: vec![pure_step(cs)?],
            });
        }
        // Product-projector fast path: when the correct subspace factors
        // per qubit (e.g. |++⟩⟨++| ⊗ I for the Deutsch–Jozsa constant set,
        // Fig. 20), `U` is a tensor of one-qubit gates — no entanglers.
        if let Some(step) = try_product_projector(&cs.basis[..t], n)? {
            return Ok(AssertionPlan { steps: vec![step] });
        }
        // Selector-multiplexed fast path: two correct states living in
        // opposite slices of one qubit (the QPE slot-5 set
        // {|++++⟩|0⟩, |θ₄⟩|1⟩} of §IX-A3) synthesise as a controlled pair
        // of state preparations.
        if t == 2 {
            if let Some(step) = try_selector_multiplexed(&cs.basis[..2], n)? {
                return Ok(AssertionPlan { steps: vec![step] });
            }
        }
        if t.is_power_of_two() && t <= half {
            return Ok(AssertionPlan {
                steps: vec![subspace_step(&cs.basis, t, n, false)?],
            });
        }
        if t > half || (dim == 2 && t == 1) {
            // Extension-ancilla case (§IV-C.3): pad with "virtually correct"
            // states |1⟩⊗ψ_j until exactly half of the extended space is
            // correct.
            return Ok(AssertionPlan {
                steps: vec![extension_step(cs)?],
            });
        }
        // Superset pair (§IV-C.2): 2^m < t < 2^{m+1} ≤ half.
        let m_plus = t.next_power_of_two();
        let k = m_plus - t;
        debug_assert!(t + 2 * k <= dim, "superset padding must fit");
        let mut basis1 = cs.basis.clone();
        // S1 keeps order: correct ∪ incorrect[0..k].
        let step1 = subspace_step(&basis1, m_plus, n, false)?;
        // S2: correct ∪ incorrect[k..2k]; swap the pad blocks.
        basis1[t..t + 2 * k].rotate_left(k);
        let step2 = subspace_step(&basis1, m_plus, n, false)?;
        Ok(AssertionPlan {
            steps: vec![step1, step2],
        })
    }

    /// Total count of checked qubits across steps (equals the number of
    /// measurement ancillas the SWAP design needs).
    pub fn checked_qubits(&self) -> usize {
        self.steps.iter().map(|s| s.checked.len()).sum()
    }
}

/// `t = 1`: prepare-state synthesis, all qubits checked.
fn pure_step(cs: &CorrectStates) -> Result<SingleStep, AssertionError> {
    let n = cs.num_qubits();
    let u = prepare_state(&cs.basis[0])?;
    let u_inv = u.inverse()?;
    Ok(SingleStep {
        n_local: n,
        has_extension: false,
        checked: (0..n).collect(),
        u,
        u_inv,
    })
}

/// `t = 2^m`: synthesise `U` mapping `|0…0 x⟩ → ψ_x`; check the leading
/// `n − m` qubits.
fn subspace_step(
    basis: &[CVector],
    t: usize,
    n: usize,
    has_extension: bool,
) -> Result<SingleStep, AssertionError> {
    debug_assert!(t.is_power_of_two());
    let m = t.trailing_zeros() as usize;

    // Linear-coset fast path for classical correct sets (may pick a
    // cheaper set of checked qubits than the leading ones).
    if let Some((u, u_inv, checked)) = try_linear_coset(basis, t, n)? {
        return Ok(SingleStep {
            n_local: n,
            has_extension,
            checked,
            u,
            u_inv,
        });
    }
    let checked: Vec<usize> = (0..n - m).collect();

    // General path: full basis-change unitary W = Σ|ψ_i⟩⟨i|.
    let d = basis.len();
    let w = qra_math::CMatrix::from_fn(d, d, |r, c| basis[c].amplitude(r));
    let u = unitary_circuit(&w)?;
    let u_inv = u.inverse()?;
    Ok(SingleStep {
        n_local: n,
        has_extension,
        checked,
        u,
        u_inv,
    })
}

/// `t > 2^{n−1}`: prepend an extension ancilla and pad with virtually
/// correct states.
fn extension_step(cs: &CorrectStates) -> Result<SingleStep, AssertionError> {
    let dim = cs.dim();
    let n = cs.num_qubits();
    let t = cs.t;
    let ext_dim = 2 * dim;
    let e0 = CVector::basis_state(2, 0);
    let e1 = CVector::basis_state(2, 1);

    // Correct-ext: |0⟩⊗ψ_i (i < t) plus |1⟩⊗ψ_j (j ≥ t) until 2ⁿ states.
    let mut ext_basis: Vec<CVector> = Vec::with_capacity(ext_dim);
    for v in &cs.basis[..t] {
        ext_basis.push(e0.kron(v));
    }
    for v in &cs.basis[t..] {
        ext_basis.push(e1.kron(v));
    }
    debug_assert_eq!(ext_basis.len(), dim);
    // Incorrect-ext: the orthogonal complement.
    for v in &cs.basis[..t] {
        ext_basis.push(e1.kron(v));
    }
    for v in &cs.basis[t..] {
        ext_basis.push(e0.kron(v));
    }
    debug_assert_eq!(ext_basis.len(), ext_dim);

    subspace_step(&ext_basis, dim, n + 1, true)
}

/// Detects a correct *subspace projector* that factors as a tensor product
/// of per-qubit projectors (each of rank 1 or 2) and synthesises `U` as a
/// tensor of one-qubit gates. Rank-1 qubits become the checked qubits;
/// rank-2 qubits are left free. Returns `None` when the projector does not
/// factor or when no qubit is checked.
pub(crate) fn try_product_projector(
    correct: &[CVector],
    n: usize,
) -> Result<Option<SingleStep>, AssertionError> {
    const TOL: f64 = 1e-8;
    let dim = 1usize << n;
    // Projector onto the correct span (basis-independent, which sidesteps
    // the arbitrary eigenvector choice in degenerate eigenspaces).
    let mut p = CMatrix::zeros(dim, dim);
    for v in correct {
        p = p.add(&CMatrix::outer(v, v))?;
    }

    // Peel one qubit at a time: P = A ⊗ B requires
    // P ≈ (tr_rest P) ⊗ (tr_q0 P) / tr(P).
    let mut factors: Vec<CMatrix> = Vec::with_capacity(n);
    let mut rest = p;
    for q in 0..n {
        if q == n - 1 {
            factors.push(rest.clone());
            break;
        }
        let remaining = n - q;
        let tr = rest.trace()?.re;
        if tr < TOL {
            return Ok(None);
        }
        let traced_rest: Vec<usize> = (1..remaining).collect();
        let a = rest.partial_trace(&traced_rest)?; // 2×2
        let b = rest.partial_trace(&[0])?;
        let candidate = a.kron(&b).scale(C64::from(1.0 / tr));
        if candidate.max_abs_diff(&rest) > TOL {
            return Ok(None);
        }
        // Normalise A to a projector: its rank is 1 or 2.
        let det = a.get(0, 0) * a.get(1, 1) - a.get(0, 1) * a.get(1, 0);
        let rank_a = if det.norm() < TOL { 1.0 } else { 2.0 };
        let a_proj = a.scale(C64::from(rank_a / a.trace()?.re));
        // Validate projector property.
        if a_proj.mul(&a_proj)?.max_abs_diff(&a_proj) > 1e-6 {
            return Ok(None);
        }
        factors.push(a_proj);
        // B = tr_q0(P) / tr(A) with tr(A) = rank_a.
        rest = b.scale(C64::from(1.0 / rank_a));
    }
    // Last factor must also be a projector of rank 1 or 2.
    {
        let last = factors.last_mut().expect("n ≥ 1");
        let det = last.get(0, 0) * last.get(1, 1) - last.get(0, 1) * last.get(1, 0);
        let tr = last.trace()?.re;
        let rank = if det.norm() < TOL { 1.0 } else { 2.0 };
        if (tr - rank).abs() > 1e-6 {
            *last = last.scale(C64::from(rank / tr));
        }
        if last.mul(last)?.max_abs_diff(last) > 1e-6 {
            return Ok(None);
        }
    }

    // Build U = ⊗ u_q and the checked list.
    let mut u = Circuit::new(n);
    let mut checked = Vec::new();
    let mut t_product = 1usize;
    for (q, a) in factors.iter().enumerate() {
        let det = a.get(0, 0) * a.get(1, 1) - a.get(0, 1) * a.get(1, 0);
        if det.norm() < TOL {
            // Rank 1: A = |φ⟩⟨φ|; u_q maps |0⟩ → |φ⟩; qubit is checked.
            let col = if a.get(0, 0).norm() >= a.get(1, 1).norm() {
                CVector::new(vec![a.get(0, 0), a.get(1, 0)])
            } else {
                CVector::new(vec![a.get(0, 1), a.get(1, 1)])
            };
            let phi = col.normalized()?;
            let theta = 2.0 * phi.amplitude(1).norm().atan2(phi.amplitude(0).norm());
            if theta.abs() > 1e-12 {
                u.ry(theta, q);
            }
            if phi.amplitude(0).norm() > TOL && phi.amplitude(1).norm() > TOL {
                let lambda = phi.amplitude(1).arg() - phi.amplitude(0).arg();
                if lambda.abs() > 1e-12 {
                    u.rz(lambda, q);
                }
            }
            checked.push(q);
        } else {
            // Rank 2: A = I, qubit unchecked, u_q = I.
            t_product *= 2;
        }
    }
    if checked.is_empty() || t_product != correct.len() {
        return Ok(None);
    }
    // Defensive verification: U⁻¹ P U must be supported on the subspace
    // with the checked qubits at |0⟩.
    let u_inv = u.inverse()?;
    let umat = u_inv.unitary_matrix()?;
    for v in correct {
        let out = umat.mul_vec(v);
        for (i, amp) in out.iter().enumerate() {
            if amp.norm() > 1e-6 {
                for &cq in &checked {
                    if (i >> (n - 1 - cq)) & 1 == 1 {
                        return Ok(None);
                    }
                }
            }
        }
    }
    Ok(Some(SingleStep {
        n_local: n,
        has_extension: false,
        checked,
        u,
        u_inv,
    }))
}

/// Fast path for `t = 2`: if a *selector* qubit `s` exists such that the
/// two correct states live in opposite `|0⟩/|1⟩` slices of `s`
/// (`ψ₀ = φ₀ ⊗ |b⟩_s`, `ψ₁ = φ₁ ⊗ |1−b⟩_s`), synthesise `U` as a pair of
/// oppositely-controlled state preparations. Checked qubits: all but `s`.
fn try_selector_multiplexed(
    correct: &[CVector],
    n: usize,
) -> Result<Option<SingleStep>, AssertionError> {
    use qra_circuit::synthesis::controlled::controlled_circuit;
    use qra_circuit::synthesis::mc_gate::ControlState;
    debug_assert_eq!(correct.len(), 2);
    if n < 2 {
        return Ok(None);
    }
    let dim = 1usize << n;
    for s in 0..n {
        let slice_of = |v: &CVector| -> Option<(usize, CVector)> {
            // Returns (bit value, reduced (n−1)-qubit state) when `v` is
            // supported on a single value of qubit s.
            let mask = 1usize << (n - 1 - s);
            let mut bit = None;
            for (i, amp) in v.iter().enumerate() {
                if amp.norm() > TOL {
                    let b = usize::from(i & mask != 0);
                    match bit {
                        None => bit = Some(b),
                        Some(prev) if prev != b => return None,
                        _ => {}
                    }
                }
            }
            let b = bit?;
            let mut reduced = CVector::zeros(dim / 2);
            for i in 0..dim {
                if usize::from(i & mask != 0) == b {
                    // Remove bit s from the index.
                    let high = (i >> (n - s)) << (n - 1 - s);
                    let low = i & (mask - 1);
                    reduced[high | low] = v.amplitude(i);
                }
            }
            Some((b, reduced))
        };
        let Some((b0, phi0)) = slice_of(&correct[0]) else {
            continue;
        };
        let Some((b1, phi1)) = slice_of(&correct[1]) else {
            continue;
        };
        if b0 == b1 {
            continue;
        }
        // Build the controlled preparations on the non-selector qubits.
        let others: Vec<usize> = (0..n).filter(|&q| q != s).collect();
        let embed = |prep: &Circuit| -> Result<Circuit, AssertionError> {
            let mut wide = Circuit::new(n);
            wide.compose(prep, &others, &[])?;
            Ok(wide)
        };
        let prep0 = embed(&prepare_state(&phi0.normalized()?)?)?;
        let prep1 = embed(&prepare_state(&phi1.normalized()?)?)?;
        let pol = |b: usize| {
            if b == 1 {
                ControlState::Closed
            } else {
                ControlState::Open
            }
        };
        let mut u = controlled_circuit(&prep0, s, pol(b0))?;
        let second = controlled_circuit(&prep1, s, pol(b1))?;
        let map: Vec<usize> = (0..n).collect();
        u.compose(&second, &map, &[])?;
        let u_inv = u.inverse()?;
        return Ok(Some(SingleStep {
            n_local: n,
            has_extension: false,
            checked: others,
            u,
            u_inv,
        }));
    }
    Ok(None)
}

/// Detects a correct set that is exactly the computational basis states of
/// an affine subspace `offset ⊕ span(G)` and synthesises `U⁻¹` as an
/// X/CNOT network pinning the leading `n − m` coordinates to zero.
#[allow(clippy::type_complexity)]
fn try_linear_coset(
    basis: &[CVector],
    t: usize,
    n: usize,
) -> Result<Option<(Circuit, Circuit, Vec<usize>)>, AssertionError> {
    // All 2ⁿ basis vectors must be computational basis states (else the
    // completion reordered nothing and the transform would break them).
    let mut indices = Vec::with_capacity(basis.len());
    for v in basis {
        match computational_index(v) {
            Some(i) => indices.push(i),
            None => return Ok(None),
        }
    }
    let correct: Vec<usize> = indices[..t].to_vec();

    // Affine structure: offset = first element; differences must form a
    // linear subspace of dimension m with exactly t elements.
    let offset = correct[0];
    let mut diffs: Vec<usize> = correct.iter().map(|&x| x ^ offset).collect();
    diffs.sort_unstable();
    diffs.dedup();
    if diffs.len() != t {
        return Ok(None);
    }
    // Closure check: xor of any two diffs must be a diff.
    for &a in &diffs {
        for &b in &diffs {
            if diffs.binary_search(&(a ^ b)).is_err() {
                return Ok(None);
            }
        }
    }
    let m = t.trailing_zeros() as usize;

    // Basis of the subspace via Gaussian elimination (bit = qubit position:
    // bit b of an index ↔ qubit n−1−b).
    let mut gens: Vec<usize> = Vec::new();
    let mut reduced: Vec<usize> = Vec::new();
    for &d in diffs.iter().filter(|&&d| d != 0) {
        let mut x = d;
        for &r in &reduced {
            let pivot = 1usize << (usize::BITS - 1 - r.leading_zeros());
            if x & pivot != 0 {
                x ^= r;
            }
        }
        if x != 0 {
            reduced.push(x);
            gens.push(d);
        }
        if gens.len() == m {
            break;
        }
    }
    if gens.len() != m {
        return Ok(None);
    }

    // Build a CNOT network T (sequence of row ops) putting the generator
    // matrix G (n×m over GF(2), rows = qubit coordinates) into reduced row
    // echelon form with freely chosen pivot rows. Pivot coordinates stay
    // "free" (they carry the m subspace degrees of freedom); all other
    // rows reduce to zero, so those coordinates are pinned to |0⟩ on the
    // correct subspace — they become the checked qubits.
    //
    // A CX(control c, target tq) maps index bits `bit(tq) ^= bit(c)`, i.e.
    // the row operation `row[tq] ^= row[c]` on G.
    let mut g_rows: Vec<Vec<u8>> = (0..n)
        .map(|q| {
            gens.iter()
                .map(|&g| ((g >> (n - 1 - q)) & 1) as u8)
                .collect()
        })
        .collect();
    let mut cx_ops: Vec<(usize, usize)> = Vec::new(); // (control, target)
    let mut pivot_of_col: Vec<usize> = Vec::with_capacity(m);

    for col in 0..m {
        // Choose the first non-pivot row with a 1 in this column.
        let pivot = (0..n)
            .find(|r| !pivot_of_col.contains(r) && g_rows[*r][col] == 1)
            .ok_or(AssertionError::InvalidSpec {
                reason: "generator matrix lost rank".into(),
            })?;
        pivot_of_col.push(pivot);
        // Eliminate this column from every other row.
        for r in 0..n {
            if r != pivot && g_rows[r][col] == 1 {
                // Indexed loop: `g_rows[r]` and `g_rows[pivot]` alias the
                // same Vec, so iterator forms fail the borrow check.
                #[allow(clippy::needless_range_loop)]
                for c in 0..m {
                    g_rows[r][c] ^= g_rows[pivot][c];
                }
                cx_ops.push((pivot, r));
            }
        }
    }
    // RREF cleanup: clear later columns from earlier pivot rows.
    for col in 0..m {
        let p = pivot_of_col[col];
        for c in 0..m {
            if c != col && g_rows[p][c] == 1 {
                let other = pivot_of_col[c];
                #[allow(clippy::needless_range_loop)]
                for cc in 0..m {
                    g_rows[p][cc] ^= g_rows[other][cc];
                }
                cx_ops.push((other, p));
            }
        }
    }
    // Verify: pivot rows are unit vectors, all other rows zero.
    for (q, row) in g_rows.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            let expect = u8::from(pivot_of_col.get(c) == Some(&q));
            if v != expect {
                return Ok(None);
            }
        }
    }
    let checked: Vec<usize> = (0..n).filter(|q| !pivot_of_col.contains(q)).collect();
    debug_assert_eq!(checked.len(), n - m);

    // U⁻¹ = X gates clearing the offset, then the CX network.
    let mut u_inv = Circuit::new(n);
    for q in 0..n {
        if (offset >> (n - 1 - q)) & 1 == 1 {
            u_inv.x(q);
        }
    }
    for &(c, tq) in &cx_ops {
        u_inv.cx(c, tq);
    }
    let u = u_inv.inverse()?;

    // Defensive validation: every correct index must land with zeros at
    // all checked coordinates.
    let umat = u_inv.unitary_matrix()?;
    for &i in &correct {
        let out = umat.mul_vec(&CVector::basis_state(basis.len(), i));
        let idx = computational_index(&out).ok_or(AssertionError::InvalidSpec {
            reason: "linear coset map produced a superposition".into(),
        })?;
        for &q in &checked {
            if (idx >> (n - 1 - q)) & 1 == 1 {
                return Err(AssertionError::InvalidSpec {
                    reason: "linear coset map missed the target subspace".into(),
                });
            }
        }
    }
    Ok(Some((u, u_inv, checked)))
}

/// Returns the basis index when `v` is a computational basis state (up to
/// global phase), else `None`.
fn computational_index(v: &CVector) -> Option<usize> {
    let mut hot = None;
    for (i, amp) in v.iter().enumerate() {
        if amp.norm() > TOL {
            if hot.is_some() {
                return None;
            }
            if (amp.norm() - 1.0).abs() > 1e-6 {
                return None;
            }
            hot = Some(i);
        }
    }
    hot
}

/// Convenience: the all-zero local input check — after `u_inv · u` the
/// circuit must act as identity (used in tests).
#[doc(hidden)]
pub fn verify_step_roundtrip(step: &SingleStep) -> bool {
    let mut c = step.u.clone();
    let map: Vec<usize> = (0..step.n_local).collect();
    if c.compose(&step.u_inv, &map, &[]).is_err() {
        return false;
    }
    match c.unitary_matrix() {
        Ok(m) => m.approx_eq_up_to_phase(&qra_math::CMatrix::identity(1 << step.n_local), 1e-7),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StateSpec;
    use qra_math::CMatrix;

    fn ghz() -> CVector {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    }

    fn classical_set(n: usize, indices: &[usize]) -> CorrectStates {
        let states: Vec<CVector> = indices
            .iter()
            .map(|&i| CVector::basis_state(1 << n, i))
            .collect();
        StateSpec::set(states).unwrap().correct_states().unwrap()
    }

    #[test]
    fn pure_plan_checks_all_qubits() {
        let cs = StateSpec::pure(ghz()).unwrap().correct_states().unwrap();
        let plan = AssertionPlan::build(&cs).unwrap();
        assert_eq!(plan.steps.len(), 1);
        let step = &plan.steps[0];
        assert_eq!(step.checked, vec![0, 1, 2]);
        assert!(!step.has_extension);
        assert!(verify_step_roundtrip(step));
        // U|0…0⟩ must equal the GHZ state.
        let sv = step.u.statevector().unwrap();
        assert!(sv.approx_eq_up_to_phase(&ghz(), 1e-8));
    }

    #[test]
    fn ghz_approx_set_uses_linear_fast_path() {
        // {|000⟩, |111⟩}: affine subspace, U should be a 2-CX network.
        let cs = classical_set(3, &[0, 7]);
        let plan = AssertionPlan::build(&cs).unwrap();
        let step = &plan.steps[0];
        assert_eq!(step.checked.len(), 2);
        let counts = qra_circuit::GateCounts::of(&step.u).unwrap();
        assert_eq!(counts.cx, 2, "paper's Fig 1 accounting: 2-CX U");
        assert!(verify_step_roundtrip(step));
        // U⁻¹ maps both correct states to indices whose checked qubits are 0.
        let m = step.u_inv.unitary_matrix().unwrap();
        let n = 3usize;
        for idx in [0usize, 7] {
            let out = m.mul_vec(&CVector::basis_state(8, idx));
            let ok: f64 = out
                .probabilities()
                .iter()
                .enumerate()
                .filter(|(i, _)| step.checked.iter().all(|&q| (i >> (n - 1 - q)) & 1 == 0))
                .map(|(_, p)| p)
                .sum();
            assert!((ok - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn extended_four_set_costs_one_cx() {
        // {|000⟩,|011⟩,|100⟩,|111⟩} — paper reduces U to ~1 CX.
        let cs = classical_set(3, &[0b000, 0b011, 0b100, 0b111]);
        let plan = AssertionPlan::build(&cs).unwrap();
        let step = &plan.steps[0];
        assert_eq!(step.checked.len(), 1);
        let counts = qra_circuit::GateCounts::of(&step.u).unwrap();
        assert!(
            counts.cx <= 1,
            "affine fast path expected, got {}",
            counts.cx
        );
        assert!(verify_step_roundtrip(step));
    }

    #[test]
    fn non_affine_power_of_two_uses_general_path() {
        // {|00⟩…} pick {0, 1} on 2 qubits: affine (dim 1). Use a genuinely
        // non-classical set instead: {|00⟩, |+1⟩}.
        let plus1 = {
            let s = 0.5f64.sqrt();
            let mut v = CVector::zeros(4);
            v[0b01] = C64::from(s);
            v[0b11] = C64::from(s);
            v
        };
        let cs = StateSpec::set(vec![CVector::basis_state(4, 0), plus1])
            .unwrap()
            .correct_states()
            .unwrap();
        assert_eq!(cs.t, 2);
        let plan = AssertionPlan::build(&cs).unwrap();
        let step = &plan.steps[0];
        assert!(verify_step_roundtrip(step));
        // U must map |00⟩ and |01⟩ onto the correct span.
        let m = step.u.unitary_matrix().unwrap();
        for i in 0..2 {
            let out = m.mul_vec(&CVector::basis_state(4, i));
            assert!(cs.accepts(&out, 1e-7), "column {i} escaped correct span");
        }
    }

    #[test]
    fn superset_pair_for_rank_three() {
        // Paper §IV-C.2 example: ρ = .5|000⟩⟨000| + .25|001⟩⟨001| + .25|010⟩⟨010|.
        let e = |i: usize| CVector::basis_state(8, i);
        let rho = CMatrix::outer(&e(0), &e(0))
            .scale(C64::from(0.5))
            .add(&CMatrix::outer(&e(1), &e(1)).scale(C64::from(0.25)))
            .unwrap()
            .add(&CMatrix::outer(&e(2), &e(2)).scale(C64::from(0.25)))
            .unwrap();
        let cs = StateSpec::mixed(rho).unwrap().correct_states().unwrap();
        assert_eq!(cs.t, 3);
        let plan = AssertionPlan::build(&cs).unwrap();
        assert_eq!(plan.steps.len(), 2, "rank 3 needs a superset pair");
        for step in &plan.steps {
            assert_eq!(step.checked.len(), 1);
            assert!(verify_step_roundtrip(step));
        }
        // Each correct state must pass BOTH steps (map into the subspace).
        for idx in [0usize, 1, 2] {
            for step in &plan.steps {
                let m = step.u_inv.unitary_matrix().unwrap();
                let out = m.mul_vec(&e(idx));
                let leading_zero: f64 = out.probabilities()[..4].iter().sum();
                assert!(
                    (leading_zero - 1.0).abs() < 1e-8,
                    "correct state {idx} failed a superset step"
                );
            }
        }
        // At least one incorrect state must fail at least one step.
        let m1 = plan.steps[0].u_inv.unitary_matrix().unwrap();
        let m2 = plan.steps[1].u_inv.unitary_matrix().unwrap();
        let mut some_reject = false;
        for idx in 3..8 {
            let p1: f64 = m1.mul_vec(&e(idx)).probabilities()[..4].iter().sum();
            let p2: f64 = m2.mul_vec(&e(idx)).probabilities()[..4].iter().sum();
            if p1 < 0.5 || p2 < 0.5 {
                some_reject = true;
            }
        }
        assert!(some_reject);
    }

    #[test]
    fn high_rank_uses_extension_ancilla() {
        // t = 3 of dim 4 (2^{n−1} = 2 < 3): extension case.
        let cs = classical_set(2, &[0, 1, 2]);
        assert_eq!(cs.t, 3);
        let plan = AssertionPlan::build(&cs).unwrap();
        assert_eq!(plan.steps.len(), 1);
        let step = &plan.steps[0];
        assert!(step.has_extension);
        assert_eq!(step.n_local, 3);
        assert_eq!(step.checked, vec![0]);
        assert!(verify_step_roundtrip(step));
        // With the extension ancilla in |0⟩, correct states map to leading 0.
        let m = step.u_inv.unitary_matrix().unwrap();
        for idx in [0usize, 1, 2] {
            let input = CVector::basis_state(2, 0).kron(&CVector::basis_state(4, idx));
            let out = m.mul_vec(&input);
            let leading_zero: f64 = out.probabilities()[..4].iter().sum();
            assert!((leading_zero - 1.0).abs() < 1e-8);
        }
        // The incorrect state |3⟩ must map to leading 1.
        let input = CVector::basis_state(2, 0).kron(&CVector::basis_state(4, 3));
        let out = m.mul_vec(&input);
        let leading_zero: f64 = out.probabilities()[..4].iter().sum();
        assert!(leading_zero < 1e-8);
    }

    #[test]
    fn bell_pair_mixed_state_plan() {
        // ½(|00⟩⟨00| + |11⟩⟨11|): t=2, n=2 → t = 2^{n−1}, single step, 1 check.
        let cs = classical_set(2, &[0, 3]);
        let plan = AssertionPlan::build(&cs).unwrap();
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.steps[0].checked.len(), 1);
        assert_eq!(plan.checked_qubits(), 1);
    }

    #[test]
    fn dj_constant_set_uses_product_projector() {
        // {|++⟩|0⟩, |++⟩|1⟩}: projector |++⟩⟨++| ⊗ I factors per qubit →
        // U = H⊗H⊗I, 0 CX, checked = {0, 1} (paper Fig. 20: 4-CX SWAP
        // assertion total).
        let plus = CVector::from_real(&[0.5, 0.5, 0.5, 0.5]);
        let s0 = plus.kron(&CVector::basis_state(2, 0));
        let s1 = plus.kron(&CVector::basis_state(2, 1));
        let cs = StateSpec::set(vec![s0, s1])
            .unwrap()
            .correct_states()
            .unwrap();
        assert_eq!(cs.t, 2);
        let plan = AssertionPlan::build(&cs).unwrap();
        assert_eq!(plan.steps.len(), 1);
        let step = &plan.steps[0];
        assert_eq!(step.checked, vec![0, 1]);
        let counts = qra_circuit::GateCounts::of(&step.u).unwrap();
        assert_eq!(counts.cx, 0, "product projector U needs no entanglers");
        assert!(counts.sg <= 2);
        assert!(verify_step_roundtrip(step));
    }

    #[test]
    fn product_projector_with_phase_factor() {
        // Correct span: (|0⟩+i|1⟩)/√2 on qubit 0, free qubit 1.
        let s = 0.5f64.sqrt();
        let phi = CVector::new(vec![C64::from(s), C64::new(0.0, s)]);
        let a = phi.kron(&CVector::basis_state(2, 0));
        let b = phi.kron(&CVector::basis_state(2, 1));
        let cs = StateSpec::set(vec![a.clone(), b])
            .unwrap()
            .correct_states()
            .unwrap();
        let plan = AssertionPlan::build(&cs).unwrap();
        let step = &plan.steps[0];
        assert_eq!(step.checked, vec![0]);
        // U⁻¹ maps members into the checked-zero subspace.
        let m = step.u_inv.unitary_matrix().unwrap();
        let out = m.mul_vec(&a);
        let bad: f64 = out
            .probabilities()
            .iter()
            .enumerate()
            .filter(|(i, _)| (i >> 1) & 1 == 1)
            .map(|(_, p)| p)
            .sum();
        assert!(bad < 1e-9);
    }

    #[test]
    fn non_product_projector_falls_through() {
        // Bell-pair span {|00⟩, |11⟩} is NOT a per-qubit product projector
        // (its reduced factors are maximally mixed, so A⊗B/t ≠ P).
        let cs = classical_set(2, &[0, 3]);
        let got = try_product_projector(&cs.basis[..cs.t], 2).unwrap();
        assert!(got.is_none());
    }

    #[test]
    fn single_qubit_pure_plan() {
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let cs = StateSpec::pure(plus).unwrap().correct_states().unwrap();
        let plan = AssertionPlan::build(&cs).unwrap();
        let step = &plan.steps[0];
        assert_eq!(step.checked, vec![0]);
        let counts = qra_circuit::GateCounts::of(&step.u).unwrap();
        assert_eq!(counts.cx, 0);
        assert!(counts.sg <= 2);
    }
}
