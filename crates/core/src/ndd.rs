//! NDD-based assertion circuits (paper §V).
//!
//! The non-destructive-discrimination design is a phase-kickback circuit:
//! `H(anc) · ctrl-U · H(anc) · measure(anc)` with
//! `U = Σ_{i<t} |ψᵢ⟩⟨ψᵢ| − Σ_{i≥t} |ψᵢ⟩⟨ψᵢ| = 2·P_correct − I`.
//! Correct states are `+1` eigenstates of `U` (ancilla reads `|0⟩`);
//! incorrect ones are `−1` eigenstates (ancilla reads `|1⟩`). Unlike the
//! SWAP/OR designs, any rank `1 ≤ t < 2ⁿ` is handled by a single step —
//! no superset pairs or extension ancillas.
//!
//! Synthesis of `ctrl-U` picks the cheapest applicable strategy:
//!
//! 1. `U` diagonal ±1 → algebraic-normal-form CZ network (gives the
//!    paper's `n`-CX circuits for parity sets, Fig. 14);
//! 2. `U` a tensor product of one-qubit unitaries → per-qubit controlled
//!    gates (gives the 3-CX GHZ approximate circuit of §III);
//! 3. general → `W† · ctrl-D · W` with `W` the basis change and `D` the
//!    ±1 diagonal.

use crate::plan::AssertionPlan;
use crate::spec::CorrectStates;
use crate::swap::BuiltAssertion;
use crate::AssertionError;
use qra_circuit::synthesis::diagonal::{
    controlled_tensor_product, diagonal_pm_one, is_diagonal_pm_one, try_factor_tensor,
};
use qra_circuit::synthesis::mc_gate::{mc_unitary, Control, ControlState};
use qra_circuit::synthesis::unitary_circuit;
use qra_circuit::{Circuit, Gate};

const TOL: f64 = 1e-9;

/// Builds the NDD-based assertion circuit.
///
/// # Errors
///
/// Propagates synthesis failures.
pub fn build_ndd_assertion(cs: &CorrectStates) -> Result<BuiltAssertion, AssertionError> {
    let k = cs.num_qubits();
    let anc = k; // single ancilla after the test qubits
    let mut circuit = Circuit::with_clbits(k + 1, 1);
    circuit.h(anc);
    append_controlled_u(&mut circuit, cs, anc)?;
    circuit.h(anc);
    circuit.measure(anc, 0)?;
    Ok(BuiltAssertion {
        circuit,
        num_test: k,
        num_ancilla: 1,
        num_clbits: 1,
    })
}

/// Appends `ctrl-U` with control `anc` and targets `0..k` to `circuit`.
fn append_controlled_u(
    circuit: &mut Circuit,
    cs: &CorrectStates,
    anc: usize,
) -> Result<(), AssertionError> {
    let k = cs.num_qubits();
    let u = cs.ndd_unitary();

    // Strategy 1: U diagonal ±1 → controlled version is diagonal ±1 too.
    if let Some(signs) = is_diagonal_pm_one(&u, TOL) {
        let mut qubits = vec![anc];
        qubits.extend(0..k);
        let dim = signs.len();
        let mut ext = vec![false; 2 * dim];
        ext[dim..].copy_from_slice(&signs);
        diagonal_pm_one(circuit, &qubits, &ext)?;
        return Ok(());
    }

    // Strategy 2: U = ⊗ single-qubit factors.
    if let Some(factors) = try_factor_tensor(&u) {
        let targets: Vec<usize> = (0..k).collect();
        controlled_tensor_product(circuit, anc, &targets, &factors)?;
        return Ok(());
    }

    // Strategy 3: reuse the §IV planning machinery. Any single-step plan
    // gives U = u · D · u⁻¹ with D = +1 exactly on the checked-zeros
    // subspace, and ctrl-D factors into Z(anc) and ONE multi-controlled Z
    // firing when anc = 1 and all checked qubits read 0 — far cheaper than
    // a general basis-change synthesis.
    if let Ok(plan) = AssertionPlan::build(cs) {
        if plan.steps.len() == 1 && !plan.steps[0].has_extension {
            let step = &plan.steps[0];
            let test_map: Vec<usize> = (0..k).collect();
            circuit.compose(&step.u_inv, &test_map, &[])?;
            circuit.z(anc);
            // MCZ: anc closed, all checked qubits open; realise the last
            // checked qubit as an X-wrapped target.
            let (&target, rest) = step
                .checked
                .split_last()
                .expect("checked is never empty for t < 2^n");
            let mut controls: Vec<Control> = vec![(anc, ControlState::Closed)];
            controls.extend(rest.iter().map(|&q| (q, ControlState::Open)));
            circuit.x(target);
            mc_unitary(circuit, &controls, target, &Gate::Z.matrix())?;
            circuit.x(target);
            circuit.compose(&step.u, &test_map, &[])?;
            return Ok(());
        }
    }

    // Strategy 4 (fallback): W† · ctrl-D · W with a general basis change.
    let w = cs.basis_matrix();
    let w_circ = unitary_circuit(&w)?;
    let w_inv_circ = w_circ.inverse()?;
    let test_map: Vec<usize> = (0..k).collect();
    circuit.compose(&w_inv_circ, &test_map, &[])?;
    // ctrl-D: signs over (anc, index): −1 when anc=1 and index ≥ t.
    let dim = cs.dim();
    let mut ext = vec![false; 2 * dim];
    for (i, slot) in ext.iter_mut().enumerate().skip(dim) {
        *slot = (i - dim) >= cs.t;
    }
    let mut qubits = vec![anc];
    qubits.extend(0..k);
    diagonal_pm_one(circuit, &qubits, &ext)?;
    circuit.compose(&w_circ, &test_map, &[])?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StateSpec;
    use qra_circuit::GateCounts;
    use qra_math::{CVector, C64};
    use qra_sim::StatevectorSimulator;

    fn error_rate(prep: &Circuit, built: &BuiltAssertion) -> f64 {
        let k = built.num_test;
        let mut full = Circuit::with_clbits(k + built.num_ancilla, built.num_clbits);
        full.compose(prep, &(0..k).collect::<Vec<_>>(), &[])
            .unwrap();
        let map: Vec<usize> = (0..k + built.num_ancilla).collect();
        let cl: Vec<usize> = (0..built.num_clbits).collect();
        full.compose(&built.circuit, &map, &cl).unwrap();
        let counts = StatevectorSimulator::with_seed(21)
            .run(&full, 8192)
            .unwrap();
        counts.any_set_frequency(&cl)
    }

    fn ghz() -> CVector {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    }

    #[test]
    fn classical_zero_assertion_is_cz() {
        // §V-A: asserting |0⟩ gives U = Z, ctrl-U = CZ — one entangler.
        let spec = StateSpec::pure(CVector::basis_state(2, 0)).unwrap();
        let built = build_ndd_assertion(&spec.correct_states().unwrap()).unwrap();
        let counts = GateCounts::of(&built.circuit).unwrap();
        assert_eq!(counts.cx, 1);
        assert_eq!(built.num_ancilla, 1);
        assert_eq!(counts.measure, 1);
        // |0⟩ passes, |1⟩ flags.
        let pass = Circuit::new(1);
        assert_eq!(error_rate(&pass, &built), 0.0);
        let mut fail = Circuit::new(1);
        fail.x(0);
        assert_eq!(error_rate(&fail, &built), 1.0);
    }

    #[test]
    fn even_parity_set_is_cz_chain() {
        // §V-C / Fig. 14: set {|00⟩, |11⟩} → ctrl-(Z⊗Z) = 2 CZ.
        let set =
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
        let built = build_ndd_assertion(&set.correct_states().unwrap()).unwrap();
        let counts = GateCounts::of(&built.circuit).unwrap();
        assert_eq!(counts.cx, 2, "paper: n CX for the n-qubit parity set");
        assert_eq!(counts.sg, 2, "just the two Hadamards");
        // a|00⟩ + b|11⟩ passes for any coefficients.
        let mut prep = Circuit::new(2);
        prep.ry(1.1, 0).cx(0, 1);
        assert_eq!(error_rate(&prep, &built), 0.0);
        let mut bad = Circuit::new(2);
        bad.x(0);
        assert_eq!(error_rate(&bad, &built), 1.0);
    }

    #[test]
    fn ghz_parity_pair_set_is_three_cx() {
        // §III: the 4-member ± pair set makes U = X⊗X⊗X → 3 CX.
        let s = 0.5f64.sqrt();
        let pair = |a: usize, b: usize| {
            let mut v = CVector::zeros(8);
            v[a] = C64::from(s);
            v[b] = C64::from(s);
            v
        };
        let set = StateSpec::set(vec![
            pair(0b000, 0b111),
            pair(0b001, 0b110),
            pair(0b011, 0b100),
            pair(0b010, 0b101),
        ])
        .unwrap();
        let built = build_ndd_assertion(&set.correct_states().unwrap()).unwrap();
        let counts = GateCounts::of(&built.circuit).unwrap();
        assert_eq!(counts.cx, 3, "paper Fig 1: NDD approximate GHZ = 3 CX");
        // GHZ passes.
        let mut prep = Circuit::new(3);
        prep.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(error_rate(&prep, &built), 0.0);
        // The negative-phase GHZ is OUTSIDE this set and must flag.
        let mut neg = Circuit::new(3);
        neg.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        assert_eq!(error_rate(&neg, &built), 1.0);
    }

    #[test]
    fn precise_ghz_ndd_assertion() {
        let built = build_ndd_assertion(&StateSpec::pure(ghz()).unwrap().correct_states().unwrap())
            .unwrap();
        let mut prep = Circuit::new(3);
        prep.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(error_rate(&prep, &built), 0.0);
        // Bug1 (sign flip) — orthogonal to GHZ, detected with certainty.
        let mut bug1 = Circuit::new(3);
        bug1.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        assert!(error_rate(&bug1, &built) > 0.99);
        // Bug2 (wrong entanglement): overlap ⟨GHZ|buggy⟩ = ½, so the
        // correct component carries probability ¼ — error rate ¾.
        let mut bug2 = Circuit::new(3);
        bug2.h(0).cx(1, 2).cx(0, 1);
        let rate = error_rate(&bug2, &built);
        assert!((rate - 0.75).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn ndd_preserves_state_on_pass() {
        // Passing the assertion projects onto the correct component and
        // leaves the test qubits in the asserted state.
        let spec = StateSpec::pure(ghz()).unwrap();
        let built = build_ndd_assertion(&spec.correct_states().unwrap()).unwrap();
        let mut full = Circuit::new(4);
        full.h(0).cx(0, 1).cx(1, 2);
        let mut stripped = Circuit::new(built.circuit.num_qubits());
        for inst in built.circuit.instructions() {
            if let Some(g) = inst.as_gate() {
                stripped.append(g.clone(), &inst.qubits).unwrap();
            }
        }
        full.compose(&stripped, &[0, 1, 2, 3], &[]).unwrap();
        let sv = full.statevector().unwrap();
        let expect = ghz().kron(&CVector::basis_state(2, 0));
        assert!(sv.approx_eq_up_to_phase(&expect, 1e-8));
    }

    #[test]
    fn mixed_state_ndd_any_rank() {
        // Rank-3 mixed state on 2 qubits — NDD needs no extension ancilla.
        let set = StateSpec::set(vec![
            CVector::basis_state(4, 0),
            CVector::basis_state(4, 1),
            CVector::basis_state(4, 2),
        ])
        .unwrap();
        let built = build_ndd_assertion(&set.correct_states().unwrap()).unwrap();
        assert_eq!(built.num_ancilla, 1);
        for idx in [0usize, 1, 2] {
            let mut prep = Circuit::new(2);
            for q in 0..2 {
                if (idx >> (1 - q)) & 1 == 1 {
                    prep.x(q);
                }
            }
            assert_eq!(error_rate(&prep, &built), 0.0, "member {idx} flagged");
        }
        let mut bad = Circuit::new(2);
        bad.x(0).x(1);
        assert_eq!(error_rate(&bad, &built), 1.0);
    }

    #[test]
    fn general_strategy_handles_nonclassical_basis() {
        // Assert the Bell state precisely: U is not diagonal nor a tensor
        // product, exercising the W†·ctrl-D·W path.
        let s = 0.5f64.sqrt();
        let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
        let built =
            build_ndd_assertion(&StateSpec::pure(bell).unwrap().correct_states().unwrap()).unwrap();
        let mut prep = Circuit::new(2);
        prep.h(0).cx(0, 1);
        assert_eq!(error_rate(&prep, &built), 0.0);
        // The orthogonal Bell state Φ⁻ flags with certainty.
        let mut bad = Circuit::new(2);
        bad.x(0);
        bad.h(0).cx(0, 1); // (|00⟩ − |11⟩)/√2 up to phase
        assert!(error_rate(&bad, &built) > 0.99);
    }

    #[test]
    fn superposition_state_with_phase() {
        // (|0⟩ + e^{iπ/4}|1⟩)/√2 — the "other entanglement types" the prior
        // primitives cannot check (§VI-A).
        let s = 0.5f64.sqrt();
        let state = CVector::new(vec![
            C64::from(s),
            C64::cis(std::f64::consts::FRAC_PI_4).scale(s),
        ]);
        let built = build_ndd_assertion(&StateSpec::pure(state).unwrap().correct_states().unwrap())
            .unwrap();
        let mut prep = Circuit::new(1);
        prep.h(0).p(std::f64::consts::FRAC_PI_4, 0);
        assert_eq!(error_rate(&prep, &built), 0.0);
        // The wrong phase must be detected.
        let mut bad = Circuit::new(1);
        bad.h(0).p(-std::f64::consts::FRAC_PI_4, 0);
        let rate = error_rate(&bad, &built);
        assert!(rate > 0.2, "phase bug missed: {rate}");
    }
}
