//! SWAP-based assertion circuits (paper §IV).
//!
//! Layout of the produced local circuit: qubits `0..k` are the qubits
//! under test; ancillas follow in step order (extension ancilla first when
//! a step needs one, then one measurement ancilla per checked qubit).
//! Each step emits `U⁻¹`, an optimised 2-CX swap of every checked qubit
//! with a fresh `|0⟩` ancilla (the relaxed-peephole optimisation the paper
//! cites as \[31\]), the restoring `U`, and the ancilla measurements.
//!
//! Passing the assertion leaves the program state **corrected** to the
//! asserted state — the property §IV-E contrasts with the logical-OR
//! design.

use crate::plan::AssertionPlan;
use crate::spec::CorrectStates;
use crate::AssertionError;
use qra_circuit::Circuit;

/// Output of a design-specific builder: the local assertion circuit plus
/// its ancilla bookkeeping.
#[derive(Debug, Clone)]
pub struct BuiltAssertion {
    /// Local circuit: test qubits `0..num_test`, ancillas after.
    pub circuit: Circuit,
    /// Number of qubits under test.
    pub num_test: usize,
    /// Number of ancilla qubits appended after the test qubits.
    pub num_ancilla: usize,
    /// Number of classical bits (one per assertion measurement).
    pub num_clbits: usize,
}

/// Builds the SWAP-based assertion circuit for a correct-state
/// decomposition.
///
/// # Errors
///
/// Propagates plan/synthesis failures.
pub fn build_swap_assertion(cs: &CorrectStates) -> Result<BuiltAssertion, AssertionError> {
    let plan = AssertionPlan::build(cs)?;
    let k = cs.num_qubits();

    // Ancilla budget: per step, extension (0/1) + one per checked qubit.
    let num_ancilla: usize = plan
        .steps
        .iter()
        .map(|s| usize::from(s.has_extension) + s.checked.len())
        .sum();
    let num_clbits = plan.checked_qubits();

    let mut circuit = Circuit::with_clbits(k + num_ancilla, num_clbits);
    let mut next_ancilla = k;
    let mut next_clbit = 0;

    for step in &plan.steps {
        // Map the step's local qubits onto the assertion circuit: local 0 is
        // the extension ancilla when present, then the test qubits.
        let mut map: Vec<usize> = Vec::with_capacity(step.n_local);
        if step.has_extension {
            map.push(next_ancilla);
            next_ancilla += 1;
        }
        map.extend(0..k);
        debug_assert_eq!(map.len(), step.n_local);

        circuit.compose(&step.u_inv, &map, &[])?;
        // Optimised SWAP with a |0⟩ ancilla: CX(q→a), CX(a→q).
        let mut swapped: Vec<(usize, usize)> = Vec::new();
        for &local in &step.checked {
            let q = map[local];
            let a = next_ancilla;
            next_ancilla += 1;
            circuit.cx(q, a).cx(a, q);
            swapped.push((q, a));
        }
        circuit.compose(&step.u, &map, &[])?;
        for (_, a) in swapped {
            circuit.measure(a, next_clbit)?;
            next_clbit += 1;
        }
    }
    debug_assert_eq!(next_ancilla, k + num_ancilla);
    debug_assert_eq!(next_clbit, num_clbits);

    Ok(BuiltAssertion {
        circuit,
        num_test: k,
        num_ancilla,
        num_clbits,
    })
}

/// How the checked qubits are swapped with their ancillas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapPlacement {
    /// Optimised two-CX swap exploiting the ancilla's known `|0⟩` state —
    /// the relaxed-peephole form used by the paper's Fig. 1 accounting.
    #[default]
    Optimized,
    /// Full three-CX SWAP gates — the accounting the paper's Table III
    /// uses (3n CX for separable states). Functionally identical.
    FullSwap,
}

/// [`build_swap_assertion`] with an explicit [`SwapPlacement`]; the default
/// builder uses [`SwapPlacement::Optimized`].
///
/// # Errors
///
/// Propagates plan/synthesis failures.
pub fn build_swap_assertion_with_placement(
    cs: &CorrectStates,
    placement: SwapPlacement,
) -> Result<BuiltAssertion, AssertionError> {
    let plan = AssertionPlan::build(cs)?;
    let k = cs.num_qubits();
    let num_ancilla: usize = plan
        .steps
        .iter()
        .map(|s| usize::from(s.has_extension) + s.checked.len())
        .sum();
    let num_clbits = plan.checked_qubits();

    let mut circuit = Circuit::with_clbits(k + num_ancilla, num_clbits);
    let mut next_ancilla = k;
    let mut next_clbit = 0;

    for step in &plan.steps {
        let mut map: Vec<usize> = Vec::with_capacity(step.n_local);
        if step.has_extension {
            map.push(next_ancilla);
            next_ancilla += 1;
        }
        map.extend(0..k);

        circuit.compose(&step.u_inv, &map, &[])?;
        let mut swapped: Vec<usize> = Vec::new();
        for &local in &step.checked {
            let q = map[local];
            let a = next_ancilla;
            next_ancilla += 1;
            match placement {
                SwapPlacement::Optimized => {
                    circuit.cx(q, a).cx(a, q);
                }
                SwapPlacement::FullSwap => {
                    circuit.swap(q, a);
                }
            }
            swapped.push(a);
        }
        circuit.compose(&step.u, &map, &[])?;
        for a in swapped {
            circuit.measure(a, next_clbit)?;
            next_clbit += 1;
        }
    }

    Ok(BuiltAssertion {
        circuit,
        num_test: k,
        num_ancilla,
        num_clbits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StateSpec;
    use qra_math::{CVector, C64};
    use qra_sim::StatevectorSimulator;

    /// Runs `prep` on the test qubits, then the assertion, and returns the
    /// assertion-error rate over exact outcome analysis (8192 shots).
    fn error_rate(prep: &Circuit, built: &BuiltAssertion) -> f64 {
        let k = built.num_test;
        let mut full = Circuit::with_clbits(k + built.num_ancilla, built.num_clbits);
        full.compose(prep, &(0..k).collect::<Vec<_>>(), &[])
            .unwrap();
        let map: Vec<usize> = (0..k + built.num_ancilla).collect();
        let cl: Vec<usize> = (0..built.num_clbits).collect();
        full.compose(&built.circuit, &map, &cl).unwrap();
        let counts = StatevectorSimulator::with_seed(7).run(&full, 8192).unwrap();
        counts.any_set_frequency(&cl)
    }

    fn ghz_spec() -> StateSpec {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        StateSpec::pure(v).unwrap()
    }

    fn ghz_prep() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c
    }

    #[test]
    fn full_swap_placement_matches_optimized_semantics() {
        // Both placements implement the same assertion; the full SWAP
        // costs one extra CX per checked qubit (paper Table III vs Fig 1).
        let cs = ghz_spec().correct_states().unwrap();
        let opt = build_swap_assertion_with_placement(&cs, SwapPlacement::Optimized).unwrap();
        let full = build_swap_assertion_with_placement(&cs, SwapPlacement::FullSwap).unwrap();
        assert_eq!(error_rate(&ghz_prep(), &opt), 0.0);
        assert_eq!(error_rate(&ghz_prep(), &full), 0.0);
        let mut buggy = Circuit::new(3);
        buggy.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        let r_opt = error_rate(&buggy, &opt);
        let r_full = error_rate(&buggy, &full);
        assert!((r_opt - r_full).abs() < 0.03);
        let c_opt = qra_circuit::GateCounts::of(&opt.circuit).unwrap();
        let c_full = qra_circuit::GateCounts::of(&full.circuit).unwrap();
        assert_eq!(c_full.cx - c_opt.cx, 3, "one extra CX per checked qubit");
        assert_eq!(c_opt.cx, 10, "paper Fig 1 accounting");
        assert_eq!(c_full.cx, 13, "paper Table III accounting: 3 CX per swap");
    }

    #[test]
    fn default_builder_uses_optimized_placement() {
        let cs = ghz_spec().correct_states().unwrap();
        let default_built = build_swap_assertion(&cs).unwrap();
        let opt = build_swap_assertion_with_placement(&cs, SwapPlacement::Optimized).unwrap();
        assert_eq!(
            qra_circuit::GateCounts::of(&default_built.circuit).unwrap(),
            qra_circuit::GateCounts::of(&opt.circuit).unwrap()
        );
    }

    #[test]
    fn correct_ghz_passes() {
        let built = build_swap_assertion(&ghz_spec().correct_states().unwrap()).unwrap();
        assert_eq!(built.num_test, 3);
        assert_eq!(built.num_ancilla, 3);
        assert_eq!(built.num_clbits, 3);
        assert_eq!(error_rate(&ghz_prep(), &built), 0.0);
    }

    #[test]
    fn ghz_bug1_detected() {
        // Wrong sign: (|000⟩ − |111⟩)/√2 must raise errors.
        let built = build_swap_assertion(&ghz_spec().correct_states().unwrap()).unwrap();
        let mut buggy = Circuit::new(3);
        buggy.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        let rate = error_rate(&buggy, &built);
        assert!(rate > 0.4, "sign-flip bug missed: rate {rate}");
    }

    #[test]
    fn ghz_bug2_detected() {
        let built = build_swap_assertion(&ghz_spec().correct_states().unwrap()).unwrap();
        let mut buggy = Circuit::new(3);
        buggy.h(0).cx(1, 2).cx(0, 1);
        let rate = error_rate(&buggy, &built);
        assert!(rate > 0.2, "reorder bug missed: rate {rate}");
    }

    #[test]
    fn swap_design_corrects_state_after_pass() {
        // Assert |+⟩ on a qubit actually in |+⟩; afterwards the test qubit
        // must hold exactly |+⟩ again (the "corrected" property).
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let spec = StateSpec::pure(plus.clone()).unwrap();
        let built = build_swap_assertion(&spec.correct_states().unwrap()).unwrap();
        let mut full = Circuit::new(2);
        full.h(0);
        // Compose without the measurement to inspect the state.
        let unmeasured = {
            let mut c = built.circuit.clone();
            // Strip measurements by rebuilding.
            let mut stripped = Circuit::new(c.num_qubits());
            for inst in c.instructions() {
                if let Some(g) = inst.as_gate() {
                    stripped.append(g.clone(), &inst.qubits).unwrap();
                }
            }
            c = stripped;
            c
        };
        full.compose(&unmeasured, &[0, 1], &[]).unwrap();
        let sv = full.statevector().unwrap();
        // Joint state should be |+⟩ ⊗ |0⟩.
        let expect = plus.kron(&CVector::basis_state(2, 0));
        assert!(sv.approx_eq_up_to_phase(&expect, 1e-8));
    }

    #[test]
    fn mixed_state_assertion_ignores_entanglement() {
        // Program: GHZ on 3 qubits; assert the mixed state of the LAST TWO
        // qubits, ½(|00⟩⟨00| + |11⟩⟨11|) — paper Fig. 1 middle variant.
        let e = |i: usize| CVector::basis_state(4, i);
        let rho = qra_math::CMatrix::outer(&e(0), &e(0))
            .scale(C64::from(0.5))
            .add(&qra_math::CMatrix::outer(&e(3), &e(3)).scale(C64::from(0.5)))
            .unwrap();
        let spec = StateSpec::mixed(rho).unwrap();
        let built = build_swap_assertion(&spec.correct_states().unwrap()).unwrap();
        assert_eq!(built.num_test, 2);
        assert_eq!(built.num_clbits, 1, "t=2 of 4 checks one qubit");

        // Full circuit: 3 program qubits + ancillas; assertion acts on
        // program qubits 1, 2.
        let total = 3 + built.num_ancilla;
        let mut full = Circuit::with_clbits(total, built.num_clbits);
        full.h(0).cx(0, 1).cx(1, 2);
        let mut map = vec![1usize, 2];
        map.extend(3..total);
        let cl: Vec<usize> = (0..built.num_clbits).collect();
        full.compose(&built.circuit, &map, &cl).unwrap();
        let counts = StatevectorSimulator::with_seed(3).run(&full, 4096).unwrap();
        assert_eq!(
            counts.any_set_frequency(&cl),
            0.0,
            "correct mixed state must never flag"
        );
    }

    #[test]
    fn mixed_state_assertion_detects_wrong_parity() {
        let e = |i: usize| CVector::basis_state(4, i);
        let rho = qra_math::CMatrix::outer(&e(0), &e(0))
            .scale(C64::from(0.5))
            .add(&qra_math::CMatrix::outer(&e(3), &e(3)).scale(C64::from(0.5)))
            .unwrap();
        let spec = StateSpec::mixed(rho).unwrap();
        let built = build_swap_assertion(&spec.correct_states().unwrap()).unwrap();
        // Program in |01⟩ on the asserted qubits — outside the correct span.
        let mut prep = Circuit::new(2);
        prep.x(1);
        let rate = error_rate(&prep, &built);
        assert!(rate > 0.99, "odd-parity state must flag, rate {rate}");
    }

    #[test]
    fn approximate_set_assertion_passes_members_and_mixtures() {
        let set =
            StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)]).unwrap();
        let built = build_swap_assertion(&set.correct_states().unwrap()).unwrap();
        // GHZ (superposition of members) passes.
        assert_eq!(error_rate(&ghz_prep(), &built), 0.0);
        // |111⟩ (a member) passes.
        let mut prep = Circuit::new(3);
        prep.x(0).x(1).x(2);
        assert_eq!(error_rate(&prep, &built), 0.0);
        // |010⟩ (not a member) fails deterministically.
        let mut bad = Circuit::new(3);
        bad.x(1);
        assert!(error_rate(&bad, &built) > 0.99);
    }

    #[test]
    fn approximate_set_ignores_coefficients() {
        // Unequal GHZ-like superposition is still inside the set span.
        let set =
            StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)]).unwrap();
        let built = build_swap_assertion(&set.correct_states().unwrap()).unwrap();
        let mut prep = Circuit::new(3);
        prep.ry(0.7, 0).cx(0, 1).cx(1, 2); // cos|000⟩ + sin|111⟩
        assert_eq!(error_rate(&prep, &built), 0.0);
    }

    #[test]
    fn superset_pair_end_to_end() {
        // Correct set {|000⟩,|001⟩,|010⟩} (t=3): members pass, |011⟩ and
        // |100⟩ flag.
        let set = StateSpec::set(vec![
            CVector::basis_state(8, 0),
            CVector::basis_state(8, 1),
            CVector::basis_state(8, 2),
        ])
        .unwrap();
        let built = build_swap_assertion(&set.correct_states().unwrap()).unwrap();
        assert_eq!(built.num_clbits, 2, "two superset steps, one check each");
        for idx in [0usize, 1, 2] {
            let mut prep = Circuit::new(3);
            for q in 0..3 {
                if (idx >> (2 - q)) & 1 == 1 {
                    prep.x(q);
                }
            }
            assert_eq!(error_rate(&prep, &built), 0.0, "member {idx} flagged");
        }
        for idx in [3usize, 4, 7] {
            let mut prep = Circuit::new(3);
            for q in 0..3 {
                if (idx >> (2 - q)) & 1 == 1 {
                    prep.x(q);
                }
            }
            assert!(
                error_rate(&prep, &built) > 0.99,
                "non-member {idx} not flagged"
            );
        }
    }

    #[test]
    fn extension_case_end_to_end() {
        // t=3 of dim 4: {|00⟩,|01⟩,|10⟩} correct, |11⟩ incorrect.
        let set = StateSpec::set(vec![
            CVector::basis_state(4, 0),
            CVector::basis_state(4, 1),
            CVector::basis_state(4, 2),
        ])
        .unwrap();
        let built = build_swap_assertion(&set.correct_states().unwrap()).unwrap();
        assert_eq!(built.num_ancilla, 2, "extension + one measure ancilla");
        for idx in [0usize, 1, 2] {
            let mut prep = Circuit::new(2);
            for q in 0..2 {
                if (idx >> (1 - q)) & 1 == 1 {
                    prep.x(q);
                }
            }
            assert_eq!(error_rate(&prep, &built), 0.0, "member {idx} flagged");
        }
        let mut bad = Circuit::new(2);
        bad.x(0).x(1);
        assert!(error_rate(&bad, &built) > 0.99, "|11⟩ must flag");
    }
}
