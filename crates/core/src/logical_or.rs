//! Logical-OR based assertion circuits (paper §IV-E).
//!
//! Same `U⁻¹ … U` sandwich as the SWAP design, but instead of swapping
//! each checked qubit out to its own ancilla, the checked qubits are ORed
//! into a single ancilla (open-controlled multi-controlled-X followed by an
//! X on the ancilla): one ancilla and one measurement per step regardless
//! of how many qubits are checked. Unlike the SWAP design, the program
//! state is *not* corrected when the assertion fails.

use crate::plan::AssertionPlan;
use crate::spec::CorrectStates;
use crate::swap::BuiltAssertion;
use crate::AssertionError;
use qra_circuit::synthesis::mc_gate::{mcx, ControlState};
use qra_circuit::Circuit;

/// Builds the logical-OR based assertion circuit.
///
/// # Errors
///
/// Propagates plan/synthesis failures.
pub fn build_or_assertion(cs: &CorrectStates) -> Result<BuiltAssertion, AssertionError> {
    let plan = AssertionPlan::build(cs)?;
    let k = cs.num_qubits();

    let num_ancilla: usize = plan
        .steps
        .iter()
        .map(|s| usize::from(s.has_extension) + 1)
        .sum();
    let num_clbits = plan.steps.len();

    let mut circuit = Circuit::with_clbits(k + num_ancilla, num_clbits);
    let mut next_ancilla = k;

    for (step_idx, step) in plan.steps.iter().enumerate() {
        let mut map: Vec<usize> = Vec::with_capacity(step.n_local);
        if step.has_extension {
            map.push(next_ancilla);
            next_ancilla += 1;
        }
        map.extend(0..k);

        let or_ancilla = next_ancilla;
        next_ancilla += 1;

        circuit.compose(&step.u_inv, &map, &[])?;
        let checked: Vec<usize> = step.checked.iter().map(|&c| map[c]).collect();
        if checked.len() == 1 {
            // OR of one bit is the bit itself.
            circuit.cx(checked[0], or_ancilla);
        } else {
            // Open-controlled MCX sets the ancilla when ALL checked qubits
            // are |0⟩ (the pass condition); the trailing X inverts it so
            // ancilla |1⟩ = assertion error.
            let controls: Vec<(usize, ControlState)> =
                checked.iter().map(|&q| (q, ControlState::Open)).collect();
            mcx(&mut circuit, &controls, or_ancilla)?;
            circuit.x(or_ancilla);
        }
        circuit.compose(&step.u, &map, &[])?;
        circuit.measure(or_ancilla, step_idx)?;
    }
    debug_assert_eq!(next_ancilla, k + num_ancilla);

    Ok(BuiltAssertion {
        circuit,
        num_test: k,
        num_ancilla,
        num_clbits,
    })
}

/// Builds the logical-OR assertion with a **V-chain** multi-controlled-X:
/// linear CX count (the paper's cited linear-complexity Toffoli
/// decompositions \[24\]) at the price of `k − 2` extra clean ancillas when
/// a step checks `k > 2` qubits. The paper's Table III assumes this
/// linear regime; [`build_or_assertion`] keeps the one-ancilla footprint
/// with an exponential ancilla-free recursion instead.
///
/// # Errors
///
/// Propagates plan/synthesis failures.
pub fn build_or_assertion_v_chain(cs: &CorrectStates) -> Result<BuiltAssertion, AssertionError> {
    use qra_circuit::synthesis::mc_gate::mcx_v_chain;
    let plan = AssertionPlan::build(cs)?;
    let k = cs.num_qubits();

    // Ancillas: per step, extension (0/1) + 1 OR flag + chain helpers.
    let num_ancilla: usize = plan
        .steps
        .iter()
        .map(|s| usize::from(s.has_extension) + 1 + s.checked.len().saturating_sub(2))
        .sum();
    let num_clbits = plan.steps.len();

    let mut circuit = Circuit::with_clbits(k + num_ancilla, num_clbits);
    let mut next_ancilla = k;

    for (step_idx, step) in plan.steps.iter().enumerate() {
        let mut map: Vec<usize> = Vec::with_capacity(step.n_local);
        if step.has_extension {
            map.push(next_ancilla);
            next_ancilla += 1;
        }
        map.extend(0..k);

        let or_ancilla = next_ancilla;
        next_ancilla += 1;
        let helpers: Vec<usize> = {
            let n_help = step.checked.len().saturating_sub(2);
            let v = (next_ancilla..next_ancilla + n_help).collect();
            next_ancilla += n_help;
            v
        };

        circuit.compose(&step.u_inv, &map, &[])?;
        let checked: Vec<usize> = step.checked.iter().map(|&c| map[c]).collect();
        if checked.len() == 1 {
            circuit.cx(checked[0], or_ancilla);
        } else {
            // Open controls: X-wrap the checked qubits around the V-chain.
            for &q in &checked {
                circuit.x(q);
            }
            mcx_v_chain(&mut circuit, &checked, or_ancilla, &helpers)?;
            for &q in &checked {
                circuit.x(q);
            }
            circuit.x(or_ancilla);
        }
        circuit.compose(&step.u, &map, &[])?;
        circuit.measure(or_ancilla, step_idx)?;
    }
    debug_assert_eq!(next_ancilla, k + num_ancilla);

    Ok(BuiltAssertion {
        circuit,
        num_test: k,
        num_ancilla,
        num_clbits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::StateSpec;
    use qra_math::{CVector, C64};
    use qra_sim::StatevectorSimulator;

    fn error_rate(prep: &Circuit, built: &BuiltAssertion) -> f64 {
        let k = built.num_test;
        let mut full = Circuit::with_clbits(k + built.num_ancilla, built.num_clbits);
        full.compose(prep, &(0..k).collect::<Vec<_>>(), &[])
            .unwrap();
        let map: Vec<usize> = (0..k + built.num_ancilla).collect();
        let cl: Vec<usize> = (0..built.num_clbits).collect();
        full.compose(&built.circuit, &map, &cl).unwrap();
        let counts = StatevectorSimulator::with_seed(11)
            .run(&full, 8192)
            .unwrap();
        counts.any_set_frequency(&cl)
    }

    fn ghz() -> CVector {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    }

    #[test]
    fn single_qubit_or_is_one_cx() {
        // §IV-E / Table III: single-qubit OR assertion = 1 CX + 2 SG.
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let built =
            build_or_assertion(&StateSpec::pure(plus).unwrap().correct_states().unwrap()).unwrap();
        let counts = qra_circuit::GateCounts::of(&built.circuit).unwrap();
        assert_eq!(counts.cx, 1);
        assert_eq!(counts.sg, 2);
        assert_eq!(built.num_ancilla, 1);
        assert_eq!(counts.measure, 1);
    }

    #[test]
    fn correct_ghz_passes_with_one_ancilla() {
        let built =
            build_or_assertion(&StateSpec::pure(ghz()).unwrap().correct_states().unwrap()).unwrap();
        assert_eq!(built.num_ancilla, 1);
        assert_eq!(built.num_clbits, 1);
        let mut prep = Circuit::new(3);
        prep.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(error_rate(&prep, &built), 0.0);
    }

    #[test]
    fn ghz_bugs_detected() {
        let built =
            build_or_assertion(&StateSpec::pure(ghz()).unwrap().correct_states().unwrap()).unwrap();
        let mut bug1 = Circuit::new(3);
        bug1.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        assert!(error_rate(&bug1, &built) > 0.4);
        let mut bug2 = Circuit::new(3);
        bug2.h(0).cx(1, 2).cx(0, 1);
        assert!(error_rate(&bug2, &built) > 0.2);
    }

    #[test]
    fn or_design_does_not_correct_failing_state() {
        // Assert |0⟩ on a qubit in |1⟩: the test qubit stays |1⟩ after the
        // (failing) assertion — §IV-E's distinguishing property.
        let spec = StateSpec::pure(CVector::basis_state(2, 0)).unwrap();
        let built = build_or_assertion(&spec.correct_states().unwrap()).unwrap();
        let mut full = Circuit::new(2);
        full.x(0);
        // Strip measurement to inspect the joint state.
        let mut stripped = Circuit::new(built.circuit.num_qubits());
        for inst in built.circuit.instructions() {
            if let Some(g) = inst.as_gate() {
                stripped.append(g.clone(), &inst.qubits).unwrap();
            }
        }
        full.compose(&stripped, &[0, 1], &[]).unwrap();
        let sv = full.statevector().unwrap();
        // Expected: |1⟩ ⊗ |1⟩ (ancilla flagged, test qubit untouched).
        assert!(sv.approx_eq_up_to_phase(
            &CVector::basis_state(2, 1).kron(&CVector::basis_state(2, 1)),
            1e-9
        ));
    }

    #[test]
    fn mixed_state_or_assertion() {
        let e = |i: usize| CVector::basis_state(4, i);
        let rho = qra_math::CMatrix::outer(&e(0), &e(0))
            .scale(C64::from(0.5))
            .add(&qra_math::CMatrix::outer(&e(3), &e(3)).scale(C64::from(0.5)))
            .unwrap();
        let built =
            build_or_assertion(&StateSpec::mixed(rho).unwrap().correct_states().unwrap()).unwrap();
        let mut prep = Circuit::new(2);
        prep.h(0).cx(0, 1); // Bell state is a valid purification
        assert_eq!(error_rate(&prep, &built), 0.0);
        let mut bad = Circuit::new(2);
        bad.x(0);
        assert!(error_rate(&bad, &built) > 0.99);
    }

    #[test]
    fn approximate_set_or_assertion() {
        let set =
            StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)]).unwrap();
        let built = build_or_assertion(&set.correct_states().unwrap()).unwrap();
        let mut prep = Circuit::new(3);
        prep.h(0).cx(0, 1).cx(1, 2);
        assert_eq!(error_rate(&prep, &built), 0.0);
        let mut bad = Circuit::new(3);
        bad.x(2);
        assert!(error_rate(&bad, &built) > 0.99);
    }

    #[test]
    fn v_chain_variant_matches_recursive_semantics() {
        // GHZ-type 4-qubit pure assertion: both OR variants agree on
        // pass/fail; the v-chain costs fewer CX at the price of ancillas.
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(16);
        v[0] = C64::from(s);
        v[15] = C64::from(s);
        let cs = StateSpec::pure(v).unwrap().correct_states().unwrap();
        let recursive = build_or_assertion(&cs).unwrap();
        let chained = build_or_assertion_v_chain(&cs).unwrap();
        assert_eq!(recursive.num_ancilla, 1);
        assert_eq!(chained.num_ancilla, 1 + 2, "flag + (4−2) helpers");

        let mut good = Circuit::new(4);
        good.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
        assert_eq!(error_rate(&good, &recursive), 0.0);
        assert_eq!(error_rate(&good, &chained), 0.0);

        let mut bad = Circuit::new(4);
        bad.u2(std::f64::consts::PI, 0.0, 0)
            .cx(0, 1)
            .cx(1, 2)
            .cx(2, 3);
        let r1 = error_rate(&bad, &recursive);
        let r2 = error_rate(&bad, &chained);
        assert!(r1 > 0.4 && (r1 - r2).abs() < 0.03, "r1={r1} r2={r2}");

        // Cost comparison: the chain must be cheaper in CX.
        let c_rec = qra_circuit::GateCounts::of(&recursive.circuit).unwrap();
        let c_chain = qra_circuit::GateCounts::of(&chained.circuit).unwrap();
        assert!(
            c_chain.cx < c_rec.cx,
            "v-chain {} should beat recursive {}",
            c_chain.cx,
            c_rec.cx
        );
    }

    #[test]
    fn v_chain_small_checked_sets_degrade_gracefully() {
        // With ≤ 2 checked qubits no helpers are needed.
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let cs = StateSpec::pure(plus).unwrap().correct_states().unwrap();
        let built = build_or_assertion_v_chain(&cs).unwrap();
        assert_eq!(built.num_ancilla, 1);
        let counts = qra_circuit::GateCounts::of(&built.circuit).unwrap();
        assert_eq!(counts.cx, 1);
    }

    #[test]
    fn superset_pair_uses_two_ancillas() {
        let set = StateSpec::set(vec![
            CVector::basis_state(8, 0),
            CVector::basis_state(8, 1),
            CVector::basis_state(8, 2),
        ])
        .unwrap();
        let built = build_or_assertion(&set.correct_states().unwrap()).unwrap();
        assert_eq!(built.num_ancilla, 2);
        assert_eq!(built.num_clbits, 2);
        let mut ok = Circuit::new(3);
        ok.x(2); // |001⟩ is a member
        assert_eq!(error_rate(&ok, &built), 0.0);
        let mut bad = Circuit::new(3);
        bad.x(0); // |100⟩ is not
        assert!(error_rate(&bad, &built) > 0.99);
    }
}
