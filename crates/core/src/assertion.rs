//! The top-level assertion API: synthesise, select, and insert.
//!
//! This mirrors the four-argument `assert(circuit, qubitList, stateSet,
//! design)` function the paper adds to Qiskit (§VII): callers hand a
//! [`StateSpec`], pick a [`Design`] (or [`Design::Auto`], the paper's
//! `NONE`, which selects the cheapest in entangling gates), and
//! [`insert_assertion`] splices the assertion — ancillas, measurements and
//! all — into an existing program circuit.

use crate::logical_or::build_or_assertion;
use crate::ndd::build_ndd_assertion;
use crate::spec::StateSpec;
use crate::swap::{build_swap_assertion, BuiltAssertion};
use crate::AssertionError;
use qra_circuit::{Circuit, GateCounts};
use qra_sim::Counts;
use std::fmt;

/// The assertion circuit design to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Design {
    /// Synthesise all three designs and keep the one with the fewest
    /// entangling gates (the paper's `design = NONE`). CX-count ties
    /// resolve deterministically in the preference order
    /// Ndd > LogicalOr > Swap.
    #[default]
    Auto,
    /// SWAP-based design (§IV): corrects the state on pass.
    Swap,
    /// Logical-OR based design (§IV-E): one ancilla, one measurement.
    LogicalOr,
    /// NDD phase-kickback design (§V): one ancilla, any rank.
    Ndd,
}

impl fmt::Display for Design {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Design::Auto => "auto",
            Design::Swap => "swap",
            Design::LogicalOr => "logical-or",
            Design::Ndd => "ndd",
        };
        write!(f, "{name}")
    }
}

/// A synthesised assertion: the local circuit plus metadata.
#[derive(Debug, Clone)]
pub struct Assertion {
    built: BuiltAssertion,
    design: Design,
    counts: GateCounts,
}

impl Assertion {
    /// The design that was actually used (never [`Design::Auto`]).
    pub fn design(&self) -> Design {
        self.design
    }

    /// The local assertion circuit: test qubits `0..num_test_qubits()`,
    /// ancillas after.
    pub fn circuit(&self) -> &Circuit {
        &self.built.circuit
    }

    /// Number of qubits under test.
    pub fn num_test_qubits(&self) -> usize {
        self.built.num_test
    }

    /// Number of ancilla qubits required.
    pub fn num_ancillas(&self) -> usize {
        self.built.num_ancilla
    }

    /// Number of classical bits (assertion measurements).
    pub fn num_clbits(&self) -> usize {
        self.built.num_clbits
    }

    /// The paper's cost quadruple for this assertion circuit.
    pub fn gate_counts(&self) -> GateCounts {
        self.counts
    }

    /// `true` when a passing assertion re-prepares the asserted state
    /// (only the SWAP design has this property, §IV-E).
    pub fn corrects_state(&self) -> bool {
        self.design == Design::Swap
    }
}

/// Synthesises an assertion circuit for `spec` with the requested design.
///
/// # Errors
///
/// * [`AssertionError::Unassertable`] for full-rank mixed states;
/// * synthesis failures from the underlying design builders.
///
/// ```rust
/// use qra_core::{synthesize_assertion, Design, StateSpec};
/// use qra_math::CVector;
///
/// let spec = StateSpec::pure(CVector::basis_state(2, 0))?;
/// let assertion = synthesize_assertion(&spec, Design::Ndd)?;
/// assert_eq!(assertion.num_ancillas(), 1);
/// assert_eq!(assertion.gate_counts().cx, 1); // CZ counted as one CX
/// # Ok::<(), qra_core::AssertionError>(())
/// ```
pub fn synthesize_assertion(spec: &StateSpec, design: Design) -> Result<Assertion, AssertionError> {
    let cs = spec.correct_states()?;
    let build = |d: Design| -> Result<Assertion, AssertionError> {
        let built = match d {
            Design::Swap => build_swap_assertion(&cs)?,
            Design::LogicalOr => build_or_assertion(&cs)?,
            Design::Ndd => build_ndd_assertion(&cs)?,
            Design::Auto => unreachable!("auto resolved by caller"),
        };
        let counts = GateCounts::of(&built.circuit)?.with_ancilla(built.num_ancilla);
        Ok(Assertion {
            built,
            design: d,
            counts,
        })
    };
    match design {
        Design::Auto => {
            // Candidates in fixed preference order, so a CX-count tie
            // resolves deterministically to Ndd > LogicalOr > Swap: a
            // later candidate replaces the incumbent only when strictly
            // cheaper in entangling gates.
            let candidates = [Design::Ndd, Design::LogicalOr, Design::Swap];
            let mut best: Option<Assertion> = None;
            let mut failures = Vec::new();
            for d in candidates {
                match build(d) {
                    Ok(a) => {
                        let better = best.as_ref().is_none_or(|b| a.counts.cx < b.counts.cx);
                        if better {
                            best = Some(a);
                        }
                    }
                    Err(e) => failures.push((d, Box::new(e))),
                }
            }
            best.ok_or(AssertionError::AutoSelectionFailed { failures })
        }
        d => build(d),
    }
}

/// A handle returned by [`insert_assertion`], locating the assertion's
/// ancillas and classical bits inside the host circuit.
#[derive(Debug, Clone)]
pub struct AssertionHandle {
    /// The design that was used.
    pub design: Design,
    /// Host-circuit indices of the ancilla qubits added.
    pub ancilla_qubits: Vec<usize>,
    /// Host-circuit classical bits holding the assertion measurements
    /// (any bit reading 1 = assertion error).
    pub clbits: Vec<usize>,
    /// Circuit cost of the inserted assertion.
    pub counts: GateCounts,
}

impl AssertionHandle {
    /// Fraction of shots that raised this assertion (any flag bit set).
    pub fn error_rate(&self, counts: &Counts) -> f64 {
        counts.any_set_frequency(&self.clbits)
    }

    /// Post-selects the shots where this assertion passed, returning the
    /// filtered histogram and the retained fraction (the paper's
    /// error-filtering use case, §IX-B).
    pub fn post_select(&self, counts: &Counts) -> (Counts, f64) {
        counts.post_select_zero(&self.clbits)
    }
}

/// Inserts an assertion for `spec` on `qubits` of `circuit`, appending the
/// required ancillas and classical bits. This is the Rust counterpart of
/// the paper's `assert(circuit, qubitList, stateSet, design)`.
///
/// # Errors
///
/// * [`AssertionError::InvalidQubitList`] for duplicate/out-of-range
///   qubits or a length mismatch with the spec;
/// * everything [`synthesize_assertion`] can return.
pub fn insert_assertion(
    circuit: &mut Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    design: Design,
) -> Result<AssertionHandle, AssertionError> {
    if qubits.len() != spec.num_qubits() {
        return Err(AssertionError::InvalidQubitList {
            reason: format!(
                "spec covers {} qubits but {} were supplied",
                spec.num_qubits(),
                qubits.len()
            ),
        });
    }
    for (i, &q) in qubits.iter().enumerate() {
        if q >= circuit.num_qubits() {
            return Err(AssertionError::InvalidQubitList {
                reason: format!("qubit {q} out of range"),
            });
        }
        if qubits[..i].contains(&q) {
            return Err(AssertionError::InvalidQubitList {
                reason: format!("qubit {q} listed twice"),
            });
        }
    }
    let assertion = synthesize_assertion(spec, design)?;

    let anc_base = circuit.num_qubits();
    let cl_base = circuit.num_clbits();
    circuit.expand_qubits(anc_base + assertion.num_ancillas());
    circuit.expand_clbits(cl_base + assertion.num_clbits());

    let mut qubit_map: Vec<usize> = qubits.to_vec();
    qubit_map.extend(anc_base..anc_base + assertion.num_ancillas());
    let clbit_map: Vec<usize> = (cl_base..cl_base + assertion.num_clbits()).collect();
    circuit.compose(assertion.circuit(), &qubit_map, &clbit_map)?;

    Ok(AssertionHandle {
        design: assertion.design(),
        ancilla_qubits: (anc_base..anc_base + assertion.num_ancillas()).collect(),
        clbits: clbit_map,
        counts: assertion.gate_counts(),
    })
}

/// Inserts a *de-allocation assertion*: checks that `qubits` are back in
/// `|0…0⟩` — the paper's §VIII "de-allocation of ancillary qubits"
/// pattern (ancillas must be returned clean before reuse, or later
/// computations silently corrupt).
///
/// # Errors
///
/// Same conditions as [`insert_assertion`].
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_core::{insert_deallocation_assertion, Design};
/// use qra_sim::StatevectorSimulator;
///
/// // A compute/uncompute pair leaves the helper qubit clean…
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).cx(0, 1);
/// let handle = insert_deallocation_assertion(&mut c, &[1], Design::Ndd)?;
/// let counts = StatevectorSimulator::with_seed(1).run(&c, 512)?;
/// assert_eq!(handle.error_rate(&counts), 0.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn insert_deallocation_assertion(
    circuit: &mut Circuit,
    qubits: &[usize],
    design: Design,
) -> Result<AssertionHandle, AssertionError> {
    let dim = 1usize.checked_shl(qubits.len() as u32).ok_or_else(|| {
        AssertionError::InvalidQubitList {
            reason: "too many qubits".into(),
        }
    })?;
    let spec = StateSpec::pure(qra_math::CVector::basis_state(dim, 0))?;
    insert_assertion(circuit, qubits, &spec, design)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::{CVector, C64};
    use qra_sim::StatevectorSimulator;

    fn ghz() -> CVector {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    }

    #[test]
    fn auto_selects_cheapest_design() {
        // For the even-parity set, NDD (2 CX) beats SWAP and OR.
        let spec =
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
        let auto = synthesize_assertion(&spec, Design::Auto).unwrap();
        for d in [Design::Swap, Design::LogicalOr, Design::Ndd] {
            let a = synthesize_assertion(&spec, d).unwrap();
            assert!(auto.gate_counts().cx <= a.gate_counts().cx);
        }
        assert_ne!(auto.design(), Design::Auto);
    }

    #[test]
    fn auto_tie_break_is_deterministic() {
        // For every spec, Auto must pick the most-preferred design
        // (Ndd > LogicalOr > Swap) among those with minimal CX count —
        // same answer on every run.
        let specs = [
            StateSpec::pure(CVector::basis_state(2, 0)).unwrap(),
            StateSpec::pure(ghz()).unwrap(),
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap(),
        ];
        for spec in &specs {
            let auto = synthesize_assertion(spec, Design::Auto).unwrap();
            let expected = [Design::Ndd, Design::LogicalOr, Design::Swap]
                .into_iter()
                .filter_map(|d| {
                    synthesize_assertion(spec, d)
                        .ok()
                        .map(|a| (d, a.gate_counts().cx))
                })
                .fold(None, |best: Option<(Design, usize)>, (d, cx)| match best {
                    Some((_, best_cx)) if best_cx <= cx => best,
                    _ => Some((d, cx)),
                })
                .map(|(d, _)| d)
                .unwrap();
            assert_eq!(auto.design(), expected);
            // Re-running gives the identical choice.
            let again = synthesize_assertion(spec, Design::Auto).unwrap();
            assert_eq!(again.design(), auto.design());
        }
    }

    #[test]
    fn corrects_state_flag() {
        let spec = StateSpec::pure(CVector::basis_state(2, 0)).unwrap();
        assert!(synthesize_assertion(&spec, Design::Swap)
            .unwrap()
            .corrects_state());
        assert!(!synthesize_assertion(&spec, Design::Ndd)
            .unwrap()
            .corrects_state());
        assert!(!synthesize_assertion(&spec, Design::LogicalOr)
            .unwrap()
            .corrects_state());
    }

    #[test]
    fn insert_assertion_end_to_end_each_design() {
        for design in [Design::Swap, Design::LogicalOr, Design::Ndd, Design::Auto] {
            let mut program = Circuit::new(3);
            program.h(0).cx(0, 1).cx(1, 2);
            let handle = insert_assertion(
                &mut program,
                &[0, 1, 2],
                &StateSpec::pure(ghz()).unwrap(),
                design,
            )
            .unwrap();
            let counts = StatevectorSimulator::with_seed(5)
                .run(&program, 2048)
                .unwrap();
            assert_eq!(
                handle.error_rate(&counts),
                0.0,
                "{design} flagged a correct state"
            );
        }
    }

    #[test]
    fn insert_assertion_detects_bug_each_design() {
        for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
            let mut program = Circuit::new(3);
            program.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
            let handle = insert_assertion(
                &mut program,
                &[0, 1, 2],
                &StateSpec::pure(ghz()).unwrap(),
                design,
            )
            .unwrap();
            let counts = StatevectorSimulator::with_seed(5)
                .run(&program, 2048)
                .unwrap();
            assert!(
                handle.error_rate(&counts) > 0.4,
                "{design} missed the sign bug"
            );
        }
    }

    #[test]
    fn insert_on_subset_of_qubits() {
        // 4-qubit program; assert |+⟩ on qubit 2 only.
        let mut program = Circuit::new(4);
        program.h(2).x(3);
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let handle = insert_assertion(
            &mut program,
            &[2],
            &StateSpec::pure(plus).unwrap(),
            Design::LogicalOr,
        )
        .unwrap();
        assert_eq!(handle.ancilla_qubits, vec![4]);
        let counts = StatevectorSimulator::with_seed(2)
            .run(&program, 1024)
            .unwrap();
        assert_eq!(handle.error_rate(&counts), 0.0);
    }

    #[test]
    fn multiple_assertions_stack() {
        // Two sequential assertions on the same program.
        let mut program = Circuit::new(2);
        program.h(0).cx(0, 1);
        let s = 0.5f64.sqrt();
        let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
        let h1 = insert_assertion(
            &mut program,
            &[0, 1],
            &StateSpec::pure(bell.clone()).unwrap(),
            Design::Swap,
        )
        .unwrap();
        let h2 = insert_assertion(
            &mut program,
            &[0, 1],
            &StateSpec::pure(bell).unwrap(),
            Design::Ndd,
        )
        .unwrap();
        assert_ne!(h1.clbits, h2.clbits);
        let counts = StatevectorSimulator::with_seed(9)
            .run(&program, 1024)
            .unwrap();
        assert_eq!(h1.error_rate(&counts), 0.0);
        assert_eq!(h2.error_rate(&counts), 0.0);
    }

    #[test]
    fn invalid_qubit_lists_rejected() {
        let spec = StateSpec::pure(CVector::basis_state(4, 0)).unwrap();
        let mut c = Circuit::new(2);
        assert!(matches!(
            insert_assertion(&mut c, &[0], &spec, Design::Ndd),
            Err(AssertionError::InvalidQubitList { .. })
        ));
        assert!(matches!(
            insert_assertion(&mut c, &[0, 5], &spec, Design::Ndd),
            Err(AssertionError::InvalidQubitList { .. })
        ));
        assert!(matches!(
            insert_assertion(&mut c, &[0, 0], &spec, Design::Ndd),
            Err(AssertionError::InvalidQubitList { .. })
        ));
    }

    #[test]
    fn post_select_filters_errors() {
        // Prepare (|0⟩+|1⟩)/√2, assert |0⟩ with NDD: half the shots flag;
        // post-selection keeps only |0⟩ results.
        let mut program = Circuit::new(1);
        program.h(0);
        let handle = insert_assertion(
            &mut program,
            &[0],
            &StateSpec::pure(CVector::basis_state(2, 0)).unwrap(),
            Design::Ndd,
        )
        .unwrap();
        program.measure(0, handle.clbits.len()).ok();
        // Ensure the data measurement lands on its own clbit.
        let data_clbit = handle.clbits.iter().max().unwrap() + 1;
        let mut program2 = Circuit::new(1);
        program2.h(0);
        let handle2 = insert_assertion(
            &mut program2,
            &[0],
            &StateSpec::pure(CVector::basis_state(2, 0)).unwrap(),
            Design::Ndd,
        )
        .unwrap();
        program2.expand_clbits(data_clbit + 1);
        program2.measure(0, data_clbit).unwrap();
        let counts = StatevectorSimulator::with_seed(3)
            .run(&program2, 4096)
            .unwrap();
        let rate = handle2.error_rate(&counts);
        assert!((rate - 0.5).abs() < 0.05);
        let (filtered, kept) = handle2.post_select(&counts);
        assert!((kept - 0.5).abs() < 0.05);
        // Every retained shot has the data qubit measured as 0.
        assert_eq!(filtered.marginal_frequency(data_clbit), 0.0);
    }

    #[test]
    fn deallocation_assertion_flags_dirty_ancilla() {
        // Compute WITHOUT uncompute: the helper is left entangled/dirty.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let handle = insert_deallocation_assertion(&mut c, &[1], Design::Ndd).unwrap();
        let counts = StatevectorSimulator::with_seed(4).run(&c, 2048).unwrap();
        let rate = handle.error_rate(&counts);
        assert!((rate - 0.5).abs() < 0.05, "dirty ancilla rate {rate}");
    }

    #[test]
    fn deallocation_assertion_multi_qubit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(0, 2).cx(0, 1).cx(0, 2);
        let handle = insert_deallocation_assertion(&mut c, &[1, 2], Design::Swap).unwrap();
        let counts = StatevectorSimulator::with_seed(5).run(&c, 512).unwrap();
        assert_eq!(handle.error_rate(&counts), 0.0);
    }

    #[test]
    fn design_display() {
        assert_eq!(Design::Auto.to_string(), "auto");
        assert_eq!(Design::Swap.to_string(), "swap");
        assert_eq!(Design::LogicalOr.to_string(), "logical-or");
        assert_eq!(Design::Ndd.to_string(), "ndd");
    }
}
