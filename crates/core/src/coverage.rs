//! Assertion-coverage classification (the paper's Table II).
//!
//! Classifies a [`StateSpec`] into the paper's state classes and reports,
//! for each assertion scheme, whether the class is fully supported
//! (`All`), supported without probability checking (`Part`), or not
//! supported (`NA`).

use crate::baselines::primitive;
use crate::spec::StateSpec;
use std::fmt;

/// The state classes of the paper's Table II rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateClass {
    /// A computational basis state.
    Classical,
    /// A separable (product) pure state with at least one superposed qubit.
    Superposition,
    /// An entangled pure state.
    Entangled,
    /// A mixed state (density matrix of rank > 1).
    Mixed,
    /// An approximate set of states.
    SetOfStates,
}

impl fmt::Display for StateClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StateClass::Classical => "classical",
            StateClass::Superposition => "superposition",
            StateClass::Entangled => "entanglement",
            StateClass::Mixed => "mixed state",
            StateClass::SetOfStates => "set of states",
        };
        write!(f, "{s}")
    }
}

/// The assertion schemes of the paper's Table II columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Statistical assertion (Huang & Martonosi).
    Stat,
    /// Runtime assertion primitives (Liu, Byrd, Zhou).
    Primitive,
    /// Projection-based assertion (Li et al.).
    Proq,
    /// This paper's SWAP-based design.
    SwapBased,
    /// This paper's logical-OR design.
    LogicalOrBased,
    /// This paper's NDD design.
    NddBased,
}

impl Scheme {
    /// All schemes in the paper's column order.
    pub const ALL: [Scheme; 6] = [
        Scheme::Stat,
        Scheme::Primitive,
        Scheme::Proq,
        Scheme::SwapBased,
        Scheme::LogicalOrBased,
        Scheme::NddBased,
    ];
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Scheme::Stat => "Stat",
            Scheme::Primitive => "Primitive",
            Scheme::Proq => "Proq",
            Scheme::SwapBased => "SWAP based",
            Scheme::LogicalOrBased => "logical OR based",
            Scheme::NddBased => "NDD based",
        };
        write!(f, "{s}")
    }
}

/// Support level for a (scheme, class) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Fully supported.
    All,
    /// Partially supported (e.g. membership without probabilities).
    Part,
    /// Not supported.
    Na,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Support::All => "ALL",
            Support::Part => "Part",
            Support::Na => "N/A",
        };
        write!(f, "{s}")
    }
}

/// Classifies a spec into a [`StateClass`].
pub fn classify(spec: &StateSpec) -> StateClass {
    match spec {
        StateSpec::Set(_) => StateClass::SetOfStates,
        StateSpec::Mixed(rho) => {
            // Rank-1 density matrices are secretly pure.
            match qra_math::hermitian_eigen(rho) {
                Ok(eig) if eig.rank(crate::spec::RANK_TOL) == 1 => classify_pure(&eig.vectors[0]),
                _ => StateClass::Mixed,
            }
        }
        StateSpec::Pure(v) => classify_pure(v),
    }
}

fn classify_pure(v: &qra_math::CVector) -> StateClass {
    const TOL: f64 = 1e-9;
    // Classical: exactly one non-zero amplitude.
    let hot = v.iter().filter(|a| a.norm() > TOL).count();
    if hot == 1 {
        return StateClass::Classical;
    }
    // Separable: factors into single-qubit states (greedy check).
    if is_product(v) {
        StateClass::Superposition
    } else {
        StateClass::Entangled
    }
}

fn is_product(v: &qra_math::CVector) -> bool {
    let Ok(n) = qra_math::qubits_for_dim(v.len()) else {
        return false;
    };
    if n == 1 {
        return true;
    }
    let mut rest = v.clone();
    for _ in 0..n - 1 {
        let half = rest.len() / 2;
        let top = qra_math::CVector::new(rest.as_slice()[..half].to_vec());
        let bottom = qra_math::CVector::new(rest.as_slice()[half..].to_vec());
        let tn = top.norm();
        let bn = bottom.norm();
        let sub = if bn <= 1e-9 {
            top
        } else if tn <= 1e-9 {
            bottom
        } else {
            // Proportionality check.
            let mut best = (0usize, 0.0f64);
            for (i, z) in top.iter().enumerate() {
                if z.norm() > best.1 {
                    best = (i, z.norm());
                }
            }
            let ratio = bottom.amplitude(best.0) / top.amplitude(best.0);
            if !bottom.approx_eq(&top.scale(ratio), 1e-7) {
                return false;
            }
            top
        };
        match sub.normalized() {
            Ok(s) => rest = s,
            Err(_) => return false,
        }
    }
    true
}

/// The support level of `scheme` for `spec` — Table II, computed rather
/// than tabulated: the baseline rules encode the prior works' documented
/// limits, while the three proposed designs answer from their actual
/// synthesis coverage.
pub fn support(scheme: Scheme, spec: &StateSpec) -> Support {
    let class = classify(spec);
    match scheme {
        Scheme::Stat => match class {
            StateClass::Classical => Support::All,
            // Probability distributions only: relative phases invisible.
            StateClass::Superposition | StateClass::Entangled => Support::Part,
            StateClass::Mixed | StateClass::SetOfStates => Support::Na,
        },
        Scheme::Primitive => match class {
            StateClass::Classical => Support::All,
            StateClass::Superposition => {
                if primitive::supports(spec).is_some() {
                    Support::All
                } else {
                    Support::Part
                }
            }
            StateClass::Entangled => {
                // Only parity-style entangled sets; precise entangled
                // states with coefficients are out of reach.
                Support::Part
            }
            StateClass::Mixed | StateClass::SetOfStates => {
                if primitive::supports(spec).is_some() {
                    Support::Part
                } else {
                    Support::Na
                }
            }
        },
        Scheme::Proq => match class {
            StateClass::Classical | StateClass::Superposition | StateClass::Entangled => {
                Support::All
            }
            StateClass::Mixed => {
                if spec.correct_states().is_ok() {
                    Support::Part
                } else {
                    Support::Na
                }
            }
            StateClass::SetOfStates => Support::Na,
        },
        Scheme::SwapBased | Scheme::LogicalOrBased | Scheme::NddBased => match class {
            StateClass::Classical | StateClass::Superposition | StateClass::Entangled => {
                Support::All
            }
            // Membership without probabilities — the paper's "Part".
            StateClass::Mixed | StateClass::SetOfStates => {
                if spec.correct_states().is_ok() {
                    Support::Part
                } else {
                    Support::Na
                }
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::{CMatrix, CVector, C64};

    fn ghz() -> CVector {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    }

    /// A rank-2 mixed state on 2 qubits: ½(|00⟩⟨00| + |11⟩⟨11|).
    fn rank2_mixed() -> StateSpec {
        let a = CVector::basis_state(4, 0);
        let b = CVector::basis_state(4, 3);
        let rho = CMatrix::outer(&a, &a)
            .scale(C64::from(0.5))
            .add(&CMatrix::outer(&b, &b).scale(C64::from(0.5)))
            .unwrap();
        StateSpec::mixed(rho).unwrap()
    }

    #[test]
    fn classification() {
        let classical = StateSpec::pure(CVector::basis_state(4, 2)).unwrap();
        assert_eq!(classify(&classical), StateClass::Classical);

        let s = 0.5f64.sqrt();
        let plus_zero = CVector::from_real(&[s, 0.0, s, 0.0]);
        assert_eq!(
            classify(&StateSpec::pure(plus_zero).unwrap()),
            StateClass::Superposition
        );

        assert_eq!(
            classify(&StateSpec::pure(ghz()).unwrap()),
            StateClass::Entangled
        );

        let mixed = rank2_mixed();
        assert_eq!(classify(&mixed), StateClass::Mixed);

        let set = StateSpec::set(vec![CVector::basis_state(2, 0)]).unwrap();
        assert_eq!(classify(&set), StateClass::SetOfStates);
    }

    #[test]
    fn rank_one_density_classified_as_pure() {
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let rho = CMatrix::outer(&plus, &plus);
        assert_eq!(
            classify(&StateSpec::mixed(rho).unwrap()),
            StateClass::Superposition
        );
    }

    #[test]
    fn proposed_designs_have_broadest_coverage() {
        let specs: Vec<StateSpec> = vec![
            StateSpec::pure(CVector::basis_state(4, 1)).unwrap(),
            StateSpec::pure(ghz()).unwrap(),
            rank2_mixed(),
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap(),
        ];
        for spec in &specs {
            for scheme in [Scheme::SwapBased, Scheme::LogicalOrBased, Scheme::NddBased] {
                assert_ne!(
                    support(scheme, spec),
                    Support::Na,
                    "{scheme} should cover {:?}",
                    classify(spec)
                );
            }
        }
    }

    #[test]
    fn stat_misses_mixed_and_sets() {
        let mixed = rank2_mixed();
        assert_eq!(support(Scheme::Stat, &mixed), Support::Na);
        let set = StateSpec::set(vec![CVector::basis_state(2, 0)]).unwrap();
        assert_eq!(support(Scheme::Stat, &set), Support::Na);
        // Superposition only partially (no phases).
        let plus = StateSpec::pure(CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()])).unwrap();
        assert_eq!(support(Scheme::Stat, &plus), Support::Part);
    }

    #[test]
    fn primitive_entangled_is_part() {
        assert_eq!(
            support(Scheme::Primitive, &StateSpec::pure(ghz()).unwrap()),
            Support::Part
        );
    }

    #[test]
    fn proq_covers_pure_fully_mixed_partly() {
        assert_eq!(
            support(Scheme::Proq, &StateSpec::pure(ghz()).unwrap()),
            Support::All
        );
        let mixed = rank2_mixed();
        assert_eq!(support(Scheme::Proq, &mixed), Support::Part);
        let set = StateSpec::set(vec![CVector::basis_state(2, 0)]).unwrap();
        assert_eq!(support(Scheme::Proq, &set), Support::Na);
    }

    #[test]
    fn full_rank_mixed_is_na_even_for_proposed() {
        let rho = CMatrix::identity(2).scale(C64::from(0.5));
        let spec = StateSpec::mixed(rho).unwrap();
        assert_eq!(support(Scheme::SwapBased, &spec), Support::Na);
    }

    #[test]
    fn display_impls() {
        assert_eq!(Support::All.to_string(), "ALL");
        assert_eq!(Support::Na.to_string(), "N/A");
        assert_eq!(Scheme::NddBased.to_string(), "NDD based");
        assert_eq!(StateClass::Mixed.to_string(), "mixed state");
    }
}
