//! Outcome analysis for assertion runs.
//!
//! Collates the per-assertion error rates, overall pass verdicts and
//! post-selected (error-filtered) results the paper reports in §IX.

use crate::assertion::AssertionHandle;
use qra_sim::Counts;
use std::fmt;

/// Aggregated outcome of running a circuit containing assertions.
#[derive(Debug, Clone)]
pub struct AssertionReport {
    per_assertion: Vec<f64>,
    overall_error_rate: f64,
    filtered: Counts,
    retained: f64,
}

impl AssertionReport {
    /// Builds a report from the run histogram and the inserted handles.
    ///
    /// ```rust
    /// use qra_circuit::Circuit;
    /// use qra_core::{insert_assertion, AssertionReport, Design, StateSpec};
    /// use qra_math::CVector;
    /// use qra_sim::StatevectorSimulator;
    ///
    /// let mut c = Circuit::new(1);
    /// c.h(0);
    /// let spec = StateSpec::pure(CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]))?;
    /// let handle = insert_assertion(&mut c, &[0], &spec, Design::Ndd)?;
    /// let counts = StatevectorSimulator::with_seed(1).run(&c, 1024)?;
    /// let report = AssertionReport::from_counts(&counts, &[handle]);
    /// assert!(report.passed(0.01));
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    pub fn from_counts(counts: &Counts, handles: &[AssertionHandle]) -> Self {
        let per_assertion: Vec<f64> = handles.iter().map(|h| h.error_rate(counts)).collect();
        let all_bits: Vec<usize> = handles.iter().flat_map(|h| h.clbits.clone()).collect();
        let overall_error_rate = counts.any_set_frequency(&all_bits);
        let (filtered, retained) = counts.post_select_zero(&all_bits);
        Self {
            per_assertion,
            overall_error_rate,
            filtered,
            retained,
        }
    }

    /// Error rate of each assertion, in handle order.
    pub fn per_assertion_error_rates(&self) -> &[f64] {
        &self.per_assertion
    }

    /// Fraction of shots flagged by at least one assertion.
    pub fn overall_error_rate(&self) -> f64 {
        self.overall_error_rate
    }

    /// `true` when the overall error rate is at or below `threshold`
    /// (noise-free runs should pass `0.0`; noisy runs use the calibrated
    /// noise floor, §IX-B).
    pub fn passed(&self, threshold: f64) -> bool {
        self.overall_error_rate <= threshold
    }

    /// The error-filtered histogram (shots where every assertion passed).
    pub fn filtered_counts(&self) -> &Counts {
        &self.filtered
    }

    /// Fraction of shots retained by the filtering.
    pub fn retained_fraction(&self) -> f64 {
        self.retained
    }

    /// Index of the first assertion whose error rate exceeds `threshold`,
    /// if any — the paper's bug-localisation workflow (§IX-A1): gates
    /// between the last passing slot and the first failing slot contain
    /// the bug.
    pub fn first_failing(&self, threshold: f64) -> Option<usize> {
        self.per_assertion.iter().position(|&rate| rate > threshold)
    }
}

/// Wilson score interval for a binomial proportion: the statistically
/// sound way to decide whether a noisy assertion-error rate sits above the
/// calibrated noise floor (§IX-B's "detect the bug from the increment").
///
/// Returns `(low, high)` at confidence `z` standard deviations (use
/// `z = 1.96` for 95%, `z = 2.58` for 99%).
///
/// ```rust
/// use qra_core::analysis::wilson_interval;
///
/// let (low, high) = wilson_interval(450, 1000, 1.96);
/// assert!(low < 0.45 && 0.45 < high);
/// assert!(high - low < 0.07);
/// ```
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let centre = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((centre - half).max(0.0), (centre + half).min(1.0))
}

/// Decides whether an observed error rate significantly exceeds a known
/// noise floor: `true` when the Wilson lower bound of the observation lies
/// above the floor's upper bound.
///
/// ```rust
/// use qra_core::analysis::detects_above_floor;
///
/// // 45% errors in 8192 shots vs a 36% floor from 8192 calibration shots:
/// assert!(detects_above_floor(3686, 8192, 2949, 8192, 1.96));
/// // But 37% vs 36% is inside the noise:
/// assert!(!detects_above_floor(3031, 8192, 2949, 8192, 1.96));
/// ```
pub fn detects_above_floor(
    observed_errors: u64,
    observed_shots: u64,
    floor_errors: u64,
    floor_shots: u64,
    z: f64,
) -> bool {
    let (obs_low, _) = wilson_interval(observed_errors, observed_shots, z);
    let (_, floor_high) = wilson_interval(floor_errors, floor_shots, z);
    obs_low > floor_high
}

impl fmt::Display for AssertionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "assertion report: overall error rate {:.4}, retained {:.4}",
            self.overall_error_rate, self.retained
        )?;
        for (i, rate) in self.per_assertion.iter().enumerate() {
            writeln!(f, "  assertion {i}: error rate {rate:.4}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{insert_assertion, Design, StateSpec};
    use qra_circuit::Circuit;
    use qra_math::CVector;
    use qra_sim::StatevectorSimulator;

    #[test]
    fn report_on_passing_program() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let s = 0.5f64.sqrt();
        let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
        let h = insert_assertion(
            &mut c,
            &[0, 1],
            &StateSpec::pure(bell).unwrap(),
            Design::Swap,
        )
        .unwrap();
        let counts = StatevectorSimulator::with_seed(1).run(&c, 1000).unwrap();
        let report = AssertionReport::from_counts(&counts, &[h]);
        assert_eq!(report.overall_error_rate(), 0.0);
        assert!(report.passed(0.0));
        assert_eq!(report.first_failing(0.0), None);
        assert_eq!(report.retained_fraction(), 1.0);
        assert_eq!(report.per_assertion_error_rates(), &[0.0]);
    }

    #[test]
    fn wilson_interval_properties() {
        // Contains the point estimate, shrinks with more trials.
        let (l1, h1) = wilson_interval(50, 100, 1.96);
        assert!(l1 < 0.5 && 0.5 < h1);
        let (l2, h2) = wilson_interval(5000, 10000, 1.96);
        assert!(h2 - l2 < h1 - l1);
        // Edge cases stay within [0, 1].
        let (l, h) = wilson_interval(0, 100, 1.96);
        assert!(l >= 0.0 && h < 0.1);
        let (l, h) = wilson_interval(100, 100, 1.96);
        assert!(l > 0.9 && h <= 1.0);
        assert_eq!(wilson_interval(0, 0, 1.96), (0.0, 1.0));
    }

    #[test]
    fn detection_threshold_scales_with_shots() {
        // A 2-point gap detectable at 8192 shots is not at 100 shots.
        assert!(!detects_above_floor(40, 100, 36, 100, 1.96));
        assert!(detects_above_floor(3300, 8192, 2949, 8192, 1.96));
    }

    #[test]
    fn report_localizes_failing_slot() {
        // Slot 0 asserts |0⟩ (passes), slot 1 asserts |1⟩ (fails).
        let mut c = Circuit::new(1);
        let h0 = insert_assertion(
            &mut c,
            &[0],
            &StateSpec::pure(CVector::basis_state(2, 0)).unwrap(),
            Design::Ndd,
        )
        .unwrap();
        let h1 = insert_assertion(
            &mut c,
            &[0],
            &StateSpec::pure(CVector::basis_state(2, 1)).unwrap(),
            Design::Ndd,
        )
        .unwrap();
        let counts = StatevectorSimulator::with_seed(2).run(&c, 500).unwrap();
        let report = AssertionReport::from_counts(&counts, &[h0, h1]);
        assert_eq!(report.first_failing(0.01), Some(1));
        assert!(!report.passed(0.01));
        assert!(report.overall_error_rate() > 0.99);
        assert!(report.retained_fraction() < 0.01);
        assert!(format!("{report}").contains("assertion 1"));
    }
}
