//! Amplitude-level thread-count resolution shared by the simulator
//! back-ends.
//!
//! Every simulator takes a `threads` knob (`with_threads`) that controls
//! how many scoped worker threads a kernel sweep may use (see
//! [`qra_circuit::kernel::Kernel::apply_threaded`]). `0` means "one per
//! available core" and is resolved here, once, at configuration time —
//! including the case where the runtime query itself fails, which callers
//! must be able to surface instead of silently degrading to one thread.

/// Resolves a configured thread count: `0` means one worker per available
/// core. Returns the resolved count and whether the core-count query
/// failed (in which case the count degrades to 1 and the caller should
/// surface the degradation to the user).
pub fn resolve_threads(threads: usize) -> (usize, bool) {
    if threads == 0 {
        match std::thread::available_parallelism() {
            Ok(n) => (n.get(), false),
            Err(_) => (1, true),
        }
    } else {
        (threads, false)
    }
}

/// Derives a per-shot RNG seed from a base seed and a shot index using
/// the SplitMix64 finalizer over the packed pair — the same scheme the
/// campaign runner uses for `(seed, cell)` derivation. Distinct
/// `(base, shot)` pairs map to well-separated seeds, and the derivation
/// depends on nothing else, so batch execution is reproducible at any
/// thread count or shot partitioning.
pub fn derive_shot_seed(base: u64, shot: u64) -> u64 {
    let mut z = base
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(shot)
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_counts_pass_through() {
        assert_eq!(resolve_threads(1), (1, false));
        assert_eq!(resolve_threads(7), (7, false));
    }

    #[test]
    fn zero_resolves_to_at_least_one() {
        let (t, _) = resolve_threads(0);
        assert!(t >= 1);
    }

    #[test]
    fn shot_seeds_are_distinct_and_stable() {
        let a = derive_shot_seed(42, 0);
        let b = derive_shot_seed(42, 1);
        let c = derive_shot_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_shot_seed(42, 0));
    }
}
