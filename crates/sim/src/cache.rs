//! Compiled-program cache keyed by a circuit FNV-1a fingerprint.
//!
//! Lowering a circuit ([`CompiledProgram::compile`] /
//! [`CompiledDensityProgram::compile`]) is a pure, RNG-free pass, so a
//! compiled program may be shared freely between runs: executing a cached
//! program is bit-for-bit identical to compiling fresh. [`ProgramCache`]
//! exploits that to let repeat circuits — streamed assertion requests,
//! calibration repeats, retried campaign cells — skip lowering entirely.
//!
//! # Keying and collision safety
//!
//! Circuits are fingerprinted by hashing a canonical byte encoding
//! (qubit/clbit counts, then per instruction the operation kind, gate
//! name, full gate matrix as `f64` bit patterns, and operand indices)
//! with FNV-1a. The 64-bit hash is only the bucket key: each cache entry
//! also stores the encoding bytes and a hit requires byte equality, so a
//! hash collision degrades to a miss, never to a wrong program. Density
//! programs bake their [`NoiseModel`] in at lowering, so their entries
//! additionally key on the noise parameters' bit patterns.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use qra_circuit::{Circuit, Operation};

use crate::exec::CompiledProgram;
use crate::exec_density::CompiledDensityProgram;
use crate::noise::NoiseModel;
use crate::SimError;

/// FNV-1a offset basis (same constants as the orchestrator's record
/// checksums, so fingerprints are stable across crates).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn push_usize(out: &mut Vec<u8>, v: usize) {
    out.extend_from_slice(&(v as u64).to_le_bytes());
}

/// Canonical byte encoding of a circuit for fingerprinting.
///
/// Two circuits with equal encodings lower to identical programs: the
/// encoding captures everything `compile` reads — register widths and,
/// per instruction, the operation kind, the gate's name *and* full
/// matrix (as `f64` bit patterns, so `u2(0,π)` and `h` stay distinct
/// even where their matrices agree to rounding), and the operand
/// indices. Barriers are included; they are no-ops to the compilers, so
/// the distinction only costs an extra compile, never correctness.
fn encode_circuit(circuit: &Circuit) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 64 * circuit.instructions().len());
    push_usize(&mut out, circuit.num_qubits());
    push_usize(&mut out, circuit.num_clbits());
    for inst in circuit.instructions() {
        match &inst.operation {
            Operation::Gate(gate) => {
                out.push(0);
                let name = gate.name();
                push_usize(&mut out, name.len());
                out.extend_from_slice(name.as_bytes());
                let matrix = gate.matrix();
                push_usize(&mut out, matrix.rows());
                push_usize(&mut out, matrix.cols());
                for entry in matrix.as_slice() {
                    out.extend_from_slice(&entry.re.to_bits().to_le_bytes());
                    out.extend_from_slice(&entry.im.to_bits().to_le_bytes());
                }
            }
            Operation::Measure => out.push(1),
            Operation::Reset => out.push(2),
            Operation::Barrier => out.push(3),
        }
        push_usize(&mut out, inst.qubits.len());
        for &q in &inst.qubits {
            push_usize(&mut out, q);
        }
        push_usize(&mut out, inst.clbits.len());
        for &c in &inst.clbits {
            push_usize(&mut out, c);
        }
    }
    out
}

/// FNV-1a fingerprint of a circuit's canonical encoding.
///
/// Equal fingerprints *suggest* equal circuits; [`ProgramCache`] always
/// confirms with a byte comparison before reusing a program.
pub fn circuit_fingerprint(circuit: &Circuit) -> u64 {
    fnv1a(&encode_circuit(circuit))
}

/// Byte encoding of a noise model: the bit patterns of its parameters.
fn encode_noise(noise: &NoiseModel) -> [u8; 56] {
    let mut out = [0u8; 56];
    let fields = [
        noise.depol_1q,
        noise.depol_2q,
        noise.damping_1q,
        noise.damping_2q,
        noise.dephasing,
        noise.readout_p01,
        noise.readout_p10,
    ];
    for (i, f) in fields.iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&f.to_bits().to_le_bytes());
    }
    out
}

/// FNV-1a fingerprint of a noise model's parameter bit patterns.
pub fn noise_fingerprint(noise: &NoiseModel) -> u64 {
    fnv1a(&encode_noise(noise))
}

/// One collision-guarded bucket: entries carry the canonical encoding
/// they were keyed under, compared byte-for-byte on lookup.
type Bucket<T> = Vec<(Vec<u8>, Arc<T>)>;

/// Thread-safe cache of lowered programs, shared via `Arc` between the
/// campaign runner, the sweep driver and the `qra serve` daemon.
///
/// Statevector programs key on the circuit fingerprint alone (the
/// compiled program carries its Clifford tag, so the stabilizer router
/// benefits from the same entry); density programs key on
/// `(circuit, noise)` because the noise model is baked in at lowering.
#[derive(Debug, Default)]
pub struct ProgramCache {
    statevector: Mutex<HashMap<u64, Bucket<CompiledProgram>>>,
    density: Mutex<HashMap<(u64, u64), Bucket<CompiledDensityProgram>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// Creates an empty cache.
    pub fn new() -> ProgramCache {
        ProgramCache::default()
    }

    /// Returns the cached statevector program for `circuit`, compiling
    /// and inserting on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledProgram::compile`] errors; failures are not
    /// cached, so a later call retries the compile.
    pub fn compile_statevector(&self, circuit: &Circuit) -> Result<Arc<CompiledProgram>, SimError> {
        let encoding = encode_circuit(circuit);
        let key = fnv1a(&encoding);
        {
            let map = self.statevector.lock().expect("cache poisoned");
            if let Some(bucket) = map.get(&key) {
                if let Some((_, program)) = bucket.iter().find(|(enc, _)| *enc == encoding) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(program));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let program = Arc::new(CompiledProgram::compile(circuit)?);
        let mut map = self.statevector.lock().expect("cache poisoned");
        let bucket = map.entry(key).or_default();
        // A racing thread may have compiled the same circuit; keep the
        // first entry so every consumer shares one program.
        if let Some((_, existing)) = bucket.iter().find(|(enc, _)| *enc == encoding) {
            return Ok(Arc::clone(existing));
        }
        bucket.push((encoding, Arc::clone(&program)));
        Ok(program)
    }

    /// Returns the cached density program for `(circuit, noise)`,
    /// compiling and inserting on a miss.
    ///
    /// # Errors
    ///
    /// Propagates [`CompiledDensityProgram::compile`] errors; failures
    /// are not cached.
    pub fn compile_density(
        &self,
        circuit: &Circuit,
        noise: &NoiseModel,
    ) -> Result<Arc<CompiledDensityProgram>, SimError> {
        let mut encoding = encode_circuit(circuit);
        encoding.extend_from_slice(&encode_noise(noise));
        let key = (fnv1a(&encoding), noise_fingerprint(noise));
        {
            let map = self.density.lock().expect("cache poisoned");
            if let Some(bucket) = map.get(&key) {
                if let Some((_, program)) = bucket.iter().find(|(enc, _)| *enc == encoding) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Arc::clone(program));
                }
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let program = Arc::new(CompiledDensityProgram::compile(circuit, noise)?);
        let mut map = self.density.lock().expect("cache poisoned");
        let bucket = map.entry(key).or_default();
        if let Some((_, existing)) = bucket.iter().find(|(enc, _)| *enc == encoding) {
            return Ok(Arc::clone(existing));
        }
        bucket.push((encoding, Arc::clone(&program)));
        Ok(program)
    }

    /// Number of lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that compiled fresh.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of programs currently cached (statevector + density).
    pub fn entries(&self) -> usize {
        let sv: usize = self
            .statevector
            .lock()
            .expect("cache poisoned")
            .values()
            .map(Vec::len)
            .sum();
        let dm: usize = self
            .density
            .lock()
            .expect("cache poisoned")
            .values()
            .map(Vec::len)
            .sum();
        sv + dm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DensityMatrixSimulator, StatevectorSimulator};

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.measure_all();
        c
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let a = ghz(3);
        let b = ghz(4);
        let mut c = ghz(3);
        c.x(0);
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&b));
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&c));
        assert_eq!(circuit_fingerprint(&a), circuit_fingerprint(&ghz(3)));
    }

    #[test]
    fn fingerprint_distinguishes_operands() {
        let mut a = Circuit::new(2);
        a.x(0);
        a.measure_all();
        let mut b = Circuit::new(2);
        b.x(1);
        b.measure_all();
        assert_ne!(circuit_fingerprint(&a), circuit_fingerprint(&b));
    }

    #[test]
    fn statevector_hits_and_is_bit_identical() {
        let cache = ProgramCache::new();
        let circuit = ghz(3);
        let fresh = StatevectorSimulator::with_seed(7)
            .run(&circuit, 2048)
            .unwrap();
        for _ in 0..3 {
            let program = cache.compile_statevector(&circuit).unwrap();
            let cached = StatevectorSimulator::with_seed(7)
                .run_compiled(&program, 2048)
                .unwrap();
            assert_eq!(fresh, cached);
        }
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn density_keys_on_noise() {
        let cache = ProgramCache::new();
        let circuit = ghz(2);
        let ideal = NoiseModel::ideal();
        let noisy = NoiseModel {
            depol_1q: 0.01,
            ..NoiseModel::ideal()
        };
        cache.compile_density(&circuit, &ideal).unwrap();
        cache.compile_density(&circuit, &noisy).unwrap();
        cache.compile_density(&circuit, &ideal).unwrap();
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.entries(), 2);
    }

    #[test]
    fn density_cached_is_bit_identical() {
        let cache = ProgramCache::new();
        let circuit = ghz(2);
        let noise = NoiseModel {
            depol_1q: 0.004,
            readout_p01: 0.02,
            ..NoiseModel::ideal()
        };
        let sim = DensityMatrixSimulator::with_noise(noise.clone());
        let fresh = sim.run(&circuit, 4096, 11).unwrap();
        let program = cache.compile_density(&circuit, &noise).unwrap();
        let cached = sim.run_compiled(&program, 4096, 11).unwrap();
        assert_eq!(fresh, cached);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn compile_errors_are_not_cached() {
        let cache = ProgramCache::new();
        let mut wide = Circuit::new(25);
        wide.x(0);
        wide.measure_all();
        assert!(cache.compile_statevector(&wide).is_err());
        assert!(cache.compile_statevector(&wide).is_err());
        assert_eq!(cache.entries(), 0);
    }
}
