//! Noise channels and device presets.
//!
//! The paper's §IX-B experiments run on the 15-qubit *ibmq-melbourne*
//! machine. We substitute a parameterised Kraus-channel noise model applied
//! by the density-matrix simulator: depolarizing error after every gate,
//! amplitude/phase damping per gate duration, and a symmetric readout
//! bit-flip at measurement. [`DevicePreset::melbourne_like`] fixes the
//! constants in the regime of that device's published calibrations
//! (single-qubit error ≈ 0.1%, CX error ≈ 2–3%, readout error ≈ 4%).

use crate::SimError;
use qra_math::{CMatrix, C64};
use std::fmt;
use std::str::FromStr;

/// A Kraus channel: a set of matrices `{K_i}` with `Σ K_i† K_i = I`.
#[derive(Debug, Clone)]
pub struct KrausChannel {
    operators: Vec<CMatrix>,
}

impl KrausChannel {
    /// Builds a channel after validating the completeness relation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Math`] on shape problems and
    /// [`SimError::InvalidProbability`] when `Σ K†K` deviates from `I`.
    pub fn new(operators: Vec<CMatrix>) -> Result<Self, SimError> {
        let dim = operators
            .first()
            .map(CMatrix::rows)
            .ok_or(SimError::InvalidProbability { value: 0.0 })?;
        let mut sum = CMatrix::zeros(dim, dim);
        for k in &operators {
            sum = sum.add(&k.adjoint().mul(k)?)?;
        }
        let dev = sum.max_abs_diff(&CMatrix::identity(dim));
        if dev > 1e-8 {
            return Err(SimError::InvalidProbability { value: dev });
        }
        Ok(Self { operators })
    }

    /// The Kraus operators.
    pub fn operators(&self) -> &[CMatrix] {
        &self.operators
    }

    /// When every operator is a scaled unitary `√wᵢ·Uᵢ` (as in
    /// depolarizing/Pauli channels), returns the state-independent branch
    /// weights `wᵢ` — letting trajectory simulators sample a branch without
    /// trial applications. Returns `None` for state-dependent channels
    /// (amplitude/phase damping).
    pub fn scaled_unitary_weights(&self) -> Option<Vec<f64>> {
        let mut weights = Vec::with_capacity(self.operators.len());
        for k in &self.operators {
            let product = k.adjoint().mul(k).ok()?;
            let w = product.get(0, 0).re;
            let scaled_id = CMatrix::identity(k.rows()).scale(C64::from(w));
            if product.max_abs_diff(&scaled_id) > 1e-10 {
                return None;
            }
            weights.push(w);
        }
        Some(weights)
    }

    /// Single-qubit depolarizing channel with error probability `p`:
    /// with probability `p` the qubit is replaced by the maximally mixed
    /// state (implemented via uniform X/Y/Z errors at `p/4` each... the
    /// standard Kraus form `√(1−3p/4)·I, √(p/4)·{X,Y,Z}`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNoiseParameter`] for `p ∉ [0, 1]`.
    pub fn depolarizing_1q(p: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(SimError::InvalidNoiseParameter {
                name: "depolarizing p",
                value: p,
            });
        }
        let x = CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let y = CMatrix::new(
            2,
            2,
            vec![
                C64::zero(),
                C64::new(0.0, -1.0),
                C64::new(0.0, 1.0),
                C64::zero(),
            ],
        );
        let z = CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]);
        let k0 = CMatrix::identity(2).scale(C64::from((1.0 - 3.0 * p / 4.0).sqrt()));
        let s = C64::from((p / 4.0).sqrt());
        Self::new(vec![k0, x.scale(s), y.scale(s), z.scale(s)])
    }

    /// Two-qubit depolarizing channel with error probability `p`
    /// (15 non-identity two-qubit Paulis at `p/16` each).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNoiseParameter`] for `p ∉ [0, 1]`.
    pub fn depolarizing_2q(p: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(SimError::InvalidNoiseParameter {
                name: "depolarizing p",
                value: p,
            });
        }
        let paulis = [
            CMatrix::identity(2),
            CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]),
            CMatrix::new(
                2,
                2,
                vec![
                    C64::zero(),
                    C64::new(0.0, -1.0),
                    C64::new(0.0, 1.0),
                    C64::zero(),
                ],
            ),
            CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]),
        ];
        let mut ops = Vec::with_capacity(16);
        for (i, a) in paulis.iter().enumerate() {
            for (j, b) in paulis.iter().enumerate() {
                let weight = if i == 0 && j == 0 {
                    (1.0 - 15.0 * p / 16.0).sqrt()
                } else {
                    (p / 16.0).sqrt()
                };
                ops.push(a.kron(b).scale(C64::from(weight)));
            }
        }
        Self::new(ops)
    }

    /// Amplitude-damping channel with decay probability `gamma`
    /// (`|1⟩ → |0⟩` relaxation, the T1 process).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNoiseParameter`] for `gamma ∉ [0, 1]`.
    pub fn amplitude_damping(gamma: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&gamma) {
            return Err(SimError::InvalidNoiseParameter {
                name: "gamma",
                value: gamma,
            });
        }
        let k0 = CMatrix::new(
            2,
            2,
            vec![
                C64::one(),
                C64::zero(),
                C64::zero(),
                C64::from((1.0 - gamma).sqrt()),
            ],
        );
        let k1 = CMatrix::new(
            2,
            2,
            vec![
                C64::zero(),
                C64::from(gamma.sqrt()),
                C64::zero(),
                C64::zero(),
            ],
        );
        Self::new(vec![k0, k1])
    }

    /// Phase-damping channel with dephasing probability `lambda`
    /// (the pure-T2 process).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNoiseParameter`] for `lambda ∉ [0, 1]`.
    pub fn phase_damping(lambda: f64) -> Result<Self, SimError> {
        if !(0.0..=1.0).contains(&lambda) {
            return Err(SimError::InvalidNoiseParameter {
                name: "lambda",
                value: lambda,
            });
        }
        let k0 = CMatrix::new(
            2,
            2,
            vec![
                C64::one(),
                C64::zero(),
                C64::zero(),
                C64::from((1.0 - lambda).sqrt()),
            ],
        );
        let k1 = CMatrix::new(
            2,
            2,
            vec![
                C64::zero(),
                C64::zero(),
                C64::zero(),
                C64::from(lambda.sqrt()),
            ],
        );
        Self::new(vec![k0, k1])
    }
}

/// Gate-level noise model applied by the density-matrix simulator.
#[derive(Debug, Clone)]
pub struct NoiseModel {
    /// Depolarizing probability after each single-qubit gate.
    pub depol_1q: f64,
    /// Depolarizing probability after each two-qubit gate (applied jointly).
    pub depol_2q: f64,
    /// Amplitude-damping probability per single-qubit gate slot.
    pub damping_1q: f64,
    /// Amplitude-damping probability per two-qubit gate slot (per qubit).
    pub damping_2q: f64,
    /// Phase-damping probability per gate slot (per qubit).
    pub dephasing: f64,
    /// Probability of reading `1` when the qubit is `0`.
    pub readout_p01: f64,
    /// Probability of reading `0` when the qubit is `1` (usually larger —
    /// the paper's rationale for using `|0⟩` as the no-error outcome).
    pub readout_p10: f64,
}

impl NoiseModel {
    /// A noiseless model (all parameters zero).
    pub fn ideal() -> Self {
        Self {
            depol_1q: 0.0,
            depol_2q: 0.0,
            damping_1q: 0.0,
            damping_2q: 0.0,
            dephasing: 0.0,
            readout_p01: 0.0,
            readout_p10: 0.0,
        }
    }

    /// Validates all parameters lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidNoiseParameter`] naming the bad field.
    pub fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [
            ("depol_1q", self.depol_1q),
            ("depol_2q", self.depol_2q),
            ("damping_1q", self.damping_1q),
            ("damping_2q", self.damping_2q),
            ("dephasing", self.dephasing),
            ("readout_p01", self.readout_p01),
            ("readout_p10", self.readout_p10),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(SimError::InvalidNoiseParameter { name, value: v });
            }
        }
        Ok(())
    }

    /// Returns this model with every rate multiplied by `factor`, clamped
    /// so the result always passes [`NoiseModel::validate`]: gate-error
    /// rates (depolarizing, damping, dephasing) saturate at `1.0`, readout
    /// flip rates at `0.5`.
    ///
    /// Readout saturates lower because a symmetric bit-flip probability past
    /// `0.5` stops modelling a *degraded* readout and starts inverting it —
    /// the wrong outcome becomes the likely one, so measured error rates
    /// would improve again as the scale grows, breaking the monotonicity a
    /// noise sweep relies on. Gate channels have no such inversion point:
    /// at `1.0` they are simply maximally noisy.
    ///
    /// Non-finite products (a NaN or infinite factor) clamp to the
    /// zero/ideal end rather than producing a model `validate` rejects.
    pub fn scaled(&self, factor: f64) -> Self {
        let scale = |rate: f64, cap: f64| {
            let v = rate * factor;
            if v.is_nan() {
                0.0
            } else {
                v.clamp(0.0, cap)
            }
        };
        Self {
            depol_1q: scale(self.depol_1q, 1.0),
            depol_2q: scale(self.depol_2q, 1.0),
            damping_1q: scale(self.damping_1q, 1.0),
            damping_2q: scale(self.damping_2q, 1.0),
            dephasing: scale(self.dephasing, 1.0),
            readout_p01: scale(self.readout_p01, 0.5),
            readout_p10: scale(self.readout_p10, 0.5),
        }
    }

    /// Returns `true` when every parameter is zero.
    pub fn is_ideal(&self) -> bool {
        self.depol_1q == 0.0
            && self.depol_2q == 0.0
            && self.damping_1q == 0.0
            && self.damping_2q == 0.0
            && self.dephasing == 0.0
            && self.readout_p01 == 0.0
            && self.readout_p10 == 0.0
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Pre-calibrated device noise profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DevicePreset {
    /// No noise — Qiskit Aer's ideal qasm simulator.
    Ideal,
    /// Calibrated to the error regime of the 15-qubit ibmq-melbourne device
    /// the paper used in §IX-B (see DESIGN.md for the substitution note).
    MelbourneLike,
    /// A lighter-noise device for ablation sweeps.
    LowNoise,
}

impl DevicePreset {
    /// Every preset, in canonical order.
    pub const ALL: [DevicePreset; 3] = [
        DevicePreset::Ideal,
        DevicePreset::LowNoise,
        DevicePreset::MelbourneLike,
    ];

    /// Canonical short name, as accepted by [`DevicePreset::from_str`] and
    /// used by the CLI and the bench binaries.
    pub fn name(self) -> &'static str {
        match self {
            DevicePreset::Ideal => "ideal",
            DevicePreset::LowNoise => "low",
            DevicePreset::MelbourneLike => "melbourne",
        }
    }

    /// The canonical preset names, for error messages and usage text.
    pub fn variants() -> Vec<&'static str> {
        DevicePreset::ALL.iter().map(|p| p.name()).collect()
    }

    /// The noise model for this preset.
    pub fn noise_model(self) -> NoiseModel {
        match self {
            DevicePreset::Ideal => NoiseModel::ideal(),
            DevicePreset::MelbourneLike => NoiseModel {
                depol_1q: 0.0035,
                depol_2q: 0.035,
                damping_1q: 0.001,
                damping_2q: 0.004,
                dephasing: 0.002,
                readout_p01: 0.035,
                readout_p10: 0.055,
            },
            DevicePreset::LowNoise => NoiseModel {
                depol_1q: 0.0005,
                depol_2q: 0.005,
                damping_1q: 0.0002,
                damping_2q: 0.0008,
                dephasing: 0.0004,
                readout_p01: 0.008,
                readout_p10: 0.012,
            },
        }
    }

    /// Convenience constructor for the paper's §IX-B device substitute.
    pub fn melbourne_like() -> NoiseModel {
        DevicePreset::MelbourneLike.noise_model()
    }
}

impl fmt::Display for DevicePreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

impl FromStr for DevicePreset {
    type Err = SimError;

    /// Parses a preset name, case-insensitively; the long enum-style names
    /// (`low-noise`, `melbourne-like`) are accepted as aliases so CLI flags
    /// and config files can use either spelling.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ideal" | "none" => Ok(DevicePreset::Ideal),
            "low" | "low-noise" | "lownoise" => Ok(DevicePreset::LowNoise),
            "melbourne" | "melbourne-like" | "melbournelike" => Ok(DevicePreset::MelbourneLike),
            other => Err(SimError::UnknownPreset {
                name: other.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depolarizing_channels_are_trace_preserving() {
        for p in [0.0, 0.01, 0.5, 1.0] {
            assert!(KrausChannel::depolarizing_1q(p).is_ok());
            assert!(KrausChannel::depolarizing_2q(p).is_ok());
        }
        assert!(KrausChannel::depolarizing_1q(1.5).is_err());
        assert!(KrausChannel::depolarizing_2q(-0.1).is_err());
    }

    #[test]
    fn damping_channels_are_trace_preserving() {
        for g in [0.0, 0.3, 1.0] {
            assert!(KrausChannel::amplitude_damping(g).is_ok());
            assert!(KrausChannel::phase_damping(g).is_ok());
        }
        assert!(KrausChannel::amplitude_damping(2.0).is_err());
        assert!(KrausChannel::phase_damping(-1.0).is_err());
    }

    #[test]
    fn kraus_validation_rejects_incomplete_sets() {
        let half = CMatrix::identity(2).scale(C64::from(0.5));
        assert!(KrausChannel::new(vec![half]).is_err());
        assert!(KrausChannel::new(vec![]).is_err());
    }

    #[test]
    fn noise_model_validation() {
        assert!(NoiseModel::ideal().validate().is_ok());
        assert!(NoiseModel::ideal().is_ideal());
        let mut m = DevicePreset::melbourne_like();
        assert!(m.validate().is_ok());
        assert!(!m.is_ideal());
        m.readout_p10 = 1.2;
        assert!(m.validate().is_err());
    }

    #[test]
    fn noise_model_validation_rejects_nan_and_out_of_range() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.001, 1.001] {
            let mut m = NoiseModel::ideal();
            m.depol_2q = bad;
            assert!(m.validate().is_err(), "depol_2q={bad} must be rejected");
            let mut m = NoiseModel::ideal();
            m.readout_p01 = bad;
            assert!(m.validate().is_err(), "readout_p01={bad} must be rejected");
        }
        // The error names the offending field.
        let mut m = NoiseModel::ideal();
        m.dephasing = f64::NAN;
        match m.validate() {
            Err(SimError::InvalidNoiseParameter { name, .. }) => assert_eq!(name, "dephasing"),
            other => panic!("expected InvalidNoiseParameter, got {other:?}"),
        }
    }

    #[test]
    fn scaled_clamps_gate_rates_at_one_and_readout_at_half() {
        let base = DevicePreset::melbourne_like();
        // Large factors saturate every channel but stay valid.
        for factor in [1000.0, 1e6, f64::INFINITY] {
            let m = base.scaled(factor);
            assert!(m.validate().is_ok(), "factor {factor} must stay valid");
            assert_eq!(m.depol_1q, 1.0);
            assert_eq!(m.depol_2q, 1.0);
            assert_eq!(m.damping_2q, 1.0);
            assert_eq!(m.readout_p01, 0.5, "readout must saturate at 0.5");
            assert_eq!(m.readout_p10, 0.5, "readout must saturate at 0.5");
        }
        // Identity and zero factors behave as expected.
        let m = base.scaled(1.0);
        assert_eq!(m.depol_2q, base.depol_2q);
        assert_eq!(m.readout_p10, base.readout_p10);
        assert!(base.scaled(0.0).is_ideal());
        // Pathological factors clamp to the ideal end, never to an invalid model.
        assert!(base.scaled(-3.0).is_ideal());
        assert!(base.scaled(f64::NAN).is_ideal());
        assert!(base.scaled(f64::NAN).validate().is_ok());
        // Below saturation the scaling is exact.
        let m = base.scaled(2.0);
        assert!((m.depol_2q - 2.0 * base.depol_2q).abs() < 1e-15);
        assert!((m.readout_p10 - 2.0 * base.readout_p10).abs() < 1e-15);
    }

    #[test]
    fn preset_names_round_trip_through_from_str() {
        for preset in DevicePreset::ALL {
            assert_eq!(preset.name().parse::<DevicePreset>().unwrap(), preset);
            assert_eq!(preset.to_string(), preset.name());
        }
        assert_eq!(
            "Melbourne-Like".parse::<DevicePreset>().unwrap(),
            DevicePreset::MelbourneLike
        );
        assert_eq!(
            " low-noise ".parse::<DevicePreset>().unwrap(),
            DevicePreset::LowNoise
        );
        let e = "hot".parse::<DevicePreset>().unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("hot") && msg.contains("melbourne"), "{msg}");
        assert_eq!(DevicePreset::variants(), vec!["ideal", "low", "melbourne"]);
    }

    #[test]
    fn presets_are_ordered_by_noise() {
        let mel = DevicePreset::MelbourneLike.noise_model();
        let low = DevicePreset::LowNoise.noise_model();
        assert!(mel.depol_2q > low.depol_2q);
        assert!(mel.readout_p10 > low.readout_p10);
        assert!(DevicePreset::Ideal.noise_model().is_ideal());
    }

    #[test]
    fn readout_asymmetry_matches_paper_rationale() {
        // §III: "|1⟩ has higher measurement error and may decay into |0⟩" —
        // the preset must keep p(1→0) > p(0→1).
        let m = DevicePreset::melbourne_like();
        assert!(m.readout_p10 > m.readout_p01);
    }
}
