//! Exact density-matrix simulation with gate-level noise.
//!
//! This back-end substitutes for the real ibmq-melbourne device in the
//! paper's §IX-B: every gate is followed by the configured noise channels,
//! measurement applies a readout confusion matrix, and the full classical
//! joint distribution is computed exactly (then optionally sampled into
//! shot counts). Mid-circuit measurement — required by the Proq baseline —
//! branches the density matrix per outcome.
//!
//! [`DensityMatrixSimulator::run`] (and `evolve`/`outcome_distribution`)
//! lower the circuit through
//! [`CompiledDensityProgram::compile`](crate::exec_density) and execute
//! kernel conjugation pairs on the vectorized `vec(ρ)`; the original
//! dense-matrix instruction walker survives as
//! [`DensityMatrixSimulator::run_interpreted`] (and `*_interpreted`
//! friends) — the reference implementation the compiled engine is tested
//! bit-for-bit against (`tests/density_identity.rs`) and benchmarked over
//! (`qra-bench/src/bin/sim_throughput.rs`).
//!
//! # Branch tolerance
//!
//! Classical branches whose (unnormalised) trace — i.e. outcome
//! probability — is at or below [`NEGLIGIBLE_BRANCH_TRACE`] are dropped,
//! both when coalescing after a measurement and when emitting the final
//! outcome distribution. All channels are trace-preserving, so any branch
//! that survives a coalesce keeps its probability far above the threshold
//! through subsequent gates; using one constant for both cuts (they
//! historically disagreed at `1e-14` vs `1e-15`) therefore never changes a
//! reachable distribution.

use crate::exec_density::{apply_channel_vec, CompiledDensityProgram, DensityOp};
use crate::noise::{KrausChannel, NoiseModel};
use crate::statevector::sample_cumulative;
use crate::threads::resolve_threads;
use crate::{Counts, SimError};
use qra_circuit::gate::embed;
use qra_circuit::kernel::PairScratch;
use qra_circuit::{Circuit, Operation};
use qra_math::{CMatrix, CVector, C64};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Branches with outcome probability (unnormalised trace) at or below this
/// are dropped; see the module docs for why one constant serves both the
/// post-measurement coalesce and the final distribution filter.
pub const NEGLIGIBLE_BRANCH_TRACE: f64 = 1e-14;

/// One classical branch of the interpreted simulation: an (unnormalised)
/// density matrix whose trace is the probability of the recorded outcome
/// bits.
#[derive(Debug, Clone)]
struct Branch {
    rho: CMatrix,
    key: u64,
}

/// One classical branch of the compiled simulation: the `vec(ρ)` entries
/// inside `support`, stored compactly in ascending index order.
#[derive(Debug, Clone)]
struct VecBranch {
    rho: Vec<C64>,
    key: u64,
    support: Support,
}

/// A conservative superset of a branch vector's nonzero support over
/// `vec(ρ)` indices (`2n` bits: row part high, column part low):
///
/// > `{ i : i & mask == vals  ∧  ((i >> n) ^ i) & corr == 0 }`
///
/// i.e. some index bits are *pinned* (`mask`/`vals`, `vals ⊆ mask`) and
/// some qubits are *correlated* (`corr`, a column-bit set: the qubit's row
/// and column bits agree — the diagonal-block structure a measurement
/// leaves behind). Projecting a measurement pins the measured qubit's two
/// bits; coalescing the `0`/`1` projections under readout confusion melts
/// the opposing pins into a correlation via [`Support::union`]. Either way
/// a branch loses at least half its support per measurement, so storing
/// and scanning only the support keeps the post-measurement branch walk
/// near-linear in total instead of `O(branches · 4ⁿ)`.
///
/// Bit-identity: an entry outside a branch's pattern is exactly zero in
/// the full-vector formulation (a fresh zero or the image of zeros under
/// the skipped arithmetic, `±0.0` at worst), and every value the compact
/// walks do compute combines the same operands in the same order as the
/// full scans — so all observable surfaces agree bit-for-bit with the
/// interpreter, up to the sign of zero in the returned density matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Support {
    mask: usize,
    vals: usize,
    corr: usize,
}

impl Support {
    /// The unconstrained pattern (every index potentially nonzero).
    fn full() -> Support {
        Support {
            mask: 0,
            vals: 0,
            corr: 0,
        }
    }

    /// Membership test.
    fn contains(self, i: usize, n: usize) -> bool {
        i & self.mask == self.vals && ((i >> n) ^ i) & self.corr == 0
    }

    /// Pattern with the bits in `both` (one qubit's row+column pair)
    /// pinned all-clear (`set = false`) or all-set (`true`).
    fn pinned(self, both: usize, set: bool) -> Support {
        Support {
            mask: self.mask | both,
            vals: if set {
                self.vals | both
            } else {
                self.vals & !both
            },
            // Pins subsume the correlation for this qubit; keeping `corr`
            // disjoint from pinned pairs keeps `len` exact (`corr` holds
            // only column bits, so masking the pair away suffices).
            corr: self.corr & !both,
        }
    }

    /// Whether any index of the pattern has the `both` bits all `set` /
    /// all clear — i.e. whether the matching projection can be nonzero.
    fn admits(self, both: usize, set: bool) -> bool {
        let pinned = self.mask & both;
        if set {
            pinned & !self.vals == 0
        } else {
            pinned & self.vals == 0
        }
    }

    /// Pattern after an op that may repopulate the `touched` index bits
    /// (always a whole row+column qubit pair).
    fn cleared(self, touched: usize) -> Support {
        let mask = self.mask & !touched;
        Support {
            mask,
            vals: self.vals & mask,
            corr: self.corr & !touched,
        }
    }

    /// The tightest pattern of this shape covering the union: keep the
    /// bits both pin to the same value, and correlate every qubit whose
    /// row/column bits agree within each side (notably, a qubit pinned to
    /// `0` on one side and `1` on the other unions into a correlation —
    /// exactly the readout-confusion coalesce).
    fn union(self, other: Support, n: usize) -> Support {
        let d1 = (1usize << n) - 1;
        let correlated = |s: Support| {
            let pinned_pairs = (s.mask >> n) & s.mask & d1;
            let equal = !((s.vals >> n) ^ s.vals);
            s.corr | (pinned_pairs & equal)
        };
        let mask = self.mask & other.mask & !(self.vals ^ other.vals);
        Support {
            mask,
            vals: self.vals & mask,
            corr: correlated(self) & correlated(other) & !(mask >> n),
        }
    }

    /// Number of indices in the pattern.
    fn len(self, n: usize) -> usize {
        1usize << (2 * n - self.mask.count_ones() as usize - self.corr.count_ones() as usize)
    }

    /// Calls `f(i)` for every index in the pattern, ascending.
    fn for_each(self, n: usize, mut f: impl FnMut(usize)) {
        // Free coordinates, most significant first: plain free bits and
        // correlated row/column pairs (which move as one). A coordinate's
        // value exceeds the sum of all lower coordinates' values, so the
        // 0-branch-first recursion below enumerates ascending.
        let mut coords = Vec::with_capacity(2 * n);
        for b in (0..2 * n).rev() {
            let bit = 1usize << b;
            if self.mask & bit != 0 {
                continue;
            }
            if b >= n {
                let col = bit >> n;
                coords.push(if self.corr & col != 0 { bit | col } else { bit });
            } else if self.corr & bit == 0 {
                coords.push(bit);
            }
        }
        fn walk(coords: &[usize], base: usize, f: &mut impl FnMut(usize)) {
            match coords.split_first() {
                None => f(base),
                Some((&c, rest)) => {
                    walk(rest, base, f);
                    walk(rest, base | c, f);
                }
            }
        }
        walk(&coords, self.vals, &mut f);
    }
}

/// An exact density-matrix simulator with optional noise.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::{DensityMatrixSimulator, DevicePreset};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// bell.measure_all();
/// let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
/// let dist = sim.outcome_distribution(&bell)?;
/// let p_00 = dist.iter().find(|(k, _)| *k == 0).map(|(_, p)| *p).unwrap();
/// assert!(p_00 > 0.35 && p_00 < 0.5); // noise pushes it below the ideal 0.5
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DensityMatrixSimulator {
    noise: NoiseModel,
    threads: usize,
}

impl Default for DensityMatrixSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl DensityMatrixSimulator {
    /// Creates a noiseless density-matrix simulator.
    pub fn new() -> Self {
        Self {
            noise: NoiseModel::ideal(),
            threads: 1,
        }
    }

    /// Creates a simulator with the given noise model.
    pub fn with_noise(noise: NoiseModel) -> Self {
        Self { noise, threads: 1 }
    }

    /// Sets the amplitude-level worker thread count for the compiled
    /// branch walk (`0` = one per available core). Threading re-partitions
    /// kernel sweeps whose per-amplitude arithmetic is unchanged, so every
    /// result is bit-for-bit identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads).0;
        self
    }

    /// The resolved amplitude-level thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Lowers `circuit` with this simulator's noise model; callers
    /// amortizing one circuit over many runs (e.g. a campaign cell)
    /// compile once and use [`DensityMatrixSimulator::run_compiled`].
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond
    ///   [`crate::exec_density::MAX_QUBITS`];
    /// * [`SimError::InvalidNoiseParameter`] for a bad noise model.
    pub fn compile(&self, circuit: &Circuit) -> Result<CompiledDensityProgram, SimError> {
        CompiledDensityProgram::compile(circuit, &self.noise)
    }

    /// Evolves `|0…0⟩⟨0…0|` through the circuit and returns the final
    /// density matrix. Measurements dephase-and-branch internally; the
    /// returned matrix is the branch-summed (averaged) state.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond 12 qubits;
    /// * [`SimError::InvalidNoiseParameter`] for a bad noise model.
    pub fn evolve(&self, circuit: &Circuit) -> Result<CMatrix, SimError> {
        let program = self.compile(circuit)?;
        self.evolve_compiled(&program)
    }

    /// Computes the exact joint distribution over the classical bits:
    /// a list of `(key, probability)` with non-negligible probability
    /// (above [`NEGLIGIBLE_BRANCH_TRACE`]), where bit `c` of `key` is
    /// classical bit `c`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DensityMatrixSimulator::evolve`].
    pub fn outcome_distribution(&self, circuit: &Circuit) -> Result<Vec<(u64, f64)>, SimError> {
        let program = self.compile(circuit)?;
        self.outcome_distribution_compiled(&program)
    }

    /// Samples `shots` outcomes from the exact distribution.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DensityMatrixSimulator::evolve`].
    pub fn run(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        let program = self.compile(circuit)?;
        self.run_compiled(&program, shots, seed)
    }

    /// [`DensityMatrixSimulator::evolve`] over a pre-lowered program (whose
    /// baked-in noise model governs, not this simulator's).
    ///
    /// # Errors
    ///
    /// Infallible today; kept fallible for parity with the interpreted path.
    pub fn evolve_compiled(&self, program: &CompiledDensityProgram) -> Result<CMatrix, SimError> {
        let branches = run_vec_branches(program, self.threads);
        let d = program.dim();
        let n = d.trailing_zeros() as usize;
        let mut acc = vec![C64::zero(); d * d];
        for b in &branches {
            let mut pos = 0;
            b.support.for_each(n, |i| {
                acc[i] += b.rho[pos];
                pos += 1;
            });
        }
        Ok(CMatrix::new(d, d, acc))
    }

    /// [`DensityMatrixSimulator::outcome_distribution`] over a pre-lowered
    /// program.
    ///
    /// # Errors
    ///
    /// Infallible today; kept fallible for parity with the interpreted path.
    pub fn outcome_distribution_compiled(
        &self,
        program: &CompiledDensityProgram,
    ) -> Result<Vec<(u64, f64)>, SimError> {
        let branches = run_vec_branches(program, self.threads);
        let n = program.dim().trailing_zeros() as usize;
        let mut table: BTreeMap<u64, f64> = BTreeMap::new();
        for b in &branches {
            let p = trace_compact(&b.rho, b.support, n).re;
            if p > NEGLIGIBLE_BRANCH_TRACE {
                *table.entry(b.key).or_insert(0.0) += p;
            }
        }
        Ok(table.into_iter().collect())
    }

    /// [`DensityMatrixSimulator::run`] over a pre-lowered program:
    /// computes the exact distribution once, then samples it through a
    /// cumulative-table binary search (`O(log |dist|)` per shot, same RNG
    /// draw sequence as the interpreted linear scan). An empty or
    /// zero-mass distribution — unreachable for trace-preserving programs
    /// — records the all-zeros outcome for every shot instead of sampling.
    ///
    /// # Errors
    ///
    /// Infallible today; kept fallible for parity with the interpreted path.
    pub fn run_compiled(
        &self,
        program: &CompiledDensityProgram,
        shots: u64,
        seed: u64,
    ) -> Result<Counts, SimError> {
        let dist = self.outcome_distribution_compiled(program)?;
        let mut counts = Counts::new(program.num_clbits());
        // In-place cumulative table: cum[i] = p₀ + … + pᵢ with the same
        // left-to-right association as `iter().sum()`, so the total is
        // bit-identical to the interpreter's.
        let mut cum: Vec<f64> = dist.iter().map(|&(_, p)| p).collect();
        for i in 1..cum.len() {
            cum[i] += cum[i - 1];
        }
        let total = cum.last().copied().unwrap_or(0.0);
        if total > 0.0 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut hist = vec![0u64; dist.len()];
            for _ in 0..shots {
                hist[sample_cumulative(&cum, total, &mut rng)] += 1;
            }
            for (i, &h) in hist.iter().enumerate() {
                if h > 0 {
                    counts.record(dist[i].0, h);
                }
            }
        } else if shots > 0 {
            counts.record(0, shots);
        }
        Ok(counts)
    }

    /// [`DensityMatrixSimulator::evolve`] through the original dense-matrix
    /// instruction walker. Kept as the reference implementation for the
    /// compiled-vs-interpreter identity tests and throughput baselines.
    ///
    /// # Errors
    ///
    /// As for [`DensityMatrixSimulator::evolve`].
    pub fn evolve_interpreted(&self, circuit: &Circuit) -> Result<CMatrix, SimError> {
        let branches = self.run_branches(circuit)?;
        let dim = 1usize << circuit.num_qubits();
        let mut rho = CMatrix::zeros(dim, dim);
        for b in branches {
            rho = rho.add(&b.rho)?;
        }
        Ok(rho)
    }

    /// [`DensityMatrixSimulator::outcome_distribution`] through the
    /// original dense-matrix instruction walker.
    ///
    /// # Errors
    ///
    /// As for [`DensityMatrixSimulator::evolve`].
    pub fn outcome_distribution_interpreted(
        &self,
        circuit: &Circuit,
    ) -> Result<Vec<(u64, f64)>, SimError> {
        let branches = self.run_branches(circuit)?;
        let mut table: BTreeMap<u64, f64> = BTreeMap::new();
        for b in branches {
            let p = b.rho.trace()?.re;
            if p > NEGLIGIBLE_BRANCH_TRACE {
                *table.entry(b.key).or_insert(0.0) += p;
            }
        }
        Ok(table.into_iter().collect())
    }

    /// [`DensityMatrixSimulator::run`] through the original dense-matrix
    /// instruction walker, including its linear-scan shot sampler; same
    /// seed ⇒ same [`Counts`] as the compiled path.
    ///
    /// # Errors
    ///
    /// As for [`DensityMatrixSimulator::evolve`].
    pub fn run_interpreted(
        &self,
        circuit: &Circuit,
        shots: u64,
        seed: u64,
    ) -> Result<Counts, SimError> {
        let dist = self.outcome_distribution_interpreted(circuit)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = Counts::new(circuit.num_clbits());
        let total: f64 = dist.iter().map(|(_, p)| *p).sum();
        use rand::Rng;
        for _ in 0..shots {
            let mut r = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut chosen = dist.last().map(|(k, _)| *k).unwrap_or(0);
            for &(k, p) in &dist {
                if r < p {
                    chosen = k;
                    break;
                }
                r -= p;
            }
            counts.record(chosen, 1);
        }
        Ok(counts)
    }

    fn run_branches(&self, circuit: &Circuit) -> Result<Vec<Branch>, SimError> {
        self.noise.validate()?;
        let n = circuit.num_qubits();
        if n > crate::exec_density::MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                num_qubits: n,
                max: crate::exec_density::MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > crate::exec_density::MAX_CLBITS {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                max: crate::exec_density::MAX_CLBITS,
            });
        }
        let dim = 1usize << n;
        let zero = CVector::basis_state(dim, 0);
        let mut branches = vec![Branch {
            rho: CMatrix::outer(&zero, &zero),
            key: 0,
        }];

        // Pre-build noise channels once.
        let depol1 = build_channel(self.noise.depol_1q, KrausChannel::depolarizing_1q)?;
        let depol2 = build_channel(self.noise.depol_2q, KrausChannel::depolarizing_2q)?;
        let damp1 = build_channel(self.noise.damping_1q, KrausChannel::amplitude_damping)?;
        let damp2 = build_channel(self.noise.damping_2q, KrausChannel::amplitude_damping)?;
        let deph = build_channel(self.noise.dephasing, KrausChannel::phase_damping)?;

        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Barrier => {}
                Operation::Gate(g) => {
                    let full = embed(&g.matrix(), &inst.qubits, n);
                    let full_dg = full.adjoint();
                    for b in &mut branches {
                        b.rho = full.mul(&b.rho)?.mul(&full_dg)?;
                    }
                    // Gate-dependent noise. Gates wider than two qubits get
                    // pairwise two-qubit depolarizing on consecutive qubit
                    // pairs, mirroring their hardware transpilation into
                    // two-qubit primitives.
                    if inst.qubits.len() == 1 {
                        apply_channel_opt(&mut branches, &depol1, &[inst.qubits[0]], n)?;
                        apply_channel_opt(&mut branches, &damp1, &[inst.qubits[0]], n)?;
                        apply_channel_opt(&mut branches, &deph, &[inst.qubits[0]], n)?;
                    } else {
                        for pair in inst.qubits.windows(2) {
                            apply_channel_opt(&mut branches, &depol2, pair, n)?;
                        }
                        for &q in &inst.qubits {
                            apply_channel_opt(&mut branches, &damp2, &[q], n)?;
                            apply_channel_opt(&mut branches, &deph, &[q], n)?;
                        }
                    }
                }
                Operation::Measure => {
                    let q = inst.qubits[0];
                    let c = inst.clbits[0];
                    let mut next = Vec::with_capacity(branches.len() * 2);
                    for b in &branches {
                        let (rho0, rho1) = project(&b.rho, q, n);
                        // Readout confusion: recorded bit may flip.
                        let p01 = self.noise.readout_p01;
                        let p10 = self.noise.readout_p10;
                        // True 0 branch.
                        push_branch(
                            &mut next,
                            rho0.scale(C64::from(1.0 - p01)),
                            b.key & !(1 << c),
                        );
                        push_branch(&mut next, rho0.scale(C64::from(p01)), b.key | (1 << c));
                        // True 1 branch.
                        push_branch(
                            &mut next,
                            rho1.scale(C64::from(1.0 - p10)),
                            b.key | (1 << c),
                        );
                        push_branch(&mut next, rho1.scale(C64::from(p10)), b.key & !(1 << c));
                    }
                    branches = coalesce(next)?;
                }
                Operation::Reset => {
                    let q = inst.qubits[0];
                    // |1⟩ branch flips back to |0⟩: X ρ1 X. Embedded once
                    // per instruction, not per branch.
                    let x = embed(&qra_circuit::Gate::X.matrix(), &[q], n);
                    for b in &mut branches {
                        let (rho0, rho1) = project(&b.rho, q, n);
                        let flipped = x.mul(&rho1)?.mul(&x)?;
                        b.rho = rho0.add(&flipped)?;
                    }
                }
            }
        }
        Ok(branches)
    }
}

/// Executes a compiled program's branch walk over compact `vec(ρ)`
/// branches, mirroring [`DensityMatrixSimulator::run_branches`] op for op
/// (same branch push order, same coalesce semantics) so results stay
/// bit-for-bit identical up to the sign of zero. Branch storage is
/// support-compact (see [`Support`]): projections are sequential splits,
/// coalesce merges are ordered interleave walks, and per-branch cost
/// shrinks geometrically with each measurement instead of staying `O(4ⁿ)`.
fn run_vec_branches(program: &CompiledDensityProgram, threads: usize) -> Vec<VecBranch> {
    let d = program.dim();
    let dd = d * d;
    let n = d.trailing_zeros() as usize;
    let p01 = program.readout_p01();
    let p10 = program.readout_p10();
    let mut branches = vec![VecBranch {
        rho: program.prefix().to_vec(),
        key: 0,
        support: Support::full(),
    }];
    let mut scratch = PairScratch::default();
    let mut term = Vec::new();
    let mut acc = Vec::new();
    // Kernels need positional `vec(ρ)` access, so compact post-measurement
    // branches are staged through one shared full-size buffer (allocated
    // lazily: terminal-measurement programs never need it). Invariant: the
    // stage is zero (up to the sign of zero) outside the support pattern
    // currently checked in, restored after each use by re-zeroing only the
    // pattern of what the kernel produced.
    let mut stage: Option<Vec<C64>> = None;
    for op in &program.ops()[program.prefix_len()..] {
        match op {
            DensityOp::Conjugate { pair, touched } => {
                for b in &mut branches {
                    if b.support == Support::full() {
                        pair.apply_threaded(&mut b.rho, &mut scratch, threads);
                    } else {
                        let stage = stage.get_or_insert_with(|| vec![C64::zero(); dd]);
                        expand(&b.rho, b.support, n, stage);
                        pair.apply_threaded(stage, &mut scratch, threads);
                        let support = b.support.cleared(*touched);
                        b.rho = compress_and_zero(stage, support, n);
                        b.support = support;
                    }
                }
            }
            DensityOp::Channel { pairs, touched } => {
                for b in &mut branches {
                    if b.support == Support::full() {
                        apply_channel_vec(
                            &mut b.rho,
                            pairs,
                            &mut term,
                            &mut acc,
                            &mut scratch,
                            threads,
                        );
                    } else {
                        let stage = stage.get_or_insert_with(|| vec![C64::zero(); dd]);
                        expand(&b.rho, b.support, n, stage);
                        apply_channel_vec(stage, pairs, &mut term, &mut acc, &mut scratch, threads);
                        let support = b.support.cleared(*touched);
                        b.rho = compress_and_zero(stage, support, n);
                        b.support = support;
                    }
                }
            }
            DensityOp::Measure {
                row_mask,
                col_mask,
                clbit_bit,
            } => {
                // Streaming coalesce: branches are pushed in the same
                // global order the interpreter builds its pre-coalesce
                // list, so per-key accumulation order is identical.
                let mut map: BTreeMap<u64, (Vec<C64>, Support)> = BTreeMap::new();
                let both = row_mask | col_mask;
                for b in std::mem::take(&mut branches) {
                    let (rho0, rho1) = project_compact(&b.rho, b.support, both, n);
                    if b.support.admits(both, false) {
                        let s0 = b.support.pinned(both, false);
                        push_scaled(&mut map, &rho0, s0, 1.0 - p01, b.key & !clbit_bit, n);
                        push_scaled(&mut map, &rho0, s0, p01, b.key | clbit_bit, n);
                    }
                    if b.support.admits(both, true) {
                        let s1 = b.support.pinned(both, true);
                        push_scaled(&mut map, &rho1, s1, 1.0 - p10, b.key | clbit_bit, n);
                        push_scaled(&mut map, &rho1, s1, p10, b.key & !clbit_bit, n);
                    }
                }
                branches = map
                    .into_iter()
                    .map(|(key, (rho, support))| VecBranch { rho, key, support })
                    .collect();
            }
            DensityOp::Reset {
                row_mask,
                col_mask,
                flip,
            } => {
                for b in &mut branches {
                    let both = row_mask | col_mask;
                    let (rho0, rho1) = project_compact(&b.rho, b.support, both, n);
                    // After the X fold the |1⟩ piece occupies the same
                    // pinned-to-zero pattern as the |0⟩ piece.
                    let s0 = b.support.pinned(both, false);
                    if !b.support.admits(both, true) {
                        // The |1⟩ projection is empty; the fold with its
                        // exact zeros is the identity on `rho0`.
                        b.rho = rho0;
                        b.support = s0;
                        continue;
                    }
                    let s1 = b.support.pinned(both, true);
                    let stage = stage.get_or_insert_with(|| vec![C64::zero(); dd]);
                    expand(&rho1, s1, n, stage);
                    flip.apply_threaded(stage, &mut scratch, threads);
                    let mut folded = Vec::with_capacity(s0.len(n));
                    if b.support.admits(both, false) {
                        let mut pos = 0;
                        s0.for_each(n, |i| {
                            folded.push(rho0[pos] + stage[i]);
                            pos += 1;
                            stage[i] = C64::zero();
                        });
                    } else {
                        // The |0⟩ projection is empty: folding its exact
                        // zeros in changes at most the sign of zero.
                        s0.for_each(n, |i| {
                            folded.push(stage[i]);
                            stage[i] = C64::zero();
                        });
                    }
                    b.rho = folded;
                    b.support = s0;
                }
            }
        }
    }
    branches
}

/// Trace of a compact branch: the diagonal entries of `vec(ρ)` inside the
/// pattern, folded in the same ascending order as [`CMatrix::trace`] — the
/// skipped off-support diagonal entries contribute exact zeros there.
fn trace_compact(rho: &[C64], support: Support, n: usize) -> C64 {
    let d1 = (1usize << n) - 1;
    let mut tr = C64::zero();
    let mut pos = 0;
    support.for_each(n, |i| {
        if (i >> n) == (i & d1) {
            tr += rho[pos];
        }
        pos += 1;
    });
    tr
}

/// Scatters a compact branch into the full-size staging buffer (which must
/// be zero outside `support` up to the sign of zero).
fn expand(rho: &[C64], support: Support, n: usize, stage: &mut [C64]) {
    let mut pos = 0;
    support.for_each(n, |i| {
        stage[i] = rho[pos];
        pos += 1;
    });
}

/// Gathers `support`'s entries out of the staging buffer into a fresh
/// compact branch, re-zeroing them so the stage is all-zero-class again
/// (a kernel's output is exactly zero-class outside its output pattern).
fn compress_and_zero(stage: &mut [C64], support: Support, n: usize) -> Vec<C64> {
    let mut out = Vec::with_capacity(support.len(n));
    support.for_each(n, |i| {
        out.push(stage[i]);
        stage[i] = C64::zero();
    });
    out
}

/// Splits a compact branch into the (unnormalised) post-measurement pieces
/// for outcomes 0 and 1: entries whose row *and* column bits (`both`) are
/// clear go to `rho0`, both-set to `rho1`, cross terms vanish. The pieces
/// are compact over `support.pinned(both, false/true)` — sub-patterns of
/// `support`, so the ascending walk emits them in enumeration order.
fn project_compact(rho: &[C64], support: Support, both: usize, n: usize) -> (Vec<C64>, Vec<C64>) {
    let mut rho0 = Vec::new();
    let mut rho1 = Vec::new();
    let mut pos = 0;
    support.for_each(n, |i| {
        let m = i & both;
        if m == 0 {
            rho0.push(rho[pos]);
        } else if m == both {
            rho1.push(rho[pos]);
        }
        pos += 1;
    });
    (rho0, rho1)
}

/// Scales a projected compact branch by readout probability `p` and merges
/// it into the coalesce map under `key`, dropping it when its trace is
/// negligible — the streaming equivalent of the interpreter's
/// push-then-[`coalesce`] (trace of the scaled branch computed first, so
/// dropped branches never materialize). A merge re-lays both operands out
/// over their pattern union via one ordered interleave walk; an index only
/// one side populates keeps/takes that side's value exactly (the other
/// side's contribution is an exact zero there).
fn push_scaled(
    map: &mut BTreeMap<u64, (Vec<C64>, Support)>,
    rho: &[C64],
    support: Support,
    p: f64,
    key: u64,
    n: usize,
) {
    if p == 0.0 {
        // The scaled trace would be exactly ±0 — below the threshold.
        return;
    }
    let factor = C64::from(p);
    // Same diagonal fold as the interpreter's trace: ascending, with
    // off-support diagonal entries contributing exact zeros.
    let d1 = (1usize << n) - 1;
    let mut tr = C64::zero();
    let mut pos = 0;
    support.for_each(n, |i| {
        if (i >> n) == (i & d1) {
            tr += rho[pos] * factor;
        }
        pos += 1;
    });
    if tr.re <= NEGLIGIBLE_BRANCH_TRACE {
        return;
    }
    match map.remove(&key) {
        Some((existing, existing_support)) => {
            let union = existing_support.union(support, n);
            let mut merged = Vec::with_capacity(union.len(n));
            let (mut pe, mut pi) = (0usize, 0usize);
            union.for_each(n, |i| {
                let mut v = if existing_support.contains(i, n) {
                    let x = existing[pe];
                    pe += 1;
                    x
                } else {
                    C64::zero()
                };
                if support.contains(i, n) {
                    v += rho[pi] * factor;
                    pi += 1;
                }
                merged.push(v);
            });
            map.insert(key, (merged, union));
        }
        None => {
            let scaled = rho.iter().map(|&z| z * factor).collect();
            map.insert(key, (scaled, support));
        }
    }
}

type ChannelCtor = fn(f64) -> Result<KrausChannel, SimError>;

pub(crate) fn build_channel(p: f64, ctor: ChannelCtor) -> Result<Option<KrausChannel>, SimError> {
    if p <= 0.0 {
        Ok(None)
    } else {
        ctor(p).map(Some)
    }
}

fn apply_channel_opt(
    branches: &mut [Branch],
    channel: &Option<KrausChannel>,
    qubits: &[usize],
    n: usize,
) -> Result<(), SimError> {
    let Some(ch) = channel else { return Ok(()) };
    // Two-qubit channels expect 4x4 operators; single expect 2x2.
    let expect_dim = 1usize << qubits.len();
    // Embed every Kraus operator once per instruction, not per branch.
    let embedded: Vec<(CMatrix, CMatrix)> = ch
        .operators()
        .iter()
        .map(|k| {
            debug_assert_eq!(k.rows(), expect_dim);
            let full = embed(k, qubits, n);
            let full_dg = full.adjoint();
            (full, full_dg)
        })
        .collect();
    for b in branches.iter_mut() {
        let mut acc = CMatrix::zeros(b.rho.rows(), b.rho.cols());
        for (full, full_dg) in &embedded {
            let term = full.mul(&b.rho)?.mul(full_dg)?;
            acc = acc.add(&term)?;
        }
        b.rho = acc;
    }
    Ok(())
}

/// Splits ρ into the (unnormalised) post-measurement pieces for outcomes
/// 0 and 1 of `qubit`.
fn project(rho: &CMatrix, qubit: usize, n: usize) -> (CMatrix, CMatrix) {
    let dim = rho.rows();
    let mask = 1usize << (n - 1 - qubit);
    let mut rho0 = CMatrix::zeros(dim, dim);
    let mut rho1 = CMatrix::zeros(dim, dim);
    for r in 0..dim {
        for c in 0..dim {
            let (rb, cb) = (r & mask != 0, c & mask != 0);
            if !rb && !cb {
                rho0.set(r, c, rho.get(r, c));
            } else if rb && cb {
                rho1.set(r, c, rho.get(r, c));
            }
        }
    }
    (rho0, rho1)
}

fn push_branch(list: &mut Vec<Branch>, rho: CMatrix, key: u64) {
    list.push(Branch { rho, key });
}

/// Merges branches with identical classical keys (their density matrices
/// add) and drops negligible ones, bounding the branch count by the number
/// of distinct classical outcomes.
fn coalesce(branches: Vec<Branch>) -> Result<Vec<Branch>, SimError> {
    let mut map: BTreeMap<u64, CMatrix> = BTreeMap::new();
    for b in branches {
        let tr = b.rho.trace()?.re;
        if tr <= NEGLIGIBLE_BRANCH_TRACE {
            continue;
        }
        match map.remove(&b.key) {
            Some(existing) => {
                map.insert(b.key, existing.add(&b.rho)?);
            }
            None => {
                map.insert(b.key, b.rho);
            }
        }
    }
    Ok(map
        .into_iter()
        .map(|(key, rho)| Branch { rho, key })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::DevicePreset;

    const TOL: f64 = 1e-9;

    #[test]
    fn noiseless_bell_matches_statevector() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let rho = DensityMatrixSimulator::new().evolve(&c).unwrap();
        let sv = c.statevector().unwrap();
        let expect = CMatrix::outer(&sv, &sv);
        assert!(rho.approx_eq(&expect, TOL));
        assert!((rho.purity().unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut noise = NoiseModel::ideal();
        noise.depol_2q = 0.1;
        let rho = DensityMatrixSimulator::with_noise(noise)
            .evolve(&c)
            .unwrap();
        assert!((rho.trace().unwrap().re - 1.0).abs() < TOL);
        assert!(rho.purity().unwrap() < 0.99);
    }

    #[test]
    fn outcome_distribution_is_normalized() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
        let dist = sim.outcome_distribution(&c).unwrap();
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Noise leaks probability into the odd-parity outcomes.
        let leak: f64 = dist
            .iter()
            .filter(|(k, _)| k.count_ones() == 1)
            .map(|(_, p)| p)
            .sum();
        assert!(leak > 0.001, "expected some leakage, got {leak}");
    }

    #[test]
    fn readout_error_flips_deterministic_outcome() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure_all();
        let mut noise = NoiseModel::ideal();
        noise.readout_p10 = 0.25;
        let sim = DensityMatrixSimulator::with_noise(noise);
        let dist = sim.outcome_distribution(&c).unwrap();
        let p0 = dist.iter().find(|(k, _)| *k == 0).map(|(_, p)| *p).unwrap();
        assert!((p0 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mid_circuit_measurement_branches() {
        // H, measure, H, measure — all four outcomes at 1/4 exactly.
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.h(0);
        c.measure(0, 1).unwrap();
        let dist = DensityMatrixSimulator::new()
            .outcome_distribution(&c)
            .unwrap();
        assert_eq!(dist.len(), 4);
        for (_, p) in dist {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn measurement_destroys_coherence() {
        // Measuring |+⟩ leaves the maximally mixed state.
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0);
        c.measure(0, 0).unwrap();
        let rho = DensityMatrixSimulator::new().evolve(&c).unwrap();
        let mixed = CMatrix::identity(2).scale(C64::from(0.5));
        assert!(rho.approx_eq(&mixed, TOL));
    }

    #[test]
    fn reset_produces_ground_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.reset(0).unwrap();
        let rho = DensityMatrixSimulator::new().evolve(&c).unwrap();
        let zero = CVector::basis_state(2, 0);
        assert!(rho.approx_eq(&CMatrix::outer(&zero, &zero), TOL));
    }

    #[test]
    fn run_sampling_matches_distribution() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_all();
        let sim = DensityMatrixSimulator::new();
        let counts = sim.run(&c, 8192, 13).unwrap();
        assert!((counts.frequency("0").unwrap() - 0.5).abs() < 0.03);
    }

    #[test]
    fn run_on_unmeasured_circuit_yields_all_zero_key() {
        // No measurements: the single branch has key 0 and full trace, so
        // every shot records the all-zeros outcome (one RNG draw each).
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let counts = DensityMatrixSimulator::new().run(&c, 64, 5).unwrap();
        assert_eq!(counts.total(), 64);
        assert_eq!(counts.count(0), 64);
    }

    #[test]
    fn too_wide_rejected() {
        let c = Circuit::new(13);
        assert!(matches!(
            DensityMatrixSimulator::new().evolve(&c),
            Err(SimError::TooManyQubits { .. })
        ));
        assert!(matches!(
            DensityMatrixSimulator::new().evolve_interpreted(&c),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn twelve_qubits_supported() {
        // The former dense-superoperator ceiling was 10; the kernelized
        // engine runs 12 (vec(ρ) = 4¹² amplitudes). A single gate keeps
        // the debug-build runtime sane (measurement branching at width is
        // pure index masking, covered at smaller n); the compile → prefix
        // evolution → distribution path still runs at the full width.
        let mut c = Circuit::new(12);
        c.h(0);
        let sim = DensityMatrixSimulator::new();
        let program = sim.compile(&c).unwrap();
        assert_eq!(program.dim(), 1 << 12);
        let dist = sim.outcome_distribution_compiled(&program).unwrap();
        assert_eq!(dist.len(), 1);
        assert!((dist[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_noise_rejected() {
        let mut noise = NoiseModel::ideal();
        noise.depol_1q = 1.5;
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(DensityMatrixSimulator::with_noise(noise)
            .evolve(&c)
            .is_err());
    }

    #[test]
    fn damping_relaxes_excited_state() {
        let mut c = Circuit::new(1);
        c.x(0);
        // Apply many identity-like gates to accumulate damping.
        for _ in 0..50 {
            c.rz(0.0, 0);
        }
        let mut noise = NoiseModel::ideal();
        noise.damping_1q = 0.05;
        let rho = DensityMatrixSimulator::with_noise(noise)
            .evolve(&c)
            .unwrap();
        let p1 = rho.get(1, 1).re;
        assert!(p1 < 0.2, "50 damping slots should relax |1⟩, p1={p1}");
    }

    #[test]
    fn noisy_ghz_degrades_gracefully() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c.measure_all();
        let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
        let dist = sim.outcome_distribution(&c).unwrap();
        let p_good: f64 = dist
            .iter()
            .filter(|(k, _)| *k == 0 || *k == 0b111)
            .map(|(_, p)| p)
            .sum();
        assert!(p_good > 0.6 && p_good < 0.999, "p_good={p_good}");
    }

    #[test]
    fn compiled_program_is_reusable() {
        let mut c = Circuit::with_clbits(2, 2);
        c.h(0).cx(0, 1);
        c.measure(0, 0).unwrap();
        c.h(1);
        c.measure(1, 1).unwrap();
        let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
        let program = sim.compile(&c).unwrap();
        let a = sim.run_compiled(&program, 512, 9).unwrap();
        let b = sim.run(&c, 512, 9).unwrap();
        assert_eq!(a, b);
        let again = sim.run_compiled(&program, 512, 9).unwrap();
        assert_eq!(a, again);
    }
}
