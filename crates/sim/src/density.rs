//! Exact density-matrix simulation with gate-level noise.
//!
//! This back-end substitutes for the real ibmq-melbourne device in the
//! paper's §IX-B: every gate is followed by the configured noise channels,
//! measurement applies a readout confusion matrix, and the full classical
//! joint distribution is computed exactly (then optionally sampled into
//! shot counts). Mid-circuit measurement — required by the Proq baseline —
//! branches the density matrix per outcome.

use crate::noise::{KrausChannel, NoiseModel};
use crate::{Counts, SimError};
use qra_circuit::gate::embed;
use qra_circuit::{Circuit, Operation};
use qra_math::{CMatrix, CVector, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum supported width (dense `2ⁿ × 2ⁿ` matrices).
const MAX_QUBITS: usize = 10;

/// One classical branch of the simulation: an (unnormalised) density matrix
/// whose trace is the probability of the recorded outcome bits.
#[derive(Debug, Clone)]
struct Branch {
    rho: CMatrix,
    key: u64,
}

/// An exact density-matrix simulator with optional noise.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::{DensityMatrixSimulator, DevicePreset};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// bell.measure_all();
/// let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
/// let dist = sim.outcome_distribution(&bell)?;
/// let p_00 = dist.iter().find(|(k, _)| *k == 0).map(|(_, p)| *p).unwrap();
/// assert!(p_00 > 0.35 && p_00 < 0.5); // noise pushes it below the ideal 0.5
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DensityMatrixSimulator {
    noise: NoiseModel,
}

impl Default for DensityMatrixSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl DensityMatrixSimulator {
    /// Creates a noiseless density-matrix simulator.
    pub fn new() -> Self {
        Self {
            noise: NoiseModel::ideal(),
        }
    }

    /// Creates a simulator with the given noise model.
    pub fn with_noise(noise: NoiseModel) -> Self {
        Self { noise }
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Evolves `|0…0⟩⟨0…0|` through the circuit and returns the final
    /// density matrix. Measurements dephase-and-branch internally; the
    /// returned matrix is the branch-summed (averaged) state.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond 10 qubits;
    /// * [`SimError::InvalidNoiseParameter`] for a bad noise model.
    pub fn evolve(&self, circuit: &Circuit) -> Result<CMatrix, SimError> {
        let branches = self.run_branches(circuit)?;
        let dim = 1usize << circuit.num_qubits();
        let mut rho = CMatrix::zeros(dim, dim);
        for b in branches {
            rho = rho.add(&b.rho)?;
        }
        Ok(rho)
    }

    /// Computes the exact joint distribution over the classical bits:
    /// a list of `(key, probability)` with non-negligible probability,
    /// where bit `c` of `key` is classical bit `c`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DensityMatrixSimulator::evolve`].
    pub fn outcome_distribution(&self, circuit: &Circuit) -> Result<Vec<(u64, f64)>, SimError> {
        let branches = self.run_branches(circuit)?;
        let mut table: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
        for b in branches {
            let p = b.rho.trace()?.re;
            if p > 1e-15 {
                *table.entry(b.key).or_insert(0.0) += p;
            }
        }
        Ok(table.into_iter().collect())
    }

    /// Samples `shots` outcomes from the exact distribution.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DensityMatrixSimulator::evolve`].
    pub fn run(&self, circuit: &Circuit, shots: u64, seed: u64) -> Result<Counts, SimError> {
        let dist = self.outcome_distribution(circuit)?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut counts = Counts::new(circuit.num_clbits());
        let total: f64 = dist.iter().map(|(_, p)| *p).sum();
        for _ in 0..shots {
            let mut r = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
            let mut chosen = dist.last().map(|(k, _)| *k).unwrap_or(0);
            for &(k, p) in &dist {
                if r < p {
                    chosen = k;
                    break;
                }
                r -= p;
            }
            counts.record(chosen, 1);
        }
        Ok(counts)
    }

    fn run_branches(&self, circuit: &Circuit) -> Result<Vec<Branch>, SimError> {
        self.noise.validate()?;
        let n = circuit.num_qubits();
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                num_qubits: n,
                max: MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > 64 {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                max: 64,
            });
        }
        let dim = 1usize << n;
        let zero = CVector::basis_state(dim, 0);
        let mut branches = vec![Branch {
            rho: CMatrix::outer(&zero, &zero),
            key: 0,
        }];

        // Pre-build noise channels once.
        let depol1 = build_channel(self.noise.depol_1q, KrausChannel::depolarizing_1q)?;
        let depol2 = build_channel(self.noise.depol_2q, KrausChannel::depolarizing_2q)?;
        let damp1 = build_channel(self.noise.damping_1q, KrausChannel::amplitude_damping)?;
        let damp2 = build_channel(self.noise.damping_2q, KrausChannel::amplitude_damping)?;
        let deph = build_channel(self.noise.dephasing, KrausChannel::phase_damping)?;

        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Barrier => {}
                Operation::Gate(g) => {
                    let full = embed(&g.matrix(), &inst.qubits, n);
                    let full_dg = full.adjoint();
                    for b in &mut branches {
                        b.rho = full.mul(&b.rho)?.mul(&full_dg)?;
                    }
                    // Gate-dependent noise. Gates wider than two qubits get
                    // pairwise two-qubit depolarizing on consecutive qubit
                    // pairs, mirroring their hardware transpilation into
                    // two-qubit primitives.
                    if inst.qubits.len() == 1 {
                        apply_channel_opt(&mut branches, &depol1, &[inst.qubits[0]], n)?;
                        apply_channel_opt(&mut branches, &damp1, &[inst.qubits[0]], n)?;
                        apply_channel_opt(&mut branches, &deph, &[inst.qubits[0]], n)?;
                    } else {
                        for pair in inst.qubits.windows(2) {
                            apply_channel_opt(&mut branches, &depol2, pair, n)?;
                        }
                        for &q in &inst.qubits {
                            apply_channel_opt(&mut branches, &damp2, &[q], n)?;
                            apply_channel_opt(&mut branches, &deph, &[q], n)?;
                        }
                    }
                }
                Operation::Measure => {
                    let q = inst.qubits[0];
                    let c = inst.clbits[0];
                    let mut next = Vec::with_capacity(branches.len() * 2);
                    for b in &branches {
                        let (rho0, rho1) = project(&b.rho, q, n);
                        // Readout confusion: recorded bit may flip.
                        let p01 = self.noise.readout_p01;
                        let p10 = self.noise.readout_p10;
                        // True 0 branch.
                        push_branch(
                            &mut next,
                            rho0.scale(C64::from(1.0 - p01)),
                            b.key & !(1 << c),
                        );
                        push_branch(&mut next, rho0.scale(C64::from(p01)), b.key | (1 << c));
                        // True 1 branch.
                        push_branch(
                            &mut next,
                            rho1.scale(C64::from(1.0 - p10)),
                            b.key | (1 << c),
                        );
                        push_branch(&mut next, rho1.scale(C64::from(p10)), b.key & !(1 << c));
                    }
                    branches = coalesce(next)?;
                }
                Operation::Reset => {
                    let q = inst.qubits[0];
                    for b in &mut branches {
                        let (rho0, rho1) = project(&b.rho, q, n);
                        // |1⟩ branch flips back to |0⟩: X ρ1 X.
                        let x = embed(&qra_circuit::Gate::X.matrix(), &[q], n);
                        let flipped = x.mul(&rho1)?.mul(&x)?;
                        b.rho = rho0.add(&flipped)?;
                    }
                }
            }
        }
        Ok(branches)
    }
}

type ChannelCtor = fn(f64) -> Result<KrausChannel, SimError>;

fn build_channel(p: f64, ctor: ChannelCtor) -> Result<Option<KrausChannel>, SimError> {
    if p <= 0.0 {
        Ok(None)
    } else {
        ctor(p).map(Some)
    }
}

fn apply_channel_opt(
    branches: &mut [Branch],
    channel: &Option<KrausChannel>,
    qubits: &[usize],
    n: usize,
) -> Result<(), SimError> {
    let Some(ch) = channel else { return Ok(()) };
    // Two-qubit channels expect 4x4 operators; single expect 2x2.
    let expect_dim = 1usize << qubits.len();
    for b in branches.iter_mut() {
        let mut acc = CMatrix::zeros(b.rho.rows(), b.rho.cols());
        for k in ch.operators() {
            debug_assert_eq!(k.rows(), expect_dim);
            let full = embed(k, qubits, n);
            let term = full.mul(&b.rho)?.mul(&full.adjoint())?;
            acc = acc.add(&term)?;
        }
        b.rho = acc;
    }
    Ok(())
}

/// Splits ρ into the (unnormalised) post-measurement pieces for outcomes
/// 0 and 1 of `qubit`.
fn project(rho: &CMatrix, qubit: usize, n: usize) -> (CMatrix, CMatrix) {
    let dim = rho.rows();
    let mask = 1usize << (n - 1 - qubit);
    let mut rho0 = CMatrix::zeros(dim, dim);
    let mut rho1 = CMatrix::zeros(dim, dim);
    for r in 0..dim {
        for c in 0..dim {
            let (rb, cb) = (r & mask != 0, c & mask != 0);
            if !rb && !cb {
                rho0.set(r, c, rho.get(r, c));
            } else if rb && cb {
                rho1.set(r, c, rho.get(r, c));
            }
        }
    }
    (rho0, rho1)
}

fn push_branch(list: &mut Vec<Branch>, rho: CMatrix, key: u64) {
    list.push(Branch { rho, key });
}

/// Merges branches with identical classical keys (their density matrices
/// add) and drops negligible ones, bounding the branch count by the number
/// of distinct classical outcomes.
fn coalesce(branches: Vec<Branch>) -> Result<Vec<Branch>, SimError> {
    let mut map: std::collections::BTreeMap<u64, CMatrix> = std::collections::BTreeMap::new();
    for b in branches {
        let tr = b.rho.trace()?.re;
        if tr <= 1e-14 {
            continue;
        }
        match map.remove(&b.key) {
            Some(existing) => {
                map.insert(b.key, existing.add(&b.rho)?);
            }
            None => {
                map.insert(b.key, b.rho);
            }
        }
    }
    Ok(map
        .into_iter()
        .map(|(key, rho)| Branch { rho, key })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::DevicePreset;

    const TOL: f64 = 1e-9;

    #[test]
    fn noiseless_bell_matches_statevector() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let rho = DensityMatrixSimulator::new().evolve(&c).unwrap();
        let sv = c.statevector().unwrap();
        let expect = CMatrix::outer(&sv, &sv);
        assert!(rho.approx_eq(&expect, TOL));
        assert!((rho.purity().unwrap() - 1.0).abs() < TOL);
    }

    #[test]
    fn depolarizing_reduces_purity() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut noise = NoiseModel::ideal();
        noise.depol_2q = 0.1;
        let rho = DensityMatrixSimulator::with_noise(noise)
            .evolve(&c)
            .unwrap();
        assert!((rho.trace().unwrap().re - 1.0).abs() < TOL);
        assert!(rho.purity().unwrap() < 0.99);
    }

    #[test]
    fn outcome_distribution_is_normalized() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
        let dist = sim.outcome_distribution(&c).unwrap();
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Noise leaks probability into the odd-parity outcomes.
        let leak: f64 = dist
            .iter()
            .filter(|(k, _)| k.count_ones() == 1)
            .map(|(_, p)| p)
            .sum();
        assert!(leak > 0.001, "expected some leakage, got {leak}");
    }

    #[test]
    fn readout_error_flips_deterministic_outcome() {
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure_all();
        let mut noise = NoiseModel::ideal();
        noise.readout_p10 = 0.25;
        let sim = DensityMatrixSimulator::with_noise(noise);
        let dist = sim.outcome_distribution(&c).unwrap();
        let p0 = dist.iter().find(|(k, _)| *k == 0).map(|(_, p)| *p).unwrap();
        assert!((p0 - 0.25).abs() < 1e-9);
    }

    #[test]
    fn mid_circuit_measurement_branches() {
        // H, measure, H, measure — all four outcomes at 1/4 exactly.
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.h(0);
        c.measure(0, 1).unwrap();
        let dist = DensityMatrixSimulator::new()
            .outcome_distribution(&c)
            .unwrap();
        assert_eq!(dist.len(), 4);
        for (_, p) in dist {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn measurement_destroys_coherence() {
        // Measuring |+⟩ leaves the maximally mixed state.
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0);
        c.measure(0, 0).unwrap();
        let rho = DensityMatrixSimulator::new().evolve(&c).unwrap();
        let mixed = CMatrix::identity(2).scale(C64::from(0.5));
        assert!(rho.approx_eq(&mixed, TOL));
    }

    #[test]
    fn reset_produces_ground_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.reset(0).unwrap();
        let rho = DensityMatrixSimulator::new().evolve(&c).unwrap();
        let zero = CVector::basis_state(2, 0);
        assert!(rho.approx_eq(&CMatrix::outer(&zero, &zero), TOL));
    }

    #[test]
    fn run_sampling_matches_distribution() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_all();
        let sim = DensityMatrixSimulator::new();
        let counts = sim.run(&c, 8192, 13).unwrap();
        assert!((counts.frequency("0").unwrap() - 0.5).abs() < 0.03);
    }

    #[test]
    fn too_wide_rejected() {
        let c = Circuit::new(11);
        assert!(matches!(
            DensityMatrixSimulator::new().evolve(&c),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn invalid_noise_rejected() {
        let mut noise = NoiseModel::ideal();
        noise.depol_1q = 1.5;
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(DensityMatrixSimulator::with_noise(noise)
            .evolve(&c)
            .is_err());
    }

    #[test]
    fn damping_relaxes_excited_state() {
        let mut c = Circuit::new(1);
        c.x(0);
        // Apply many identity-like gates to accumulate damping.
        for _ in 0..50 {
            c.rz(0.0, 0);
        }
        let mut noise = NoiseModel::ideal();
        noise.damping_1q = 0.05;
        let rho = DensityMatrixSimulator::with_noise(noise)
            .evolve(&c)
            .unwrap();
        let p1 = rho.get(1, 1).re;
        assert!(p1 < 0.2, "50 damping slots should relax |1⟩, p1={p1}");
    }

    #[test]
    fn noisy_ghz_degrades_gracefully() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c.measure_all();
        let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
        let dist = sim.outcome_distribution(&c).unwrap();
        let p_good: f64 = dist
            .iter()
            .filter(|(k, _)| *k == 0 || *k == 0b111)
            .map(|(_, p)| p)
            .sum();
        assert!(p_good > 0.6 && p_good < 0.999, "p_good={p_good}");
    }
}
