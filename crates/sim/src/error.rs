//! Error types for simulation.

use qra_circuit::CircuitError;
use qra_math::MathError;
use std::error::Error;
use std::fmt;

/// Error produced by the simulators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// The circuit is invalid or uses an unsupported feature.
    Circuit(CircuitError),
    /// A numerical operation failed.
    Math(MathError),
    /// The circuit is wider than the simulator supports.
    TooManyQubits {
        /// Requested width.
        num_qubits: usize,
        /// Supported maximum.
        max: usize,
    },
    /// The circuit has more classical bits than outcome keys can hold.
    TooManyClbits {
        /// Requested classical width.
        num_clbits: usize,
        /// Supported maximum (the key width in bits).
        max: usize,
    },
    /// A probability left the valid range (numerical blow-up guard).
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// A noise parameter was outside `[0, 1]`.
    InvalidNoiseParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A bitstring outcome query had the wrong length or non-binary
    /// characters (recoverable, unlike the former panic).
    MalformedBitstring {
        /// The offending bitstring.
        bits: String,
        /// Why it was rejected.
        reason: String,
    },
    /// A device-preset name did not match any known preset.
    UnknownPreset {
        /// The unrecognised name.
        name: String,
    },
    /// A gate outside the Clifford generator set reached the stabilizer
    /// backend (recoverable: callers fall back to a dense engine).
    NonCliffordGate {
        /// The offending gate's name.
        gate: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Circuit(e) => write!(f, "circuit error: {e}"),
            SimError::Math(e) => write!(f, "numerical error: {e}"),
            SimError::TooManyQubits { num_qubits, max } => {
                write!(f, "{num_qubits} qubits exceeds simulator limit of {max}")
            }
            SimError::TooManyClbits { num_clbits, max } => {
                write!(
                    f,
                    "{num_clbits} classical bits exceed the {max}-bit outcome keys"
                )
            }
            SimError::InvalidProbability { value } => {
                write!(f, "probability {value} outside [0, 1]")
            }
            SimError::InvalidNoiseParameter { name, value } => {
                write!(f, "noise parameter {name}={value} outside [0, 1]")
            }
            SimError::MalformedBitstring { bits, reason } => {
                write!(f, "malformed bitstring '{bits}': {reason}")
            }
            SimError::NonCliffordGate { gate } => {
                write!(f, "gate '{gate}' is not an exact Clifford generator")
            }
            SimError::UnknownPreset { name } => {
                write!(
                    f,
                    "unknown device preset '{name}' (expected one of: {})",
                    crate::noise::DevicePreset::variants().join(", ")
                )
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Circuit(e) => Some(e),
            SimError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for SimError {
    fn from(e: CircuitError) -> Self {
        SimError::Circuit(e)
    }
}

impl From<MathError> for SimError {
    fn from(e: MathError) -> Self {
        SimError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty_and_sources() {
        let errs = [
            SimError::Circuit(CircuitError::DuplicateQubit { qubit: 0 }),
            SimError::Math(MathError::LinearlyDependent),
            SimError::TooManyQubits {
                num_qubits: 40,
                max: 20,
            },
            SimError::InvalidProbability { value: 1.5 },
            SimError::InvalidNoiseParameter {
                name: "depol",
                value: -0.1,
            },
            SimError::MalformedBitstring {
                bits: "0x1".into(),
                reason: "invalid bit character 'x'".into(),
            },
            SimError::UnknownPreset { name: "hot".into() },
        ];
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
        assert!(errs[0].source().is_some());
        assert!(errs[2].source().is_none());
    }
}
