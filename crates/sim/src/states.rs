//! State-comparison and observable utilities.
//!
//! These back the experiment analysis: fidelity between the asserted state
//! and the simulated one, trace distance for distribution comparisons, and
//! Pauli-string expectation values for stabilizer-style checks.

use crate::SimError;
use qra_math::{hermitian_eigen, CMatrix, CVector, C64};

/// Fidelity `|⟨ψ|φ⟩|²` between two pure states.
///
/// # Errors
///
/// Returns [`SimError::Math`] on dimension mismatch.
///
/// ```rust
/// use qra_math::CVector;
/// use qra_sim::states::pure_fidelity;
///
/// let a = CVector::basis_state(2, 0);
/// let b = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
/// assert!((pure_fidelity(&a, &b)? - 0.5).abs() < 1e-12);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
pub fn pure_fidelity(a: &CVector, b: &CVector) -> Result<f64, SimError> {
    Ok(a.inner(b)?.norm_sqr())
}

/// Fidelity between a pure state and a density matrix: `⟨ψ|ρ|ψ⟩`.
///
/// # Errors
///
/// Returns [`SimError::Math`] on shape mismatch.
pub fn state_fidelity(psi: &CVector, rho: &CMatrix) -> Result<f64, SimError> {
    let rho_psi = rho.mul_vec(psi);
    Ok(psi.inner(&rho_psi)?.re)
}

/// Uhlmann fidelity between two density matrices,
/// `F(ρ, σ) = (tr √(√ρ σ √ρ))²`, computed through eigendecompositions.
///
/// # Errors
///
/// Returns [`SimError::Math`] when the matrices are not valid Hermitian
/// operators of equal dimension.
pub fn mixed_fidelity(rho: &CMatrix, sigma: &CMatrix) -> Result<f64, SimError> {
    if rho.shape() != sigma.shape() {
        return Err(SimError::Math(qra_math::MathError::ShapeMismatch {
            op: "fidelity",
            left: rho.shape(),
            right: sigma.shape(),
        }));
    }
    // √ρ via eigendecomposition (clamping tiny negative eigenvalues).
    let eig = hermitian_eigen(rho)?;
    let dim = rho.rows();
    let mut sqrt_rho = CMatrix::zeros(dim, dim);
    for (lambda, v) in eig.values.iter().zip(&eig.vectors) {
        let root = lambda.max(0.0).sqrt();
        sqrt_rho = sqrt_rho.add(&CMatrix::outer(v, v).scale(C64::from(root)))?;
    }
    let inner = sqrt_rho.mul(sigma)?.mul(&sqrt_rho)?;
    let inner_eig = hermitian_eigen(&inner)?;
    let trace_root: f64 = inner_eig.values.iter().map(|l| l.max(0.0).sqrt()).sum();
    Ok(trace_root * trace_root)
}

/// Trace distance `½‖ρ − σ‖₁` between two density matrices.
///
/// # Errors
///
/// Returns [`SimError::Math`] on shape mismatch or eigensolver failure.
pub fn trace_distance(rho: &CMatrix, sigma: &CMatrix) -> Result<f64, SimError> {
    let diff = rho.sub(sigma)?;
    let eig = hermitian_eigen(&diff)?;
    Ok(eig.values.iter().map(|l| l.abs()).sum::<f64>() / 2.0)
}

/// A Pauli string like `"XZI"` (character `i` acts on qubit `i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    ops: Vec<u8>, // b'I' | b'X' | b'Y' | b'Z'
}

impl PauliString {
    /// Parses a Pauli string; accepts `I`, `X`, `Y`, `Z` (any case).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Math`] for invalid characters or empty input.
    pub fn parse(s: &str) -> Result<Self, SimError> {
        if s.is_empty() {
            return Err(SimError::InvalidProbability { value: 0.0 });
        }
        let mut ops = Vec::with_capacity(s.len());
        for ch in s.chars() {
            match ch.to_ascii_uppercase() {
                'I' => ops.push(b'I'),
                'X' => ops.push(b'X'),
                'Y' => ops.push(b'Y'),
                'Z' => ops.push(b'Z'),
                _ => {
                    return Err(SimError::InvalidNoiseParameter {
                        name: "pauli character",
                        value: f64::NAN,
                    })
                }
            }
        }
        Ok(Self { ops })
    }

    /// Number of qubits the string covers.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the string is empty (never true for parsed strings).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The string's dense matrix (tensor product of the Pauli factors).
    pub fn matrix(&self) -> CMatrix {
        let mut m = CMatrix::identity(1);
        for &op in &self.ops {
            let factor = match op {
                b'X' => CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]),
                b'Y' => CMatrix::new(
                    2,
                    2,
                    vec![
                        C64::zero(),
                        C64::new(0.0, -1.0),
                        C64::new(0.0, 1.0),
                        C64::zero(),
                    ],
                ),
                b'Z' => CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]),
                _ => CMatrix::identity(2),
            };
            m = m.kron(&factor);
        }
        m
    }

    /// Expectation value `⟨ψ|P|ψ⟩` on a pure state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Math`] on dimension mismatch.
    pub fn expectation(&self, psi: &CVector) -> Result<f64, SimError> {
        let applied = self.matrix().mul_vec(psi);
        Ok(psi.inner(&applied)?.re)
    }

    /// Expectation value `tr(ρP)` on a density matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Math`] on dimension mismatch.
    pub fn expectation_rho(&self, rho: &CMatrix) -> Result<f64, SimError> {
        Ok(rho.mul(&self.matrix())?.trace()?.re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    fn bell() -> CVector {
        let s = 0.5f64.sqrt();
        CVector::from_real(&[s, 0.0, 0.0, s])
    }

    #[test]
    fn pure_fidelity_basics() {
        let zero = CVector::basis_state(2, 0);
        let one = CVector::basis_state(2, 1);
        assert!((pure_fidelity(&zero, &zero).unwrap() - 1.0).abs() < TOL);
        assert!(pure_fidelity(&zero, &one).unwrap() < TOL);
    }

    #[test]
    fn state_fidelity_with_mixture() {
        let zero = CVector::basis_state(2, 0);
        let rho = CMatrix::from_real(2, 2, &[0.75, 0.0, 0.0, 0.25]);
        assert!((state_fidelity(&zero, &rho).unwrap() - 0.75).abs() < TOL);
    }

    #[test]
    fn mixed_fidelity_matches_pure_case() {
        let a = bell();
        let b = CVector::from_real(&[0.6, 0.0, 0.0, 0.8]);
        let fa = pure_fidelity(&a, &b).unwrap();
        let fm = mixed_fidelity(&CMatrix::outer(&a, &a), &CMatrix::outer(&b, &b)).unwrap();
        assert!((fa - fm).abs() < 1e-7, "{fa} vs {fm}");
    }

    #[test]
    fn mixed_fidelity_identical_states_is_one() {
        let rho = CMatrix::from_real(2, 2, &[0.7, 0.1, 0.1, 0.3]);
        assert!((mixed_fidelity(&rho, &rho).unwrap() - 1.0).abs() < 1e-7);
    }

    #[test]
    fn mixed_fidelity_rejects_mismatch() {
        let a = CMatrix::identity(2).scale(C64::from(0.5));
        let b = CMatrix::identity(4).scale(C64::from(0.25));
        assert!(mixed_fidelity(&a, &b).is_err());
    }

    #[test]
    fn trace_distance_bounds() {
        let zero = CVector::basis_state(2, 0);
        let one = CVector::basis_state(2, 1);
        let r0 = CMatrix::outer(&zero, &zero);
        let r1 = CMatrix::outer(&one, &one);
        assert!((trace_distance(&r0, &r1).unwrap() - 1.0).abs() < TOL);
        assert!(trace_distance(&r0, &r0).unwrap() < TOL);
        // Maximally mixed vs pure: ½.
        let mixed = CMatrix::identity(2).scale(C64::from(0.5));
        assert!((trace_distance(&r0, &mixed).unwrap() - 0.5).abs() < TOL);
    }

    #[test]
    fn pauli_parsing_and_matrices() {
        let p = PauliString::parse("xz").unwrap();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        let m = p.matrix();
        assert!(m.is_unitary(TOL));
        assert!(m.is_hermitian(TOL));
        assert!(PauliString::parse("").is_err());
        assert!(PauliString::parse("XQ").is_err());
    }

    #[test]
    fn bell_stabilizers() {
        // Bell state stabilized by XX and ZZ, anti-stabilized by none.
        let b = bell();
        assert!((PauliString::parse("XX").unwrap().expectation(&b).unwrap() - 1.0).abs() < TOL);
        assert!((PauliString::parse("ZZ").unwrap().expectation(&b).unwrap() - 1.0).abs() < TOL);
        assert!((PauliString::parse("YY").unwrap().expectation(&b).unwrap() + 1.0).abs() < TOL);
        assert!(
            PauliString::parse("ZI")
                .unwrap()
                .expectation(&b)
                .unwrap()
                .abs()
                < TOL
        );
    }

    #[test]
    fn expectation_on_density_matrix() {
        let b = bell();
        let rho = CMatrix::outer(&b, &b);
        let xx = PauliString::parse("XX").unwrap();
        assert!((xx.expectation_rho(&rho).unwrap() - 1.0).abs() < TOL);
        // Dephased Bell loses XX coherence but keeps ZZ.
        let dephased = CMatrix::from_fn(
            4,
            4,
            |r, c| {
                if r == c {
                    rho.get(r, c)
                } else {
                    C64::zero()
                }
            },
        );
        assert!(xx.expectation_rho(&dephased).unwrap().abs() < TOL);
        let zz = PauliString::parse("ZZ").unwrap();
        assert!((zz.expectation_rho(&dephased).unwrap() - 1.0).abs() < TOL);
    }
}
