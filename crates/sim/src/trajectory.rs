//! Monte-Carlo (quantum trajectory) noisy simulation.
//!
//! The density-matrix back-end is exact but scales as `4ⁿ`; the trajectory
//! simulator instead samples one Kraus operator per channel application on
//! a state vector (`2ⁿ`), trading exactness for width. Averaged over
//! shots, trajectories converge to the density-matrix distribution —
//! `tests/integration_noise.rs` and the module tests verify the agreement.
//!
//! Like the state-vector back-end, the trajectory loop runs compiled: the
//! circuit is lowered once per run call — every gate and every Kraus
//! operator of every noise site becomes a specialized [`Kernel`] bound to
//! its qubit tuple — and shots replay the lowered plan. When no gate-level
//! noise channel is active (each gate op carries zero noise sites), the
//! leading unitary run is evolved once and cloned into each shot; noise
//! sites and measurements draw RNG in the exact order of the original
//! interpreter, so seeded runs stay bit-for-bit compatible.
//!
//! Two shot-execution modes exist:
//!
//! * [`TrajectorySimulator::run`] — the historical sequential mode: one
//!   RNG stream threads through all shots in order. Its draw sequence (and
//!   therefore its histogram for a given seed) is frozen; amplitude-level
//!   threading ([`TrajectorySimulator::with_threads`]) only parallelizes
//!   each kernel sweep, which is bit-for-bit identical at every thread
//!   count.
//! * [`TrajectorySimulator::run_batched`] — shots are partitioned into
//!   contiguous per-worker ranges and each shot runs on its own RNG seeded
//!   from [`derive_shot_seed`]`(seed, shot)`. Because each shot's draws
//!   depend only on `(seed, shot index)`, the histogram is identical at
//!   every worker count — but it is a *different* (equally valid) sample
//!   than `run` produces for the same seed.

use crate::noise::{KrausChannel, NoiseModel};
use crate::statevector::collapse_mask;
use crate::threads::{derive_shot_seed, resolve_threads};
use crate::{Counts, SimError};
use qra_circuit::kernel::Kernel;
use qra_circuit::{Circuit, Gate, Operation};
use qra_math::{CVector, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum supported width — unified with the compiled state-vector
/// engine's ceiling ([`crate::exec::MAX_QUBITS`]): both back-ends walk a
/// `2ⁿ` state vector, so they share one limit. (The density back-end
/// keeps its own, lower ceiling because it squares the register; see
/// [`crate::exec_density::MAX_QUBITS`].)
pub use crate::exec::MAX_QUBITS;

/// A shot-by-shot noisy simulator using quantum trajectories.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::{DevicePreset, TrajectorySimulator};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// bell.measure_all();
/// let mut sim = TrajectorySimulator::new(DevicePreset::melbourne_like(), 5);
/// let counts = sim.run(&bell, 2048)?;
/// // Noise leaks some probability into the odd-parity outcomes.
/// assert!(counts.frequency("01").unwrap() + counts.frequency("10").unwrap() > 0.0);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct TrajectorySimulator {
    noise: NoiseModel,
    /// Base seed, retained for per-shot derivation in [`Self::run_batched`].
    seed: u64,
    /// Sequential-mode RNG stream (advanced only by [`Self::run`]).
    rng: StdRng,
    /// Amplitude-level worker budget for kernel sweeps (sequential mode)
    /// and the shot-worker budget for batched mode. `1` = sequential.
    threads: usize,
    /// Buffers owned by the (single) sequential shot worker.
    buffers: ShotBuffers,
}

/// Scratch buffers owned by exactly one shot worker. Each concurrent shot
/// range in [`TrajectorySimulator::run_batched`] gets its own instance, so
/// no buffer is ever shared across concurrently running applications.
#[derive(Debug, Default)]
struct ShotBuffers {
    /// Full-dimension buffer for trial Kraus applications.
    scratch: Vec<C64>,
    /// Sub-block buffer for kernel applications.
    kscratch: Vec<C64>,
}

/// One lowered instruction of the trajectory plan.
#[derive(Debug)]
enum TrajOp {
    /// A gate kernel followed by its noise sites in interpreter order.
    Gate {
        kernel: Kernel,
        noise: Vec<NoiseSite>,
    },
    /// Collapse + readout confusion, updating `clbit_bit` in the key.
    Measure { mask: usize, clbit_bit: u64 },
    /// Collapse; apply `flip` (a lowered X) on `|1⟩`.
    Reset { mask: usize, flip: Kernel },
}

/// One channel application point: every Kraus operator pre-lowered to the
/// site's qubit tuple, plus the state-independent weights when the channel
/// is scaled-unitary.
#[derive(Debug)]
struct NoiseSite {
    kernels: Vec<Kernel>,
    /// `Some` for scaled-unitary channels (depolarizing): sample a branch
    /// from fixed weights, one application, no trial states.
    weights: Option<Vec<f64>>,
}

/// A circuit lowered once for trajectory replay: the noise-free leading
/// run already evolved into `prefix`, the remaining ops in `suffix`.
#[derive(Debug)]
struct TrajPlan {
    prefix: CVector,
    suffix: Vec<TrajOp>,
    num_clbits: usize,
}

impl TrajectorySimulator {
    /// Creates a trajectory simulator with the given noise model and seed.
    pub fn new(noise: NoiseModel, seed: u64) -> Self {
        Self {
            noise,
            seed,
            rng: StdRng::seed_from_u64(seed),
            threads: 1,
            buffers: ShotBuffers::default(),
        }
    }

    /// Sets the worker-thread budget: amplitude-level kernel threading in
    /// [`Self::run`] and shot-range workers in [`Self::run_batched`].
    /// `0` resolves to one worker per available core. Results are
    /// bit-for-bit identical at every thread count in both modes.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads).0;
        self
    }

    /// The resolved worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Runs `shots` independent noisy trajectories and histograms the
    /// classical outcomes.
    ///
    /// All shots draw from one sequential RNG stream, so for a given seed
    /// the histogram is frozen regardless of the thread budget (threads
    /// only parallelize amplitude sweeps inside each kernel).
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond [`MAX_QUBITS`];
    /// * [`SimError::InvalidNoiseParameter`] for a bad model;
    /// * [`SimError::Circuit`] for invalid circuits.
    pub fn run(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let plan = self.lower(circuit)?;
        let mut counts = Counts::new(plan.num_clbits);
        let mut state = plan.prefix.clone();
        for _ in 0..shots {
            state.as_mut_slice().copy_from_slice(plan.prefix.as_slice());
            let key = run_shot(
                &plan.suffix,
                &mut state,
                &self.noise,
                &mut self.rng,
                &mut self.buffers,
                self.threads,
            )?;
            counts.record(key, 1);
        }
        Ok(counts)
    }

    /// Runs `shots` independent trajectories with per-shot RNGs derived
    /// from `(seed, shot index)` via [`derive_shot_seed`], partitioning
    /// the shot range across up to [`Self::threads`] scoped workers.
    ///
    /// Because each shot's randomness depends only on its own derived
    /// seed, the resulting histogram is identical at every worker count
    /// and independent of how the range is partitioned — but it is a
    /// different (equally valid) sample than [`Self::run`] draws from its
    /// sequential stream. This method does not consume the sequential
    /// stream: interleaving `run` and `run_batched` calls leaves each
    /// mode's results unchanged.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::run`].
    pub fn run_batched(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let plan = self.lower(circuit)?;
        let workers = self.threads.clamp(1, shots.max(1) as usize);
        if workers == 1 {
            let mut counts = Counts::new(plan.num_clbits);
            let mut state = plan.prefix.clone();
            for shot in 0..shots {
                state.as_mut_slice().copy_from_slice(plan.prefix.as_slice());
                let mut rng = StdRng::seed_from_u64(derive_shot_seed(self.seed, shot));
                let key = run_shot(
                    &plan.suffix,
                    &mut state,
                    &self.noise,
                    &mut rng,
                    &mut self.buffers,
                    1,
                )?;
                counts.record(key, 1);
            }
            return Ok(counts);
        }
        // Contiguous per-worker shot ranges; each worker owns its state
        // and scratch buffers, each shot its own derived RNG. Workers use
        // sequential kernel sweeps — parallelism comes from the shot
        // dimension, not nested amplitude threading.
        let chunk = shots.div_ceil(workers as u64);
        let seed = self.seed;
        let noise = &self.noise;
        let plan_ref = &plan;
        let results: Vec<Result<Counts, SimError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    let lo = w * chunk;
                    let hi = ((w + 1) * chunk).min(shots);
                    scope.spawn(move || {
                        let mut counts = Counts::new(plan_ref.num_clbits);
                        let mut buffers = ShotBuffers::default();
                        let mut state = plan_ref.prefix.clone();
                        for shot in lo..hi {
                            state
                                .as_mut_slice()
                                .copy_from_slice(plan_ref.prefix.as_slice());
                            let mut rng = StdRng::seed_from_u64(derive_shot_seed(seed, shot));
                            let key = run_shot(
                                &plan_ref.suffix,
                                &mut state,
                                noise,
                                &mut rng,
                                &mut buffers,
                                1,
                            )?;
                            counts.record(key, 1);
                        }
                        Ok(counts)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("trajectory shot worker panicked"))
                .collect()
        });
        let mut counts = Counts::new(plan.num_clbits);
        for worker_counts in results {
            for (key, n) in worker_counts?.iter() {
                counts.record(key, n);
            }
        }
        Ok(counts)
    }

    /// Validates the model and width, then lowers the circuit into a
    /// replayable plan with its noise-free prefix already evolved.
    fn lower(&mut self, circuit: &Circuit) -> Result<TrajPlan, SimError> {
        self.noise.validate()?;
        let n = circuit.num_qubits();
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                num_qubits: n,
                max: MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > 64 {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                max: 64,
            });
        }
        let depol1 = PreparedChannel::build(self.noise.depol_1q, KrausChannel::depolarizing_1q)?;
        let depol2 = PreparedChannel::build(self.noise.depol_2q, KrausChannel::depolarizing_2q)?;
        let damp1 = PreparedChannel::build(self.noise.damping_1q, KrausChannel::amplitude_damping)?;
        let damp2 = PreparedChannel::build(self.noise.damping_2q, KrausChannel::amplitude_damping)?;
        let deph = PreparedChannel::build(self.noise.dephasing, KrausChannel::phase_damping)?;

        // Lower the circuit once: gates and Kraus operators become kernels
        // bound to their qubit tuples, in the exact application order of
        // the former per-shot interpreter.
        let mut plan: Vec<TrajOp> = Vec::new();
        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Barrier => {}
                Operation::Gate(g) => {
                    let kernel = Kernel::for_gate(g, &inst.qubits, n);
                    let mut noise = Vec::new();
                    if inst.qubits.len() == 1 {
                        push_site(&mut noise, &depol1, &inst.qubits, n);
                        push_site(&mut noise, &damp1, &inst.qubits, n);
                        push_site(&mut noise, &deph, &inst.qubits, n);
                    } else {
                        for pair in inst.qubits.windows(2) {
                            push_site(&mut noise, &depol2, pair, n);
                        }
                        for &q in &inst.qubits {
                            push_site(&mut noise, &damp2, &[q], n);
                            push_site(&mut noise, &deph, &[q], n);
                        }
                    }
                    plan.push(TrajOp::Gate { kernel, noise });
                }
                Operation::Measure => plan.push(TrajOp::Measure {
                    mask: 1usize << (n - 1 - inst.qubits[0]),
                    clbit_bit: 1u64 << inst.clbits[0],
                }),
                Operation::Reset => {
                    let q = inst.qubits[0];
                    plan.push(TrajOp::Reset {
                        mask: 1usize << (n - 1 - q),
                        flip: Kernel::for_gate(&Gate::X, &[q], n),
                    });
                }
            }
        }
        // A gate op with no noise sites is deterministic and draws no RNG,
        // so the leading run of such ops can be evolved once and cloned
        // into every shot without disturbing the draw sequence.
        let prefix_len = plan
            .iter()
            .position(|op| !matches!(op, TrajOp::Gate { kernel: _, noise } if noise.is_empty()))
            .unwrap_or(plan.len());

        let dim = 1usize << n;
        let mut prefix = CVector::basis_state(dim, 0);
        for op in &plan[..prefix_len] {
            if let TrajOp::Gate { kernel, .. } = op {
                kernel.apply_threaded(
                    prefix.as_mut_slice(),
                    &mut self.buffers.kscratch,
                    self.threads,
                );
            }
        }
        let suffix = plan.split_off(prefix_len);
        Ok(TrajPlan {
            prefix,
            suffix,
            num_clbits: circuit.num_clbits(),
        })
    }
}

/// Replays the plan suffix for one shot on `state` (already reset to the
/// prefix), drawing from `rng` and using only `buf`'s scratch space.
/// Returns the classical outcome key.
fn run_shot(
    suffix: &[TrajOp],
    state: &mut CVector,
    noise: &NoiseModel,
    rng: &mut StdRng,
    buf: &mut ShotBuffers,
    threads: usize,
) -> Result<u64, SimError> {
    let mut key = 0u64;
    for op in suffix {
        match op {
            TrajOp::Gate {
                kernel,
                noise: sites,
            } => {
                kernel.apply_threaded(state.as_mut_slice(), &mut buf.kscratch, threads);
                for site in sites {
                    apply_site(state, site, rng, buf, threads)?;
                }
            }
            TrajOp::Measure { mask, clbit_bit } => {
                let mut bit = collapse_mask(state, *mask, rng)?;
                // Readout confusion.
                let flip = if bit == 1 {
                    noise.readout_p10
                } else {
                    noise.readout_p01
                };
                if flip > 0.0 && rng.gen_range(0.0..1.0) < flip {
                    bit ^= 1;
                }
                if bit == 1 {
                    key |= clbit_bit;
                } else {
                    key &= !clbit_bit;
                }
            }
            TrajOp::Reset { mask, flip } => {
                if collapse_mask(state, *mask, rng)? == 1 {
                    flip.apply_threaded(state.as_mut_slice(), &mut buf.kscratch, threads);
                }
            }
        }
    }
    Ok(key)
}

/// Samples one Kraus branch of a noise site and applies it
/// (renormalised).
///
/// Scaled-unitary channels (depolarizing) use state-independent
/// weights: one draw, one in-place application, no clones. Damping
/// channels fall back to trial applications on a reusable buffer.
fn apply_site(
    state: &mut CVector,
    site: &NoiseSite,
    rng: &mut StdRng,
    buf: &mut ShotBuffers,
    threads: usize,
) -> Result<(), SimError> {
    if let Some(weights) = &site.weights {
        let mut r = rng.gen_range(0.0..1.0);
        let mut chosen = site.kernels.len() - 1;
        for (i, &w) in weights.iter().enumerate() {
            if r < w {
                chosen = i;
                break;
            }
            r -= w;
        }
        site.kernels[chosen].apply_threaded(state.as_mut_slice(), &mut buf.kscratch, threads);
        // Undo the √w scaling to keep unit norm.
        let w = weights[chosen];
        if (w - 1.0).abs() > 1e-15 {
            let inv = C64::from(1.0 / w.sqrt());
            for amp in state.as_mut_slice() {
                *amp *= inv;
            }
        }
        return Ok(());
    }
    // State-dependent branch probabilities p_i = ‖K_i ψ‖²; a reusable
    // scratch buffer holds the trial application (no per-trial allocs).
    let mut r = rng.gen_range(0.0..1.0);
    let dim = state.len();
    if buf.scratch.len() != dim {
        buf.scratch = vec![C64::zero(); dim];
    }
    for (i, k) in site.kernels.iter().enumerate() {
        buf.scratch.copy_from_slice(state.as_slice());
        let mut candidate = CVector::new(std::mem::take(&mut buf.scratch));
        k.apply_threaded(candidate.as_mut_slice(), &mut buf.kscratch, threads);
        let norm = candidate.norm();
        let p = norm * norm;
        if r < p || i == site.kernels.len() - 1 {
            if norm < 1e-12 {
                // Numerically dead branch; keep the state unchanged.
                buf.scratch = candidate.into_inner();
                return Ok(());
            }
            let inv = C64::from(1.0 / norm);
            for amp in candidate.as_mut_slice() {
                *amp *= inv;
            }
            buf.scratch = std::mem::replace(state, candidate).into_inner();
            return Ok(());
        }
        r -= p;
        buf.scratch = candidate.into_inner();
    }
    Ok(())
}

/// Lowers a prepared channel onto a qubit tuple, if the channel is active.
fn push_site(
    sites: &mut Vec<NoiseSite>,
    channel: &Option<PreparedChannel>,
    qubits: &[usize],
    n: usize,
) {
    let Some(prep) = channel else { return };
    sites.push(NoiseSite {
        kernels: prep
            .channel
            .operators()
            .iter()
            .map(|k| Kernel::from_matrix(k, qubits, n))
            .collect(),
        weights: prep.unitary_weights.clone(),
    });
}

type ChannelCtor = fn(f64) -> Result<KrausChannel, SimError>;

/// A channel with its precomputed sampling strategy.
#[derive(Debug)]
struct PreparedChannel {
    channel: KrausChannel,
    /// `Some` for scaled-unitary channels (state-independent weights).
    unitary_weights: Option<Vec<f64>>,
}

impl PreparedChannel {
    fn build(p: f64, ctor: ChannelCtor) -> Result<Option<Self>, SimError> {
        if p <= 0.0 {
            return Ok(None);
        }
        let channel = ctor(p)?;
        let unitary_weights = channel.scaled_unitary_weights();
        Ok(Some(Self {
            channel,
            unitary_weights,
        }))
    }
}

// Kernels only perform the linear application, so Kraus operators
// (non-unitary) lower and apply unchanged.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::DevicePreset;
    use crate::DensityMatrixSimulator;

    fn ghz_measured() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c.measure_all();
        c
    }

    #[test]
    fn noiseless_trajectories_match_ideal() {
        let mut sim = TrajectorySimulator::new(NoiseModel::ideal(), 3);
        let counts = sim.run(&ghz_measured(), 4096).unwrap();
        let p = counts.frequency("000").unwrap() + counts.frequency("111").unwrap();
        assert!((p - 1.0).abs() < 1e-9, "ideal trajectories must be exact");
    }

    #[test]
    fn trajectory_matches_density_distribution() {
        // Compare total variation between trajectory histogram and the
        // exact noisy distribution — must vanish within sampling error.
        let circuit = ghz_measured();
        let noise = DevicePreset::melbourne_like();
        let exact = DensityMatrixSimulator::with_noise(noise.clone())
            .outcome_distribution(&circuit)
            .unwrap();
        let shots = 20_000u64;
        let mut sim = TrajectorySimulator::new(noise, 7);
        let counts = sim.run(&circuit, shots).unwrap();
        let mut tv = 0.0;
        for (key, p_exact) in &exact {
            let p_meas = counts.count(*key) as f64 / shots as f64;
            tv += (p_exact - p_meas).abs();
        }
        tv /= 2.0;
        assert!(tv < 0.02, "trajectory/density TV distance too large: {tv}");
    }

    #[test]
    fn batched_matches_density_distribution() {
        // The batched sampler draws a different (per-shot-seeded) sample,
        // but it must converge to the same exact distribution.
        let circuit = ghz_measured();
        let noise = DevicePreset::melbourne_like();
        let exact = DensityMatrixSimulator::with_noise(noise.clone())
            .outcome_distribution(&circuit)
            .unwrap();
        let shots = 20_000u64;
        let mut sim = TrajectorySimulator::new(noise, 7);
        let counts = sim.run_batched(&circuit, shots).unwrap();
        let mut tv = 0.0;
        for (key, p_exact) in &exact {
            let p_meas = counts.count(*key) as f64 / shots as f64;
            tv += (p_exact - p_meas).abs();
        }
        tv /= 2.0;
        assert!(tv < 0.02, "batched/density TV distance too large: {tv}");
    }

    #[test]
    fn readout_error_applies() {
        let mut noise = NoiseModel::ideal();
        noise.readout_p10 = 0.3;
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure_all();
        let mut sim = TrajectorySimulator::new(noise, 11);
        let counts = sim.run(&c, 8192).unwrap();
        let p0 = counts.frequency("0").unwrap();
        assert!((p0 - 0.3).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn damping_relaxes_population() {
        let mut noise = NoiseModel::ideal();
        noise.damping_1q = 0.1;
        let mut c = Circuit::new(1);
        c.x(0);
        for _ in 0..20 {
            c.rz(0.0, 0);
        }
        c.measure_all();
        let mut sim = TrajectorySimulator::new(noise, 13);
        let counts = sim.run(&c, 4096).unwrap();
        assert!(
            counts.frequency("1").unwrap() < 0.3,
            "20 damping slots must relax |1⟩: p1 = {}",
            counts.frequency("1").unwrap()
        );
    }

    #[test]
    fn seeded_runs_reproduce() {
        let noise = DevicePreset::melbourne_like();
        let a = TrajectorySimulator::new(noise.clone(), 5)
            .run(&ghz_measured(), 512)
            .unwrap();
        let b = TrajectorySimulator::new(noise, 5)
            .run(&ghz_measured(), 512)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_run_is_thread_invariant() {
        // Amplitude-level threading must not change the draw sequence:
        // the histogram is frozen per seed at every thread count.
        let noise = DevicePreset::melbourne_like();
        let base = TrajectorySimulator::new(noise.clone(), 5)
            .run(&ghz_measured(), 512)
            .unwrap();
        for threads in [2usize, 4] {
            let counts = TrajectorySimulator::new(noise.clone(), 5)
                .with_threads(threads)
                .run(&ghz_measured(), 512)
                .unwrap();
            assert_eq!(base, counts, "threads = {threads}");
        }
    }

    #[test]
    fn batched_runs_are_worker_invariant() {
        // Per-shot seed derivation makes the batched histogram identical
        // at every worker count and partitioning.
        let noise = DevicePreset::melbourne_like();
        let base = TrajectorySimulator::new(noise.clone(), 5)
            .run_batched(&ghz_measured(), 513)
            .unwrap();
        for threads in [2usize, 3, 4, 16] {
            let counts = TrajectorySimulator::new(noise.clone(), 5)
                .with_threads(threads)
                .run_batched(&ghz_measured(), 513)
                .unwrap();
            assert_eq!(base, counts, "workers = {threads}");
        }
        assert_eq!(base.total(), 513);
    }

    #[test]
    fn batched_does_not_consume_sequential_stream() {
        // Interleaving run_batched must leave the sequential stream
        // untouched: run → run_batched → run must equal run → run.
        let noise = DevicePreset::melbourne_like();
        let mut interleaved = TrajectorySimulator::new(noise.clone(), 5);
        let a1 = interleaved.run(&ghz_measured(), 128).unwrap();
        let _ = interleaved.run_batched(&ghz_measured(), 128).unwrap();
        let a2 = interleaved.run(&ghz_measured(), 128).unwrap();
        let mut plain = TrajectorySimulator::new(noise, 5);
        let b1 = plain.run(&ghz_measured(), 128).unwrap();
        let b2 = plain.run(&ghz_measured(), 128).unwrap();
        assert_eq!(a1, b1);
        assert_eq!(a2, b2);
    }

    #[test]
    fn rejects_invalid_noise_and_width() {
        let mut bad = NoiseModel::ideal();
        bad.depol_1q = 2.0;
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(TrajectorySimulator::new(bad, 1).run(&c, 1).is_err());
        // The width ceiling is shared with the state-vector engine (24).
        let wide = Circuit::new(MAX_QUBITS + 1);
        match TrajectorySimulator::new(NoiseModel::ideal(), 1).run(&wide, 1) {
            Err(SimError::TooManyQubits { num_qubits, max }) => {
                assert_eq!(num_qubits, MAX_QUBITS + 1);
                assert_eq!(max, MAX_QUBITS);
            }
            other => panic!("expected TooManyQubits, got {other:?}"),
        }
    }

    #[test]
    fn accepts_widths_up_to_the_unified_ceiling() {
        // 21 qubits was rejected before the ceilings were unified; it must
        // lower cleanly now (validated at lowering time, before any state
        // allocation happens per-shot).
        let mut sim = TrajectorySimulator::new(NoiseModel::ideal(), 1);
        let c = Circuit::new(21);
        assert!(sim.lower(&c).is_ok());
    }

    #[test]
    fn scales_past_density_limit() {
        // 12 qubits saturates the density simulator's width cap.
        let mut c = Circuit::new(12);
        c.h(0);
        for q in 0..11 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        let mut sim = TrajectorySimulator::new(DevicePreset::LowNoise.noise_model(), 9);
        let counts = sim.run(&c, 64).unwrap();
        assert_eq!(counts.total(), 64);
    }

    #[test]
    fn readout_only_noise_uses_prefix_cache_and_reproduces() {
        // Gate channels all inactive: the unitary prefix is cached across
        // shots; readout draws must still happen per shot, in order.
        let mut noise = NoiseModel::ideal();
        noise.readout_p01 = 0.05;
        noise.readout_p10 = 0.1;
        let a = TrajectorySimulator::new(noise.clone(), 21)
            .run(&ghz_measured(), 2048)
            .unwrap();
        let b = TrajectorySimulator::new(noise, 21)
            .run(&ghz_measured(), 2048)
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.total(), 2048);
    }
}
