//! Monte-Carlo (quantum trajectory) noisy simulation.
//!
//! The density-matrix back-end is exact but scales as `4ⁿ`; the trajectory
//! simulator instead samples one Kraus operator per channel application on
//! a state vector (`2ⁿ`), trading exactness for width. Averaged over
//! shots, trajectories converge to the density-matrix distribution —
//! `tests/integration_noise.rs` and the module tests verify the agreement.

use crate::noise::{KrausChannel, NoiseModel};
use crate::{Counts, SimError};
use qra_circuit::circuit::apply_gate_inplace;
use qra_circuit::{Circuit, Operation};
use qra_math::{CVector, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum supported width.
const MAX_QUBITS: usize = 20;

/// A shot-by-shot noisy simulator using quantum trajectories.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::{DevicePreset, TrajectorySimulator};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// bell.measure_all();
/// let mut sim = TrajectorySimulator::new(DevicePreset::melbourne_like(), 5);
/// let counts = sim.run(&bell, 2048)?;
/// // Noise leaks some probability into the odd-parity outcomes.
/// assert!(counts.frequency("01").unwrap() + counts.frequency("10").unwrap() > 0.0);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct TrajectorySimulator {
    noise: NoiseModel,
    rng: StdRng,
    scratch: Vec<C64>,
}

impl TrajectorySimulator {
    /// Creates a trajectory simulator with the given noise model and seed.
    pub fn new(noise: NoiseModel, seed: u64) -> Self {
        Self {
            noise,
            rng: StdRng::seed_from_u64(seed),
            scratch: Vec::new(),
        }
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// Runs `shots` independent noisy trajectories and histograms the
    /// classical outcomes.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond 20 qubits;
    /// * [`SimError::InvalidNoiseParameter`] for a bad model;
    /// * [`SimError::Circuit`] for invalid circuits.
    pub fn run(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        self.noise.validate()?;
        let n = circuit.num_qubits();
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                num_qubits: n,
                max: MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > 64 {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                max: 64,
            });
        }
        let depol1 = PreparedChannel::build(self.noise.depol_1q, KrausChannel::depolarizing_1q)?;
        let depol2 = PreparedChannel::build(self.noise.depol_2q, KrausChannel::depolarizing_2q)?;
        let damp1 = PreparedChannel::build(self.noise.damping_1q, KrausChannel::amplitude_damping)?;
        let damp2 = PreparedChannel::build(self.noise.damping_2q, KrausChannel::amplitude_damping)?;
        let deph = PreparedChannel::build(self.noise.dephasing, KrausChannel::phase_damping)?;

        let dim = 1usize << n;
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let mut state = CVector::basis_state(dim, 0);
            let mut key = 0u64;
            for inst in circuit.instructions() {
                match &inst.operation {
                    Operation::Barrier => {}
                    Operation::Gate(g) => {
                        apply_gate_inplace(&mut state, &g.matrix(), &inst.qubits, n);
                        if inst.qubits.len() == 1 {
                            self.apply_channel(&mut state, &depol1, &inst.qubits, n)?;
                            self.apply_channel(&mut state, &damp1, &inst.qubits, n)?;
                            self.apply_channel(&mut state, &deph, &inst.qubits, n)?;
                        } else {
                            for pair in inst.qubits.windows(2) {
                                self.apply_channel(&mut state, &depol2, pair, n)?;
                            }
                            for &q in &inst.qubits {
                                self.apply_channel(&mut state, &damp2, &[q], n)?;
                                self.apply_channel(&mut state, &deph, &[q], n)?;
                            }
                        }
                    }
                    Operation::Measure => {
                        let q = inst.qubits[0];
                        let c = inst.clbits[0];
                        let mut bit = self.collapse(&mut state, q, n)?;
                        // Readout confusion.
                        let flip = if bit == 1 {
                            self.noise.readout_p10
                        } else {
                            self.noise.readout_p01
                        };
                        if flip > 0.0 && self.rng.gen_range(0.0..1.0) < flip {
                            bit ^= 1;
                        }
                        if bit == 1 {
                            key |= 1 << c;
                        } else {
                            key &= !(1 << c);
                        }
                    }
                    Operation::Reset => {
                        let q = inst.qubits[0];
                        let bit = self.collapse(&mut state, q, n)?;
                        if bit == 1 {
                            apply_gate_inplace(&mut state, &qra_circuit::Gate::X.matrix(), &[q], n);
                        }
                    }
                }
            }
            counts.record(key, 1);
        }
        Ok(counts)
    }

    /// Samples one Kraus branch and applies it (renormalised).
    ///
    /// Scaled-unitary channels (depolarizing) use state-independent
    /// weights: one draw, one in-place application, no clones. Damping
    /// channels fall back to trial applications.
    fn apply_channel(
        &mut self,
        state: &mut CVector,
        channel: &Option<PreparedChannel>,
        qubits: &[usize],
        n: usize,
    ) -> Result<(), SimError> {
        let Some(prep) = channel else { return Ok(()) };
        let ops = prep.channel.operators();
        if let Some(weights) = &prep.unitary_weights {
            let mut r = self.rng.gen_range(0.0..1.0);
            let mut chosen = ops.len() - 1;
            for (i, &w) in weights.iter().enumerate() {
                if r < w {
                    chosen = i;
                    break;
                }
                r -= w;
            }
            apply_gate_inplace(state, &ops[chosen], qubits, n);
            // Undo the √w scaling to keep unit norm.
            let w = weights[chosen];
            if (w - 1.0).abs() > 1e-15 {
                let inv = C64::from(1.0 / w.sqrt());
                for amp in state.as_mut_slice() {
                    *amp *= inv;
                }
            }
            return Ok(());
        }
        // State-dependent branch probabilities p_i = ‖K_i ψ‖²; a reusable
        // scratch buffer holds the trial application (no per-trial allocs).
        let mut r = self.rng.gen_range(0.0..1.0);
        let dim = state.len();
        if self.scratch.len() != dim {
            self.scratch = vec![C64::zero(); dim];
        }
        for (i, k) in ops.iter().enumerate() {
            self.scratch.copy_from_slice(state.as_slice());
            let mut candidate = CVector::new(std::mem::take(&mut self.scratch));
            apply_gate_inplace(&mut candidate, k, qubits, n);
            let norm = candidate.norm();
            let p = norm * norm;
            if r < p || i == ops.len() - 1 {
                if norm < 1e-12 {
                    // Numerically dead branch; keep the state unchanged.
                    self.scratch = candidate.into_inner();
                    return Ok(());
                }
                let inv = C64::from(1.0 / norm);
                for amp in candidate.as_mut_slice() {
                    *amp *= inv;
                }
                self.scratch = std::mem::replace(state, candidate).into_inner();
                return Ok(());
            }
            r -= p;
            self.scratch = candidate.into_inner();
        }
        Ok(())
    }

    fn collapse(&mut self, state: &mut CVector, qubit: usize, n: usize) -> Result<u8, SimError> {
        let mask = 1usize << (n - 1 - qubit);
        let mut p1 = 0.0;
        for (i, amp) in state.iter().enumerate() {
            if i & mask != 0 {
                p1 += amp.norm_sqr();
            }
        }
        if !(0.0..=1.0 + 1e-9).contains(&p1) {
            return Err(SimError::InvalidProbability { value: p1 });
        }
        let outcome = if self.rng.gen_range(0.0..1.0) < p1 {
            1u8
        } else {
            0
        };
        let keep_one = outcome == 1;
        let norm = if keep_one {
            p1.sqrt()
        } else {
            (1.0 - p1).sqrt()
        };
        let scale = C64::from(1.0 / norm.max(f64::MIN_POSITIVE));
        for i in 0..state.len() {
            let is_one = i & mask != 0;
            if is_one == keep_one {
                state[i] *= scale;
            } else {
                state[i] = C64::zero();
            }
        }
        Ok(outcome)
    }
}

type ChannelCtor = fn(f64) -> Result<KrausChannel, SimError>;

/// A channel with its precomputed sampling strategy.
#[derive(Debug)]
struct PreparedChannel {
    channel: KrausChannel,
    /// `Some` for scaled-unitary channels (state-independent weights).
    unitary_weights: Option<Vec<f64>>,
}

impl PreparedChannel {
    fn build(p: f64, ctor: ChannelCtor) -> Result<Option<Self>, SimError> {
        if p <= 0.0 {
            return Ok(None);
        }
        let channel = ctor(p)?;
        let unitary_weights = channel.scaled_unitary_weights();
        Ok(Some(Self {
            channel,
            unitary_weights,
        }))
    }
}

// `apply_gate_inplace` expects a unitary-shaped matrix but only performs the
// linear application, so Kraus operators (non-unitary) work unchanged.

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::DevicePreset;
    use crate::DensityMatrixSimulator;

    fn ghz_measured() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c.measure_all();
        c
    }

    #[test]
    fn noiseless_trajectories_match_ideal() {
        let mut sim = TrajectorySimulator::new(NoiseModel::ideal(), 3);
        let counts = sim.run(&ghz_measured(), 4096).unwrap();
        let p = counts.frequency("000").unwrap() + counts.frequency("111").unwrap();
        assert!((p - 1.0).abs() < 1e-9, "ideal trajectories must be exact");
    }

    #[test]
    fn trajectory_matches_density_distribution() {
        // Compare total variation between trajectory histogram and the
        // exact noisy distribution — must vanish within sampling error.
        let circuit = ghz_measured();
        let noise = DevicePreset::melbourne_like();
        let exact = DensityMatrixSimulator::with_noise(noise.clone())
            .outcome_distribution(&circuit)
            .unwrap();
        let shots = 20_000u64;
        let mut sim = TrajectorySimulator::new(noise, 7);
        let counts = sim.run(&circuit, shots).unwrap();
        let mut tv = 0.0;
        for (key, p_exact) in &exact {
            let p_meas = counts.count(*key) as f64 / shots as f64;
            tv += (p_exact - p_meas).abs();
        }
        tv /= 2.0;
        assert!(tv < 0.02, "trajectory/density TV distance too large: {tv}");
    }

    #[test]
    fn readout_error_applies() {
        let mut noise = NoiseModel::ideal();
        noise.readout_p10 = 0.3;
        let mut c = Circuit::new(1);
        c.x(0);
        c.measure_all();
        let mut sim = TrajectorySimulator::new(noise, 11);
        let counts = sim.run(&c, 8192).unwrap();
        let p0 = counts.frequency("0").unwrap();
        assert!((p0 - 0.3).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn damping_relaxes_population() {
        let mut noise = NoiseModel::ideal();
        noise.damping_1q = 0.1;
        let mut c = Circuit::new(1);
        c.x(0);
        for _ in 0..20 {
            c.rz(0.0, 0);
        }
        c.measure_all();
        let mut sim = TrajectorySimulator::new(noise, 13);
        let counts = sim.run(&c, 4096).unwrap();
        assert!(
            counts.frequency("1").unwrap() < 0.3,
            "20 damping slots must relax |1⟩: p1 = {}",
            counts.frequency("1").unwrap()
        );
    }

    #[test]
    fn seeded_runs_reproduce() {
        let noise = DevicePreset::melbourne_like();
        let a = TrajectorySimulator::new(noise.clone(), 5)
            .run(&ghz_measured(), 512)
            .unwrap();
        let b = TrajectorySimulator::new(noise, 5)
            .run(&ghz_measured(), 512)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_invalid_noise_and_width() {
        let mut bad = NoiseModel::ideal();
        bad.depol_1q = 2.0;
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(TrajectorySimulator::new(bad, 1).run(&c, 1).is_err());
        let wide = Circuit::new(21);
        assert!(TrajectorySimulator::new(NoiseModel::ideal(), 1)
            .run(&wide, 1)
            .is_err());
    }

    #[test]
    fn scales_past_density_limit() {
        // 12 qubits is far beyond the density simulator's 10-qubit cap.
        let mut c = Circuit::new(12);
        c.h(0);
        for q in 0..11 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        let mut sim = TrajectorySimulator::new(DevicePreset::LowNoise.noise_model(), 9);
        let counts = sim.run(&c, 64).unwrap();
        assert_eq!(counts.total(), 64);
    }
}
