//! Circuit → kernel-op lowering: the compiled execution engine front end.
//!
//! The interpreter in [`crate::statevector`] re-materialized every gate
//! matrix (`g.matrix()` allocates a fresh `CMatrix`) on every instruction of
//! every shot, and re-scanned the instruction list to re-discover structure
//! the circuit never changes between shots. [`CompiledProgram::compile`]
//! does all of that once:
//!
//! * every gate lowers to a specialized [`Kernel`]
//!   (butterfly/diagonal/permutation/generic — see [`qra_circuit::kernel`]),
//!   with its matrix precomputed and its scatter offsets baked in;
//! * measure/reset lower to precomputed bit masks (`1 << (n-1-q)`) and
//!   classical-bit masks (`1 << c`), so the per-shot loop does no index
//!   arithmetic;
//! * the **terminal** property (no gate or reset touches a qubit after it
//!   is measured) is detected in one pass with a qubit bitmask, replacing
//!   the interpreter's O(m²) `Vec::contains` scans;
//! * the **unitary prefix length** — the run of leading gate ops before the
//!   first measure/reset — is recorded so per-shot execution can evolve the
//!   prefix once and clone the cached state instead of replaying from
//!   `|0…0⟩`;
//! * adjacent single-qubit kernels on the same qubit and adjacent
//!   diagonal kernels on the same qubit tuple **fuse** into one
//!   [`KernelClass::Fused`] sweep ([`Kernel::fuse`] is loop fusion — the
//!   constituent arithmetic replays unchanged per amplitude, so fused
//!   programs are bit-for-bit identical to unfused ones; see
//!   [`CompiledProgram::compile_unfused`]).
//!
//! Lowering never consumes randomness and kernels are numerically
//! equivalent to the dense interpreter up to the sign of zero, so a
//! compiled run is bit-for-bit seed-compatible with the interpreted run —
//! the contract `tests/compiled_identity.rs` enforces.

use crate::SimError;
use qra_circuit::kernel::{CliffordOp, Kernel, KernelClass};
use qra_circuit::{Circuit, Gate, Operation};

/// Maximum width the compiled state-vector engine supports
/// (2²⁴ amplitudes ≈ 256 MiB).
pub const MAX_QUBITS: usize = 24;

/// Maximum number of classical bits (outcome keys are `u64`).
pub const MAX_CLBITS: usize = 64;

/// One lowered instruction of a [`CompiledProgram`].
#[derive(Debug, Clone)]
pub(crate) enum ExecOp {
    /// Apply a lowered gate kernel in place.
    Apply(Kernel),
    /// Collapse the qubit selected by `mask`; set/clear `clbit_bit` in the
    /// outcome key.
    Measure { mask: usize, clbit_bit: u64 },
    /// Collapse the qubit selected by `mask`; apply `flip` (a lowered X)
    /// when the qubit collapsed to `|1⟩`.
    Reset { mask: usize, flip: Kernel },
}

/// A [`Circuit`] lowered for repeated execution.
///
/// Compilation is a pure, RNG-free analysis pass; the same program can be
/// executed any number of times (e.g. once per campaign cell) and by
/// construction produces outcomes bit-for-bit identical to interpreting
/// the original circuit with the same seed.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::{CompiledProgram, StatevectorSimulator};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// c.measure_all();
/// let program = CompiledProgram::compile(&c)?;
/// assert!(program.is_terminal());
/// let counts = StatevectorSimulator::with_seed(7).run_compiled(&program, 1024)?;
/// assert_eq!(counts.total(), 1024);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<ExecOp>,
    prefix_len: usize,
    terminal: bool,
    clifford: bool,
    /// `(qubit, clbit)` pairs in program order, for terminal key building.
    measures: Vec<(usize, usize)>,
}

impl CompiledProgram {
    /// Lowers `circuit` into kernel ops.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond [`MAX_QUBITS`];
    /// * [`SimError::TooManyClbits`] beyond [`MAX_CLBITS`].
    pub fn compile(circuit: &Circuit) -> Result<CompiledProgram, SimError> {
        Self::compile_inner(circuit, true)
    }

    /// Lowers `circuit` without the kernel-fusion pass. Fusion is
    /// bit-for-bit neutral (loop fusion replays each constituent's
    /// arithmetic unchanged), so this exists for the identity tests that
    /// prove exactly that, and for perf A/B comparisons.
    ///
    /// # Errors
    ///
    /// Same as [`CompiledProgram::compile`].
    pub fn compile_unfused(circuit: &Circuit) -> Result<CompiledProgram, SimError> {
        Self::compile_inner(circuit, false)
    }

    fn compile_inner(circuit: &Circuit, fuse: bool) -> Result<CompiledProgram, SimError> {
        let n = circuit.num_qubits();
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                num_qubits: n,
                max: MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > MAX_CLBITS {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                max: MAX_CLBITS,
            });
        }
        let mut ops = Vec::new();
        let mut measures = Vec::new();
        // Qubits measured so far; n ≤ 24 fits a u32 bitmask, replacing the
        // interpreter's O(m²) Vec::contains scans.
        let mut measured = 0u32;
        let mut terminal = true;
        let mut clifford = true;
        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Barrier => {}
                Operation::Gate(g) => {
                    if inst.qubits.iter().any(|&q| measured & (1 << q) != 0) {
                        terminal = false;
                    }
                    // Clifford recognition happens per gate, before fusion
                    // can merge generators into an unrecognizable chain.
                    clifford &= CliffordOp::from_gate(g, &inst.qubits).is_some();
                    let kernel = Kernel::for_gate(g, &inst.qubits, n);
                    if fuse {
                        if let Some(ExecOp::Apply(prev)) = ops.last_mut() {
                            if let Some(fused) = prev.fuse(&kernel) {
                                *prev = fused;
                                continue;
                            }
                        }
                    }
                    ops.push(ExecOp::Apply(kernel));
                }
                Operation::Measure => {
                    let q = inst.qubits[0];
                    if measured & (1 << q) != 0 {
                        terminal = false; // double measurement needs collapse order
                    }
                    measured |= 1 << q;
                    measures.push((q, inst.clbits[0]));
                    ops.push(ExecOp::Measure {
                        mask: 1usize << (n - 1 - q),
                        clbit_bit: 1u64 << inst.clbits[0],
                    });
                }
                Operation::Reset => {
                    terminal = false;
                    let q = inst.qubits[0];
                    ops.push(ExecOp::Reset {
                        mask: 1usize << (n - 1 - q),
                        flip: Kernel::for_gate(&Gate::X, &[q], n),
                    });
                }
            }
        }
        let prefix_len = ops
            .iter()
            .position(|op| !matches!(op, ExecOp::Apply(_)))
            .unwrap_or(ops.len());
        Ok(CompiledProgram {
            num_qubits: n,
            num_clbits: circuit.num_clbits(),
            ops,
            prefix_len,
            terminal,
            clifford,
            measures,
        })
    }

    /// Register width in qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Classical register width in bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// State-vector dimension (`2ⁿ`).
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// `true` when every measurement is terminal, so the final distribution
    /// can be sampled directly instead of collapsing shot by shot.
    pub fn is_terminal(&self) -> bool {
        self.terminal
    }

    /// `true` when every gate is an exact Clifford generator
    /// ([`CliffordOp`]), so the program is eligible for the stabilizer
    /// fast path ([`crate::StabilizerSimulator`]). Measurements, resets
    /// and barriers never affect the tag.
    pub fn is_clifford(&self) -> bool {
        self.clifford
    }

    /// Number of lowered ops (gates + measures + resets; barriers vanish).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Length of the leading unitary run cacheable across shots.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Histogram of kernel specialization classes, for perf introspection.
    pub fn class_histogram(&self) -> Vec<(KernelClass, usize)> {
        let mut counts = [0usize; 5];
        for op in &self.ops {
            let class = match op {
                ExecOp::Apply(k) => k.class(),
                ExecOp::Measure { .. } => continue,
                ExecOp::Reset { flip, .. } => flip.class(),
            };
            let slot = match class {
                KernelClass::Single => 0,
                KernelClass::Diagonal => 1,
                KernelClass::Permutation => 2,
                KernelClass::Generic => 3,
                KernelClass::Fused => 4,
            };
            counts[slot] += 1;
        }
        [
            KernelClass::Single,
            KernelClass::Diagonal,
            KernelClass::Permutation,
            KernelClass::Generic,
            KernelClass::Fused,
        ]
        .into_iter()
        .zip(counts)
        .filter(|&(_, c)| c > 0)
        .collect()
    }

    /// Number of original gate kernels folded away by fusion: the sum of
    /// `fused_stages() - 1` over all apply ops.
    pub fn fused_away(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                ExecOp::Apply(k) => k.fused_stages() - 1,
                _ => 0,
            })
            .sum()
    }

    pub(crate) fn ops(&self) -> &[ExecOp] {
        &self.ops
    }

    pub(crate) fn measures(&self) -> &[(usize, usize)] {
        &self.measures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_detection_matches_structure() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let p = CompiledProgram::compile(&c).unwrap();
        assert!(p.is_terminal());
        assert_eq!(p.prefix_len(), 2);
        assert_eq!(p.op_count(), 4);
        assert_eq!(p.measures().len(), 2);
    }

    #[test]
    fn gate_after_measure_breaks_terminality() {
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.h(0);
        c.measure(0, 1).unwrap();
        let p = CompiledProgram::compile(&c).unwrap();
        assert!(!p.is_terminal());
        assert_eq!(p.prefix_len(), 1);
    }

    #[test]
    fn double_measurement_breaks_terminality() {
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.measure(0, 1).unwrap();
        assert!(!CompiledProgram::compile(&c).unwrap().is_terminal());
    }

    #[test]
    fn reset_breaks_terminality() {
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0);
        c.reset(0).unwrap();
        c.measure(0, 0).unwrap();
        let p = CompiledProgram::compile(&c).unwrap();
        assert!(!p.is_terminal());
    }

    #[test]
    fn clifford_tagging_follows_gate_set() {
        // Pure Clifford program: tagged, and stays tagged with measures,
        // resets and barriers mixed in.
        let mut c = Circuit::with_clbits(3, 3);
        c.h(0)
            .cx(0, 1)
            .s(1)
            .sdg(2)
            .x(2)
            .z(0)
            .y(1)
            .cz(0, 2)
            .swap(1, 2);
        c.barrier();
        c.reset(2).unwrap();
        c.measure(0, 0).unwrap();
        assert!(CompiledProgram::compile(&c).unwrap().is_clifford());

        // One non-Clifford gate poisons the program.
        let mut t = Circuit::new(2);
        t.h(0).t(0).cx(0, 1);
        t.measure_all();
        assert!(!CompiledProgram::compile(&t).unwrap().is_clifford());

        let mut rz = Circuit::new(1);
        rz.rz(0.5, 0);
        assert!(!CompiledProgram::compile(&rz).unwrap().is_clifford());

        // Fusion must not hide the per-gate classification: h·t·h fuses
        // into one kernel but the program is still non-Clifford.
        let mut fused = Circuit::new(1);
        fused.h(0).t(0).h(0);
        let p = CompiledProgram::compile(&fused).unwrap();
        assert_eq!(p.fused_away(), 2);
        assert!(!p.is_clifford());
    }

    #[test]
    fn width_limits_enforced() {
        assert!(matches!(
            CompiledProgram::compile(&Circuit::new(25)),
            Err(SimError::TooManyQubits {
                num_qubits: 25,
                max: 24
            })
        ));
    }

    #[test]
    fn adjacent_same_qubit_gates_fuse() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).h(0).cx(0, 1);
        c.measure_all();
        let p = CompiledProgram::compile(&c).unwrap();
        // h·t·h fuse into one kernel; cx and the two measures remain.
        assert_eq!(p.op_count(), 4);
        assert_eq!(p.fused_away(), 2);
        assert!(p.class_histogram().contains(&(KernelClass::Fused, 1)));
        assert_eq!(p.prefix_len(), 2);
        assert!(p.is_terminal());
        let u = CompiledProgram::compile_unfused(&c).unwrap();
        assert_eq!(u.op_count(), 6);
        assert_eq!(u.fused_away(), 0);
    }

    #[test]
    fn gates_on_different_qubits_do_not_fuse() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let p = CompiledProgram::compile(&c).unwrap();
        assert_eq!(p.op_count(), 2);
        assert_eq!(p.fused_away(), 0);
    }

    #[test]
    fn class_histogram_reports_specializations() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2).cu3(0.1, 0.2, 0.3, 0, 2);
        let p = CompiledProgram::compile(&c).unwrap();
        let hist = p.class_histogram();
        assert!(hist.contains(&(KernelClass::Single, 1)));
        assert!(hist.contains(&(KernelClass::Diagonal, 1)));
        assert!(hist.contains(&(KernelClass::Permutation, 1)));
        assert!(hist.contains(&(KernelClass::Generic, 1)));
    }
}
