//! Gottesman–Knill stabilizer-tableau simulation: the Clifford fast path.
//!
//! Assertion circuits in the source paper — GHZ preparation, SWAP-based
//! assertions on classical and entangled states, parity checks — are
//! (near-)Clifford, yet the state-vector and density back-ends pay the
//! full exponential cost and cap out at [`crate::exec::MAX_QUBITS`] /
//! 12 qubits. [`StabilizerSimulator`] simulates any circuit built from
//! the Clifford generators (`H`, `S`, `S†`, the Paulis, `CX`, `CZ`,
//! `SWAP`) plus measurement and reset in `O(n²)` per gate and `O(n³)`
//! per measurement, with a documented ceiling of
//! [`StabilizerSimulator::MAX_QUBITS`] = 4096 qubits.
//!
//! # Representation
//!
//! The Aaronson–Gottesman CHP tableau: `2n` Pauli rows (destabilizers
//! `0..n`, stabilizers `n..2n`) plus one scratch row, each row an X
//! bit-vector, a Z bit-vector (packed `u64` words, bit `q` of word
//! `q / 64` = qubit `q`) and a sign bit. Gates update columns in `O(n)`;
//! measurement uses the symplectic row-sum with the standard
//! `mod 4` phase accumulator, evaluated word-parallel via popcounts.
//!
//! # Determinism contract
//!
//! For all-Clifford circuits at widths both engines support, counts are
//! bit-identical to [`crate::StatevectorSimulator`] under the same seed,
//! *up to sampling-boundary ties*: both engines draw the same
//! `u64` stream and map each draw to an outcome through the same
//! ordered support enumeration, but the statevector's cumulative table
//! carries `~2⁻⁵²` relative rounding (e.g. `FRAC_1_SQRT_2² =
//! 0.5000000000000001`), so a draw landing within one ulp of a support
//! boundary can differ. The probability is `≈ k·2⁻⁵²` per shot — no
//! fixed-seed test in this workspace has ever crossed it — and
//! `tests/stabilizer_identity.rs` pins the equality over every circuit
//! family the campaign runner emits.
//!
//! Two seeding disciplines mirror [`crate::TrajectorySimulator`]:
//! [`StabilizerSimulator::run`] consumes one sequential `StdRng` stream
//! (statevector-compatible), while [`StabilizerSimulator::run_batched`]
//! derives an independent generator per shot from `(seed, shot)` via
//! [`derive_shot_seed`], so results are invariant under the worker-thread
//! count.

use crate::threads::{derive_shot_seed, resolve_threads};
use crate::{Counts, SimError};
use qra_circuit::kernel::CliffordOp;
use qra_circuit::{Circuit, Operation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One lowered instruction of a stabilizer program.
#[derive(Debug, Clone, Copy)]
enum StabOp {
    /// A recognized Clifford generator.
    Gate(CliffordOp),
    /// Measure `qubit` into classical bit `clbit`.
    Measure { qubit: usize, clbit: usize },
    /// Reset `qubit` to `|0⟩` (measure, then flip on `|1⟩`).
    Reset { qubit: usize },
}

/// A circuit lowered to tableau ops, mirroring the structure analysis of
/// [`crate::CompiledProgram`] (terminal detection, unitary prefix) without
/// ever materializing a `2ⁿ` dimension.
#[derive(Debug)]
struct StabProgram {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<StabOp>,
    prefix_len: usize,
    terminal: bool,
    /// `(qubit, clbit)` pairs in program order, for terminal key building.
    measures: Vec<(usize, usize)>,
}

impl StabProgram {
    /// Lowers `circuit`, rejecting any gate that is not an exact Clifford
    /// generator. The terminal/prefix analysis replicates
    /// [`crate::CompiledProgram::compile`] exactly so both engines pick
    /// the same sampling strategy (and therefore the same RNG draw
    /// schedule) for the same circuit.
    fn lower(circuit: &Circuit) -> Result<StabProgram, SimError> {
        let n = circuit.num_qubits();
        if n > StabilizerSimulator::MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                num_qubits: n,
                max: StabilizerSimulator::MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > crate::exec::MAX_CLBITS {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                max: crate::exec::MAX_CLBITS,
            });
        }
        let mut ops = Vec::new();
        let mut measures = Vec::new();
        let mut measured = BitVec::zeros(n);
        let mut terminal = true;
        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Barrier => {}
                Operation::Gate(g) => {
                    if inst.qubits.iter().any(|&q| measured.get(q)) {
                        terminal = false;
                    }
                    let op = CliffordOp::from_gate(g, &inst.qubits).ok_or_else(|| {
                        SimError::NonCliffordGate {
                            gate: g.name().to_string(),
                        }
                    })?;
                    ops.push(StabOp::Gate(op));
                }
                Operation::Measure => {
                    let q = inst.qubits[0];
                    if measured.get(q) {
                        terminal = false; // double measurement needs collapse order
                    }
                    measured.set(q);
                    measures.push((q, inst.clbits[0]));
                    ops.push(StabOp::Measure {
                        qubit: q,
                        clbit: inst.clbits[0],
                    });
                }
                Operation::Reset => {
                    terminal = false;
                    ops.push(StabOp::Reset {
                        qubit: inst.qubits[0],
                    });
                }
            }
        }
        let prefix_len = ops
            .iter()
            .position(|op| !matches!(op, StabOp::Gate(_)))
            .unwrap_or(ops.len());
        Ok(StabProgram {
            num_qubits: n,
            num_clbits: circuit.num_clbits(),
            ops,
            prefix_len,
            terminal,
            measures,
        })
    }
}

/// A plain bit-vector over qubit indices (bit `q` of word `q / 64`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct BitVec {
    words: Vec<u64>,
}

impl BitVec {
    fn zeros(bits: usize) -> Self {
        Self {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn get(&self, bit: usize) -> bool {
        self.words[bit / 64] & (1u64 << (bit % 64)) != 0
    }

    fn set(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    fn xor_assign(&mut self, other: &BitVec) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= *o;
        }
    }

    fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Index of the lowest set bit (`None` when all-zero). Qubit 0 is the
    /// most significant position of a basis-state index, so "lowest qubit
    /// index" = "most significant index bit".
    fn lowest_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// The CHP tableau: rows `0..n` destabilizers, `n..2n` stabilizers, row
/// `2n` scratch for deterministic-measurement phase accumulation.
#[derive(Debug, Clone)]
struct Tableau {
    n: usize,
    words: usize,
    /// X bit-matrix, row-major: row `i` occupies `x[i*words..(i+1)*words]`.
    x: Vec<u64>,
    /// Z bit-matrix, same layout.
    z: Vec<u64>,
    /// Sign bits (`true` = phase −1), one per row.
    r: Vec<bool>,
}

impl Tableau {
    /// The `|0…0⟩` tableau: destabilizer `i` = `Xᵢ`, stabilizer `i` = `Zᵢ`.
    fn identity(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        let rows = 2 * n + 1;
        let mut t = Tableau {
            n,
            words,
            x: vec![0; rows * words],
            z: vec![0; rows * words],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i * words + i / 64] |= 1u64 << (i % 64);
            t.z[(n + i) * words + i / 64] |= 1u64 << (i % 64);
        }
        t
    }

    #[inline]
    fn xbit(&self, row: usize, w: usize, b: u64) -> bool {
        self.x[row * self.words + w] & b != 0
    }

    #[inline]
    fn zbit(&self, row: usize, w: usize, b: u64) -> bool {
        self.z[row * self.words + w] & b != 0
    }

    fn h(&mut self, a: usize) {
        let (w, b) = (a / 64, 1u64 << (a % 64));
        for i in 0..2 * self.n {
            let xi = self.xbit(i, w, b);
            let zi = self.zbit(i, w, b);
            if xi && zi {
                self.r[i] = !self.r[i];
            }
            if xi != zi {
                self.x[i * self.words + w] ^= b;
                self.z[i * self.words + w] ^= b;
            }
        }
    }

    fn s(&mut self, a: usize) {
        let (w, b) = (a / 64, 1u64 << (a % 64));
        for i in 0..2 * self.n {
            let xi = self.xbit(i, w, b);
            if xi {
                if self.zbit(i, w, b) {
                    self.r[i] = !self.r[i];
                }
                self.z[i * self.words + w] ^= b;
            }
        }
    }

    /// `S† = Z·S`: flips the sign when `x ∧ ¬z` (verified on `X → −Y`,
    /// `Y → X`), then toggles `z` where `x` is set, same as `S`.
    fn sdg(&mut self, a: usize) {
        let (w, b) = (a / 64, 1u64 << (a % 64));
        for i in 0..2 * self.n {
            let xi = self.xbit(i, w, b);
            if xi {
                if !self.zbit(i, w, b) {
                    self.r[i] = !self.r[i];
                }
                self.z[i * self.words + w] ^= b;
            }
        }
    }

    fn x_gate(&mut self, a: usize) {
        let (w, b) = (a / 64, 1u64 << (a % 64));
        for i in 0..2 * self.n {
            if self.zbit(i, w, b) {
                self.r[i] = !self.r[i];
            }
        }
    }

    fn z_gate(&mut self, a: usize) {
        let (w, b) = (a / 64, 1u64 << (a % 64));
        for i in 0..2 * self.n {
            if self.xbit(i, w, b) {
                self.r[i] = !self.r[i];
            }
        }
    }

    fn y_gate(&mut self, a: usize) {
        let (w, b) = (a / 64, 1u64 << (a % 64));
        for i in 0..2 * self.n {
            if self.xbit(i, w, b) != self.zbit(i, w, b) {
                self.r[i] = !self.r[i];
            }
        }
    }

    fn cx(&mut self, a: usize, b: usize) {
        let (wa, ba) = (a / 64, 1u64 << (a % 64));
        let (wb, bb) = (b / 64, 1u64 << (b % 64));
        for i in 0..2 * self.n {
            let xa = self.xbit(i, wa, ba);
            let za = self.zbit(i, wa, ba);
            let xb = self.xbit(i, wb, bb);
            let zb = self.zbit(i, wb, bb);
            if xa && zb && (xb == za) {
                self.r[i] = !self.r[i];
            }
            if xa {
                self.x[i * self.words + wb] ^= bb;
            }
            if zb {
                self.z[i * self.words + wa] ^= ba;
            }
        }
    }

    fn apply(&mut self, op: CliffordOp) {
        match op {
            CliffordOp::I(_) => {}
            CliffordOp::H(a) => self.h(a),
            CliffordOp::S(a) => self.s(a),
            CliffordOp::Sdg(a) => self.sdg(a),
            CliffordOp::X(a) => self.x_gate(a),
            CliffordOp::Y(a) => self.y_gate(a),
            CliffordOp::Z(a) => self.z_gate(a),
            CliffordOp::Cx(a, b) => self.cx(a, b),
            // Composition keeps the phase bookkeeping trivially correct:
            // CZ = H(b)·CX(a,b)·H(b), SWAP = CX·CX·CX.
            CliffordOp::Cz(a, b) => {
                self.h(b);
                self.cx(a, b);
                self.h(b);
            }
            CliffordOp::Swap(a, b) => {
                self.cx(a, b);
                self.cx(b, a);
                self.cx(a, b);
            }
        }
    }

    /// Left-multiplies row `h` by row `i` (`Pₕ ← Pᵢ·Pₕ`), tracking the
    /// sign through the standard CHP `mod 4` accumulator, word-parallel.
    fn rowsum(&mut self, h: usize, i: usize) {
        let (hb, ib) = (h * self.words, i * self.words);
        let mut acc: i64 = 2 * (self.r[h] as i64) + 2 * (self.r[i] as i64);
        for w in 0..self.words {
            let (x1, z1) = (self.x[ib + w], self.z[ib + w]);
            let (x2, z2) = (self.x[hb + w], self.z[hb + w]);
            // g(x1,z1,x2,z2) summed over the word: +1 where the product
            // picks up i, −1 where it picks up −i.
            let pos = (x1 & z1 & z2 & !x2) | (x1 & !z1 & x2 & z2) | (!x1 & z1 & x2 & !z2);
            let neg = (x1 & z1 & x2 & !z2) | (x1 & !z1 & z2 & !x2) | (!x1 & z1 & x2 & z2);
            acc += pos.count_ones() as i64 - neg.count_ones() as i64;
            self.x[hb + w] = x2 ^ x1;
            self.z[hb + w] = z2 ^ z1;
        }
        debug_assert!(acc.rem_euclid(2) == 0, "odd phase in rowsum");
        self.r[h] = acc.rem_euclid(4) == 2;
    }

    fn row_copy(&mut self, dst: usize, src: usize) {
        let (db, sb) = (dst * self.words, src * self.words);
        for w in 0..self.words {
            self.x[db + w] = self.x[sb + w];
            self.z[db + w] = self.z[sb + w];
        }
        self.r[dst] = self.r[src];
    }

    fn row_clear(&mut self, row: usize) {
        let rb = row * self.words;
        for w in 0..self.words {
            self.x[rb + w] = 0;
            self.z[rb + w] = 0;
        }
        self.r[row] = false;
    }

    /// Measures qubit `a`. When the outcome is random, `random_bit` is
    /// used as the result; when deterministic it is ignored (the caller
    /// still burns one RNG draw either way, mirroring the statevector
    /// collapse which always draws). Returns the outcome.
    fn measure(&mut self, a: usize, random_bit: bool) -> bool {
        let n = self.n;
        let (w, b) = (a / 64, 1u64 << (a % 64));
        let random_row = (n..2 * n).find(|&p| self.xbit(p, w, b));
        match random_row {
            Some(p) => {
                // Row p−n (the destabilizer paired with p) anticommutes
                // with p and is wholly overwritten below, so it is
                // excluded from the rowsum pass.
                for i in 0..2 * n {
                    if i != p && i != p - n && self.xbit(i, w, b) {
                        self.rowsum(i, p);
                    }
                }
                self.row_copy(p - n, p);
                self.row_clear(p);
                self.z[p * self.words + w] |= b;
                self.r[p] = random_bit;
                random_bit
            }
            None => {
                // Deterministic: accumulate the matching stabilizers'
                // product in the scratch row; its sign is the outcome.
                self.row_clear(2 * n);
                for i in 0..n {
                    if self.xbit(i, w, b) {
                        self.rowsum(2 * n, i + n);
                    }
                }
                self.r[2 * n]
            }
        }
    }

    /// X-part of stabilizer row `n + i` as a bit-vector.
    fn stabilizer_x(&self, i: usize) -> BitVec {
        let base = (self.n + i) * self.words;
        BitVec {
            words: self.x[base..base + self.words].to_vec(),
        }
    }
}

/// The support of a stabilizer state as an ordered affine subspace:
/// `{ offset ⊕ span(basis) }`, with `basis` in fully reduced echelon form
/// sorted by pivot (lowest qubit index — i.e. most significant
/// basis-state index bit — first) and `offset` zeroed at every pivot.
///
/// With that normalization, enumerating combinations `m` with bit
/// `k−1−i` of `m` selecting `basis[i]` visits support elements in
/// strictly increasing basis-state-index order — the exact order the
/// statevector's cumulative-table sampler indexes, which is what makes
/// `m = floor(u·2ᵏ)` land on the same outcome as
/// `partition_point(cum ≤ u·total)`.
#[derive(Debug)]
struct Support {
    offset: BitVec,
    basis: Vec<BitVec>,
}

impl Support {
    fn from_tableau(t: &Tableau) -> Support {
        let n = t.n;
        // Reduced echelon basis of the stabilizer X-parts.
        let mut basis: Vec<BitVec> = Vec::new();
        for i in 0..n {
            let mut v = t.stabilizer_x(i);
            for bv in &basis {
                let p = bv.lowest_set().expect("basis vectors are nonzero");
                if v.get(p) {
                    v.xor_assign(bv);
                }
            }
            if v.is_zero() {
                continue;
            }
            let p = v.lowest_set().expect("nonzero");
            for bv in &mut basis {
                if bv.get(p) {
                    bv.xor_assign(&v);
                }
            }
            basis.push(v);
        }
        basis.sort_by_key(|v| v.lowest_set().expect("nonzero"));
        // One support element: measure every qubit on a scratch copy,
        // forcing 0 on random outcomes. Every forced branch has
        // probability ½ > 0, so the resulting basis state is in the
        // support.
        let mut scratch = t.clone();
        let mut offset = BitVec::zeros(n);
        for q in 0..n {
            if scratch.measure(q, false) {
                offset.set(q);
            }
        }
        // Canonicalize: zero the offset at every pivot.
        for bv in &basis {
            let p = bv.lowest_set().expect("nonzero");
            if offset.get(p) {
                offset.xor_assign(bv);
            }
        }
        Support { offset, basis }
    }

    fn rank(&self) -> usize {
        self.basis.len()
    }
}

/// Key-building data for terminal sampling: the classical key of support
/// combination `m` is `base_key ⊕ XOR of vec_keys[i] over set bits
/// (k−1−i) of m` — valid because every measured clbit is written by
/// exactly one terminal measure (the distinct-clbit fast path) or
/// assembled per shot otherwise.
#[derive(Debug)]
struct TerminalKeys {
    base_key: u64,
    vec_keys: Vec<u64>,
}

impl TerminalKeys {
    fn build(support: &Support, measures: &[(usize, usize)]) -> Option<TerminalKeys> {
        let mut seen = 0u64;
        for &(_, c) in measures {
            let bit = 1u64 << c;
            if seen & bit != 0 {
                return None; // duplicate clbit: fall back to per-shot keys
            }
            seen |= bit;
        }
        let key_of = |v: &BitVec| {
            let mut key = 0u64;
            for &(q, c) in measures {
                if v.get(q) {
                    key |= 1u64 << c;
                }
            }
            key
        };
        Some(TerminalKeys {
            base_key: key_of(&support.offset),
            vec_keys: support.basis.iter().map(key_of).collect(),
        })
    }
}

/// A stabilizer-tableau simulator for exact Clifford circuits.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::StabilizerSimulator;
///
/// let mut ghz = Circuit::with_clbits(100, 2);
/// ghz.h(0);
/// for q in 1..100 {
///     ghz.cx(q - 1, q);
/// }
/// ghz.measure(0, 0).unwrap();
/// ghz.measure(99, 1).unwrap();
/// let counts = StabilizerSimulator::with_seed(7).run(&ghz, 4096)?;
/// assert!(counts.frequency("00")? > 0.4);
/// assert!(counts.frequency("11")? > 0.4);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct StabilizerSimulator {
    rng: StdRng,
    seed: u64,
    threads: usize,
}

impl StabilizerSimulator {
    /// Maximum register width. `O(n²)` tableau memory at 4096 qubits is
    /// ~16 MiB — far below the statevector's 2²⁴-amplitude wall — and the
    /// cap keeps worst-case `O(n³)` measurement below a second.
    pub const MAX_QUBITS: usize = 4096;

    /// Creates a simulator seeded from the OS entropy source.
    pub fn new() -> Self {
        Self::with_seed(
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9e37_79b9_7f4a_7c15),
        )
    }

    /// Creates a simulator with a fixed seed. Seed-compatible with
    /// [`crate::StatevectorSimulator::with_seed`]: the same seed produces
    /// bit-identical [`Counts`] on all-Clifford circuits (see the module
    /// docs for the boundary-tie caveat).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            seed,
            threads: 1,
        }
    }

    /// Sets the worker-thread count used by
    /// [`StabilizerSimulator::run_batched`] (`0` = all cores). The
    /// sequential [`StabilizerSimulator::run`] path ignores it.
    pub fn with_threads(mut self, threads: usize) -> Self {
        let (resolved, _) = resolve_threads(threads);
        self.threads = resolved;
        self
    }

    /// Whether every gate of `circuit` is an exact Clifford generator
    /// (barriers, measurements and resets are always supported). This is
    /// the auto-engage predicate: it never materializes a `2ⁿ` dimension,
    /// so it is safe to ask at any width.
    pub fn supports(circuit: &Circuit) -> bool {
        circuit
            .instructions()
            .iter()
            .all(|inst| match &inst.operation {
                Operation::Gate(g) => CliffordOp::from_gate(g, &inst.qubits).is_some(),
                _ => true,
            })
    }

    /// Runs `circuit` for `shots` shots on the sequential RNG stream.
    ///
    /// # Errors
    ///
    /// * [`SimError::NonCliffordGate`] when a gate is not an exact
    ///   Clifford generator;
    /// * [`SimError::TooManyQubits`] beyond
    ///   [`StabilizerSimulator::MAX_QUBITS`];
    /// * [`SimError::TooManyClbits`] beyond [`crate::exec::MAX_CLBITS`].
    pub fn run(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let program = StabProgram::lower(circuit)?;
        if program.terminal {
            self.run_terminal_sequential(&program, shots)
        } else {
            self.run_per_shot_sequential(&program, shots)
        }
    }

    /// Runs `circuit` with one independent generator per shot, derived
    /// from `(seed, shot)` via [`derive_shot_seed`], shot ranges
    /// partitioned contiguously across workers. Results are invariant
    /// under the thread count but form a different (equally valid) sample
    /// than [`StabilizerSimulator::run`].
    ///
    /// # Errors
    ///
    /// Same as [`StabilizerSimulator::run`].
    pub fn run_batched(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let program = StabProgram::lower(circuit)?;
        if program.terminal {
            self.run_terminal_batched(&program, shots)
        } else {
            self.run_per_shot_batched(&program, shots)
        }
    }

    /// Evolves the full gate list once, then samples the support per shot.
    fn run_terminal_sequential(
        &mut self,
        program: &StabProgram,
        shots: u64,
    ) -> Result<Counts, SimError> {
        let sampler = TerminalSampler::prepare(program);
        let mut counts = Counts::new(program.num_clbits);
        for _ in 0..shots {
            counts.record(sampler.sample(&mut self.rng), 1);
        }
        Ok(counts)
    }

    fn run_terminal_batched(
        &mut self,
        program: &StabProgram,
        shots: u64,
    ) -> Result<Counts, SimError> {
        let sampler = TerminalSampler::prepare(program);
        let seed = self.seed;
        let worker = |range: std::ops::Range<u64>| {
            let mut counts = Counts::new(program.num_clbits);
            for shot in range {
                let mut rng = StdRng::seed_from_u64(derive_shot_seed(seed, shot));
                counts.record(sampler.sample(&mut rng), 1);
            }
            counts
        };
        Ok(self.fan_out(shots, program.num_clbits, worker))
    }

    /// Per-shot tableau replay for mid-circuit measurement/reset, with
    /// the unitary prefix evolved once and cloned into each shot (it
    /// consumes no randomness, so caching preserves the draw order).
    fn run_per_shot_sequential(
        &mut self,
        program: &StabProgram,
        shots: u64,
    ) -> Result<Counts, SimError> {
        let prefix = evolve_prefix(program);
        let mut counts = Counts::new(program.num_clbits);
        let mut tableau = prefix.clone();
        for _ in 0..shots {
            tableau.clone_from(&prefix);
            let key = replay_suffix(&mut tableau, program, &mut self.rng);
            counts.record(key, 1);
        }
        Ok(counts)
    }

    fn run_per_shot_batched(
        &mut self,
        program: &StabProgram,
        shots: u64,
    ) -> Result<Counts, SimError> {
        let prefix = evolve_prefix(program);
        let seed = self.seed;
        let worker = |range: std::ops::Range<u64>| {
            let mut counts = Counts::new(program.num_clbits);
            let mut tableau = prefix.clone();
            for shot in range {
                tableau.clone_from(&prefix);
                let mut rng = StdRng::seed_from_u64(derive_shot_seed(seed, shot));
                let key = replay_suffix(&mut tableau, program, &mut rng);
                counts.record(key, 1);
            }
            counts
        };
        Ok(self.fan_out(shots, program.num_clbits, worker))
    }

    /// Splits `shots` into contiguous per-worker ranges, runs `worker` on
    /// each, and merges the histograms (BTreeMap contents are
    /// insertion-order independent, so the merge is order-insensitive).
    fn fan_out<F>(&self, shots: u64, num_clbits: usize, worker: F) -> Counts
    where
        F: Fn(std::ops::Range<u64>) -> Counts + Sync,
    {
        let workers = self.threads.min(shots.max(1) as usize).max(1);
        if workers == 1 {
            return worker(0..shots);
        }
        let chunk = shots.div_ceil(workers as u64);
        let mut partials: Vec<Counts> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|t| {
                    let start = t * chunk;
                    let end = shots.min(start + chunk);
                    let worker = &worker;
                    s.spawn(move || worker(start..end))
                })
                .collect();
            for h in handles {
                partials.push(h.join().expect("stabilizer worker panicked"));
            }
        });
        let mut counts = Counts::new(num_clbits);
        for p in partials {
            for (key, n) in p.iter() {
                counts.record(key, n);
            }
        }
        counts
    }
}

impl Default for StabilizerSimulator {
    fn default() -> Self {
        Self::new()
    }
}

/// Evolves the leading unitary run of `program` on a fresh tableau.
fn evolve_prefix(program: &StabProgram) -> Tableau {
    let mut t = Tableau::identity(program.num_qubits);
    for op in &program.ops[..program.prefix_len] {
        if let StabOp::Gate(g) = op {
            t.apply(*g);
        }
    }
    t
}

/// Replays the post-prefix ops on one shot's tableau, returning the
/// classical key. One uniform draw per measure/reset, exactly like the
/// statevector collapse — and since a random stabilizer outcome has
/// probability exactly ½, `u < 0.5` reproduces the statevector's
/// `u < p₁` decision (its `p₁` differs from `½` by at most `~2⁻⁵²`;
/// deterministic outcomes agree exactly because Clifford interference
/// cancels amplitudes to exact zeros).
fn replay_suffix(tableau: &mut Tableau, program: &StabProgram, rng: &mut StdRng) -> u64 {
    let mut key = 0u64;
    for op in &program.ops[program.prefix_len..] {
        match op {
            StabOp::Gate(g) => tableau.apply(*g),
            StabOp::Measure { qubit, clbit } => {
                let u = rng.gen_range(0.0..1.0);
                if tableau.measure(*qubit, u < 0.5) {
                    key |= 1u64 << clbit;
                } else {
                    key &= !(1u64 << clbit);
                }
            }
            StabOp::Reset { qubit } => {
                let u = rng.gen_range(0.0..1.0);
                if tableau.measure(*qubit, u < 0.5) {
                    tableau.x_gate(*qubit);
                }
            }
        }
    }
    key
}

/// Precomputed terminal sampling state: the ordered support plus per-shot
/// key assembly data.
#[derive(Debug)]
struct TerminalSampler {
    rank: usize,
    keys: Option<TerminalKeys>,
    /// Fallback data when clbits repeat: the raw support and measures.
    support: Support,
    measures: Vec<(usize, usize)>,
}

impl TerminalSampler {
    fn prepare(program: &StabProgram) -> TerminalSampler {
        let mut t = Tableau::identity(program.num_qubits);
        for op in &program.ops {
            if let StabOp::Gate(g) = op {
                t.apply(*g);
            }
        }
        let support = Support::from_tableau(&t);
        let keys = TerminalKeys::build(&support, &program.measures);
        TerminalSampler {
            rank: support.rank(),
            keys,
            support,
            measures: program.measures.clone(),
        }
    }

    /// Draws one outcome key, consuming RNG words exactly as the
    /// statevector terminal sampler does for ranks the statevector can
    /// reach.
    ///
    /// The statevector draws `r = gen_range(0.0..total)` with
    /// `u = (bits >> 11)·2⁻⁵³` and picks the support element of ordinal
    /// `⌊u·2ᵏ⌋` (its cumulative table steps uniformly across the 2ᵏ
    /// equal-magnitude support amplitudes). For `k ≤ 53`,
    /// `⌊u·2ᵏ⌋ = bits >> (64−k)` exactly — scaling a 53-bit integer by a
    /// power of two is exact in `f64` — so one `next_u64` reproduces the
    /// statevector's pick bit-for-bit (modulo the boundary ties in the
    /// module docs). Ranks above 64 (wide registers only, outside any
    /// identity contract) consume one extra word per 64 bits.
    fn sample(&self, rng: &mut StdRng) -> u64 {
        let k = self.rank;
        let bits = rng.next_u64();
        if k == 0 {
            return self.key_of_combination(&[], 0);
        }
        if k <= 64 {
            let m = if k == 64 { bits } else { bits >> (64 - k) };
            return self.key_of_combination(&[m], k);
        }
        // Wide support: most significant 64 selector bits from the first
        // word, then one word per further 64 basis vectors.
        let mut words = vec![bits];
        let mut remaining = k - 64;
        while remaining > 0 {
            let w = rng.next_u64();
            words.push(if remaining >= 64 {
                w
            } else {
                w >> (64 - remaining)
            });
            remaining = remaining.saturating_sub(64);
        }
        self.key_of_combination(&words, k)
    }

    /// Maps selector words (most significant first; bit `k−1−i` over the
    /// concatenation selects basis vector `i`) to the outcome key.
    fn key_of_combination(&self, words: &[u64], k: usize) -> u64 {
        if let Some(keys) = &self.keys {
            let mut key = keys.base_key;
            for (i, vk) in keys.vec_keys.iter().enumerate() {
                if selector_bit(words, k, i) {
                    key ^= vk;
                }
            }
            return key;
        }
        // Duplicate clbits: materialize the support element and replay
        // the measures in program order with set/clear semantics,
        // mirroring the statevector's per-shot key assembly.
        let mut element = self.support.offset.clone();
        for (i, v) in self.support.basis.iter().enumerate() {
            if selector_bit(words, k, i) {
                element.xor_assign(v);
            }
        }
        let mut key = 0u64;
        for &(q, c) in &self.measures {
            if element.get(q) {
                key |= 1u64 << c;
            } else {
                key &= !(1u64 << c);
            }
        }
        key
    }
}

/// Bit `k−1−i` of the big-endian concatenation of selector `words`.
fn selector_bit(words: &[u64], k: usize, i: usize) -> bool {
    // Word sizes: first word holds min(k, 64) bits, subsequent words 64
    // (with the last possibly short) — matching `TerminalSampler::sample`.
    let first = k.min(64);
    if i < first {
        return words[0] & (1u64 << (first - 1 - i)) != 0;
    }
    let rest = i - first;
    let wi = 1 + rest / 64;
    let bits_in_word = if k - first - (rest / 64) * 64 >= 64 {
        64
    } else {
        k - first - (rest / 64) * 64
    };
    words[wi] & (1u64 << (bits_in_word - 1 - rest % 64)) != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StatevectorSimulator;

    fn ghz(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.measure_all();
        c
    }

    #[test]
    fn ghz_counts_match_statevector_bitwise() {
        for n in [1, 2, 3, 8, 12] {
            let c = ghz(n);
            let sv = StatevectorSimulator::with_seed(42).run(&c, 2048).unwrap();
            let st = StabilizerSimulator::with_seed(42).run(&c, 2048).unwrap();
            assert_eq!(sv, st, "GHZ-{n} counts diverged");
        }
    }

    #[test]
    fn all_generators_match_statevector() {
        let mut c = Circuit::new(4);
        c.h(0)
            .s(0)
            .cx(0, 1)
            .z(1)
            .y(2)
            .x(3)
            .sdg(0)
            .cz(1, 2)
            .swap(2, 3)
            .h(2);
        c.measure_all();
        let sv = StatevectorSimulator::with_seed(7).run(&c, 4096).unwrap();
        let st = StabilizerSimulator::with_seed(7).run(&c, 4096).unwrap();
        assert_eq!(sv, st);
    }

    #[test]
    fn midcircuit_measure_and_reset_match_statevector() {
        let mut c = Circuit::with_clbits(3, 3);
        c.h(0).cx(0, 1);
        c.measure(0, 0).unwrap();
        c.h(2);
        c.reset(1).unwrap();
        c.cx(2, 1);
        c.measure(1, 1).unwrap();
        c.measure(2, 2).unwrap();
        let sv = StatevectorSimulator::with_seed(11).run(&c, 1024).unwrap();
        let st = StabilizerSimulator::with_seed(11).run(&c, 1024).unwrap();
        assert_eq!(sv, st);
    }

    #[test]
    fn non_clifford_gate_rejected() {
        let mut c = Circuit::new(1);
        c.h(0).t(0);
        c.measure_all();
        let err = StabilizerSimulator::with_seed(1).run(&c, 16).unwrap_err();
        assert!(matches!(err, SimError::NonCliffordGate { ref gate } if gate == "t"));
        assert!(!StabilizerSimulator::supports(&c));
        assert!(StabilizerSimulator::supports(&ghz(3)));
    }

    #[test]
    fn wide_register_beyond_statevector_ceiling() {
        // 128 qubits: far past exec::MAX_QUBITS. Outcome keys stay u64,
        // so wide circuits measure a ≤64-qubit subset.
        let n = 128;
        let mut c = Circuit::with_clbits(n, 2);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.measure(0, 0).unwrap();
        c.measure(n - 1, 1).unwrap();
        let counts = StabilizerSimulator::with_seed(3).run(&c, 512).unwrap();
        assert_eq!(counts.total(), 512);
        assert_eq!(counts.iter().count(), 2);
        assert!(counts.count_str("00").unwrap() > 0);
        assert!(counts.count_str("11").unwrap() > 0);
        assert_eq!(
            counts.count_str("00").unwrap() + counts.count_str("11").unwrap(),
            512
        );
    }

    #[test]
    fn width_cap_enforced() {
        let c = Circuit::new(StabilizerSimulator::MAX_QUBITS + 1);
        assert!(matches!(
            StabilizerSimulator::with_seed(0).run(&c, 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn batched_is_worker_count_invariant() {
        let c = ghz(6);
        let base = StabilizerSimulator::with_seed(9)
            .with_threads(1)
            .run_batched(&c, 513)
            .unwrap();
        for threads in [2, 3, 8] {
            let other = StabilizerSimulator::with_seed(9)
                .with_threads(threads)
                .run_batched(&c, 513)
                .unwrap();
            assert_eq!(base, other, "batched counts vary with {threads} threads");
        }
    }

    #[test]
    fn sequential_stream_survives_batched_interleave() {
        let c = ghz(4);
        let mut a = StabilizerSimulator::with_seed(5);
        let r1 = a.run(&c, 100).unwrap();
        let _ = a.run_batched(&c, 64).unwrap();
        let r2 = a.run(&c, 100).unwrap();
        let mut b = StabilizerSimulator::with_seed(5);
        let s1 = b.run(&c, 100).unwrap();
        let s2 = b.run(&c, 100).unwrap();
        assert_eq!(r1, s1);
        assert_eq!(r2, s2);
    }

    #[test]
    fn deterministic_outcomes_have_no_spread() {
        // |0…0⟩ with X on alternate qubits: fully deterministic.
        let mut c = Circuit::new(5);
        c.x(0).x(2).x(4);
        c.measure_all();
        let counts = StabilizerSimulator::with_seed(1).run(&c, 256).unwrap();
        assert_eq!(counts.iter().count(), 1);
        assert_eq!(counts.count_str("10101").unwrap(), 256);
    }
}
