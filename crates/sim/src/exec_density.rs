//! Circuit + noise → density kernel-op lowering: the compiled front end of
//! the density-matrix engine.
//!
//! The interpreter in [`crate::density`] re-embedded every gate — and every
//! Kraus operator of every noise channel, *inside the per-branch loop* — to
//! a full `2ⁿ × 2ⁿ` matrix and paid two `O(8ⁿ)` dense multiplies per
//! application. [`CompiledDensityProgram::compile`] does the analysis once:
//!
//! * every gate lowers to a [`ConjugationPair`] — a left/right kernel pair
//!   over the row-major vectorization `vec(ρ)` (a `2n`-qubit state vector),
//!   so `X`/`CX` conjugations are pure index permutations and
//!   `Z`/`S`/`T`/`Rz` conjugations are `O(4ⁿ)` phase sweeps;
//! * every noise channel lowers once to a **sum** of conjugation pairs
//!   (`ρ ← Σᵢ KᵢρKᵢ†`), applied per branch with reusable term/accumulator
//!   buffers instead of per-branch re-embedding;
//! * measure/reset lower to precomputed row/column bit masks over `vec(ρ)`;
//! * the leading measurement-free run (gates *and* their noise channels —
//!   density evolution is deterministic, so the whole run is cacheable) is
//!   evolved eagerly at compile time and stored, the density analogue of
//!   [`crate::exec::CompiledProgram`]'s unitary prefix cache.
//!
//! Lowering consumes no randomness and kernel arithmetic matches the dense
//! walker up to the sign of zero, so compiled runs are bit-for-bit
//! seed-compatible with the legacy interpreter — the contract
//! `tests/density_identity.rs` enforces (see DESIGN.md).

use crate::density::build_channel;
use crate::noise::{KrausChannel, NoiseModel};
use crate::SimError;
use qra_circuit::kernel::{ConjugationPair, KernelClass, PairScratch};
use qra_circuit::{Circuit, Gate, Operation};
use qra_math::C64;

/// Maximum width of the compiled density engine. `vec(ρ)` holds `4ⁿ`
/// amplitudes (256 MiB at `n = 12`); the former dense-superoperator walker
/// capped at 10, sized for its `O(8ⁿ)` multiplies.
///
/// Deliberately separate from (and lower than) the state-vector ceiling
/// [`crate::exec::MAX_QUBITS`]: a density matrix squares the register, so
/// `n` density qubits cost as much memory as `2n` state-vector qubits.
pub const MAX_QUBITS: usize = 12;

/// Maximum number of classical bits (outcome keys are `u64`).
pub const MAX_CLBITS: usize = 64;

/// The `vec(ρ)` index bits (row **and** column side) addressed by an op on
/// `qubits`: qubit `q` owns row bit `2n−1−q` and column bit `n−1−q`, the
/// same convention as the lowered `Measure`/`Reset` masks.
fn touched_bits(qubits: &[usize], n: usize) -> usize {
    qubits.iter().fold(0usize, |m, &q| {
        m | (1 << (2 * n - 1 - q)) | (1 << (n - 1 - q))
    })
}

/// One lowered instruction of a [`CompiledDensityProgram`].
#[derive(Debug, Clone)]
pub(crate) enum DensityOp {
    /// Apply one conjugation `ρ ← AρA†` in place. `touched` holds the
    /// row/column vectorization index bits the op addresses, so the branch
    /// walker can invalidate support-pattern bits it may repopulate.
    Conjugate {
        pair: ConjugationPair,
        touched: usize,
    },
    /// Apply a Kraus channel `ρ ← Σᵢ KᵢρKᵢ†` (operators in channel order).
    Channel {
        pairs: Vec<ConjugationPair>,
        touched: usize,
    },
    /// Branch on the qubit whose row/column vectorization bits are
    /// `row_mask`/`col_mask`; record into `clbit_bit` of the outcome key
    /// (readout confusion applied from the program's baked-in rates).
    Measure {
        row_mask: usize,
        col_mask: usize,
        clbit_bit: u64,
    },
    /// Project the qubit and fold the `|1⟩` branch back through `flip`
    /// (a lowered X conjugation).
    Reset {
        row_mask: usize,
        col_mask: usize,
        flip: ConjugationPair,
    },
}

/// A [`Circuit`] + [`NoiseModel`] lowered for repeated exact density
/// evolution.
///
/// Compilation is RNG-free; the same program can be executed any number of
/// times (e.g. once per campaign cell) and by construction produces
/// outcomes bit-for-bit identical to interpreting the original circuit
/// with the same seed.
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::{CompiledDensityProgram, DensityMatrixSimulator, DevicePreset};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// bell.measure_all();
/// let noise = DevicePreset::melbourne_like();
/// let program = CompiledDensityProgram::compile(&bell, &noise)?;
/// let sim = DensityMatrixSimulator::with_noise(noise);
/// let counts = sim.run_compiled(&program, 1024, 7)?;
/// assert_eq!(counts.total(), 1024);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CompiledDensityProgram {
    num_qubits: usize,
    num_clbits: usize,
    ops: Vec<DensityOp>,
    /// `vec(ρ)` after the leading measurement-free run, evolved eagerly at
    /// compile time.
    prefix: Vec<C64>,
    prefix_len: usize,
    readout_p01: f64,
    readout_p10: f64,
}

impl CompiledDensityProgram {
    /// Lowers `circuit` with `noise` into density kernel ops and evolves
    /// the measurement-free prefix.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond [`MAX_QUBITS`];
    /// * [`SimError::TooManyClbits`] beyond [`MAX_CLBITS`];
    /// * [`SimError::InvalidNoiseParameter`] for a bad noise model.
    pub fn compile(
        circuit: &Circuit,
        noise: &NoiseModel,
    ) -> Result<CompiledDensityProgram, SimError> {
        noise.validate()?;
        let n = circuit.num_qubits();
        if n > MAX_QUBITS {
            return Err(SimError::TooManyQubits {
                num_qubits: n,
                max: MAX_QUBITS,
            });
        }
        if circuit.num_clbits() > MAX_CLBITS {
            return Err(SimError::TooManyClbits {
                num_clbits: circuit.num_clbits(),
                max: MAX_CLBITS,
            });
        }

        // Lower each noise channel's Kraus set once; reused for every gate.
        let depol1 = lower_channel(build_channel(
            noise.depol_1q,
            KrausChannel::depolarizing_1q,
        )?);
        let depol2 = lower_channel(build_channel(
            noise.depol_2q,
            KrausChannel::depolarizing_2q,
        )?);
        let damp1 = lower_channel(build_channel(
            noise.damping_1q,
            KrausChannel::amplitude_damping,
        )?);
        let damp2 = lower_channel(build_channel(
            noise.damping_2q,
            KrausChannel::amplitude_damping,
        )?);
        let deph = lower_channel(build_channel(noise.dephasing, KrausChannel::phase_damping)?);

        let mut ops = Vec::new();
        let push_channel =
            |ops: &mut Vec<DensityOp>, ch: &Option<Vec<qra_math::CMatrix>>, qubits: &[usize]| {
                if let Some(operators) = ch {
                    ops.push(DensityOp::Channel {
                        pairs: operators
                            .iter()
                            .map(|k| ConjugationPair::lower(k, qubits, n))
                            .collect(),
                        touched: touched_bits(qubits, n),
                    });
                }
            };
        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Barrier => {}
                Operation::Gate(g) => {
                    ops.push(DensityOp::Conjugate {
                        pair: ConjugationPair::for_gate(g, &inst.qubits, n),
                        touched: touched_bits(&inst.qubits, n),
                    });
                    // Gate-dependent noise, mirroring the interpreter's site
                    // order exactly: gates wider than two qubits get pairwise
                    // two-qubit depolarizing on consecutive qubit pairs.
                    if inst.qubits.len() == 1 {
                        push_channel(&mut ops, &depol1, &[inst.qubits[0]]);
                        push_channel(&mut ops, &damp1, &[inst.qubits[0]]);
                        push_channel(&mut ops, &deph, &[inst.qubits[0]]);
                    } else {
                        for pair in inst.qubits.windows(2) {
                            push_channel(&mut ops, &depol2, pair);
                        }
                        for &q in &inst.qubits {
                            push_channel(&mut ops, &damp2, &[q]);
                            push_channel(&mut ops, &deph, &[q]);
                        }
                    }
                }
                Operation::Measure => {
                    let q = inst.qubits[0];
                    ops.push(DensityOp::Measure {
                        row_mask: 1usize << (2 * n - 1 - q),
                        col_mask: 1usize << (n - 1 - q),
                        clbit_bit: 1u64 << inst.clbits[0],
                    });
                }
                Operation::Reset => {
                    let q = inst.qubits[0];
                    ops.push(DensityOp::Reset {
                        row_mask: 1usize << (2 * n - 1 - q),
                        col_mask: 1usize << (n - 1 - q),
                        flip: ConjugationPair::for_gate(&Gate::X, &[q], n),
                    });
                }
            }
        }
        let prefix_len = ops
            .iter()
            .position(|op| matches!(op, DensityOp::Measure { .. } | DensityOp::Reset { .. }))
            .unwrap_or(ops.len());

        // Evolve vec(|0…0⟩⟨0…0|) through the prefix once. Density evolution
        // is deterministic, so every later execution can start here.
        let dd = 1usize << (2 * n);
        let mut prefix = vec![C64::zero(); dd];
        prefix[0] = C64::one();
        let mut scratch = PairScratch::default();
        let mut term = Vec::new();
        let mut acc = Vec::new();
        for op in &ops[..prefix_len] {
            match op {
                DensityOp::Conjugate { pair, .. } => pair.apply(&mut prefix, &mut scratch),
                DensityOp::Channel { pairs, .. } => {
                    // Compile-time prefix evolution stays single-threaded:
                    // it runs once per program, and lowering has no thread
                    // configuration (results are identical either way).
                    apply_channel_vec(&mut prefix, pairs, &mut term, &mut acc, &mut scratch, 1);
                }
                DensityOp::Measure { .. } | DensityOp::Reset { .. } => unreachable!(),
            }
        }

        Ok(CompiledDensityProgram {
            num_qubits: n,
            num_clbits: circuit.num_clbits(),
            ops,
            prefix,
            prefix_len,
            readout_p01: noise.readout_p01,
            readout_p10: noise.readout_p10,
        })
    }

    /// Register width in qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Classical register width in bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Density-matrix dimension (`2ⁿ`; `vec(ρ)` holds `dim²` entries).
    pub fn dim(&self) -> usize {
        1usize << self.num_qubits
    }

    /// Number of lowered ops (gates + channels + measures + resets).
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Length of the leading measurement-free run cached at compile time.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    /// Histogram of conjugation kernel classes (gates and Kraus operators),
    /// for perf introspection.
    pub fn class_histogram(&self) -> Vec<(KernelClass, usize)> {
        let mut counts = [0usize; 5];
        let mut bump = |class: KernelClass| {
            counts[match class {
                KernelClass::Single => 0,
                KernelClass::Diagonal => 1,
                KernelClass::Permutation => 2,
                KernelClass::Generic => 3,
                KernelClass::Fused => 4,
            }] += 1;
        };
        for op in &self.ops {
            match op {
                DensityOp::Conjugate { pair, .. } => bump(pair.class()),
                DensityOp::Channel { pairs, .. } => pairs.iter().for_each(|p| bump(p.class())),
                DensityOp::Measure { .. } => {}
                DensityOp::Reset { flip, .. } => bump(flip.class()),
            }
        }
        [
            KernelClass::Single,
            KernelClass::Diagonal,
            KernelClass::Permutation,
            KernelClass::Generic,
            KernelClass::Fused,
        ]
        .into_iter()
        .zip(counts)
        .filter(|&(_, c)| c > 0)
        .collect()
    }

    pub(crate) fn ops(&self) -> &[DensityOp] {
        &self.ops
    }

    pub(crate) fn prefix(&self) -> &[C64] {
        &self.prefix
    }

    pub(crate) fn readout_p01(&self) -> f64 {
        self.readout_p01
    }

    pub(crate) fn readout_p10(&self) -> f64 {
        self.readout_p10
    }
}

/// Borrows a built channel's Kraus operators for lowering, preserving
/// `None` for zero-probability channels (no op emitted, like the
/// interpreter's `apply_channel_opt` no-op path).
fn lower_channel(channel: Option<KrausChannel>) -> Option<Vec<qra_math::CMatrix>> {
    channel.map(|ch| ch.operators().to_vec())
}

/// Applies a lowered Kraus channel to `vec_rho` in place:
/// `ρ ← Σᵢ KᵢρKᵢ†` with the terms accumulated in operator order, matching
/// the interpreter's `acc = 0 + K₀ρK₀† + K₁ρK₁† + …` fold bit-for-bit
/// (up to the sign of zero). `term`/`acc` are reusable buffers grown on
/// demand.
pub(crate) fn apply_channel_vec(
    vec_rho: &mut Vec<C64>,
    pairs: &[ConjugationPair],
    term: &mut Vec<C64>,
    acc: &mut Vec<C64>,
    scratch: &mut PairScratch,
    threads: usize,
) {
    let dd = vec_rho.len();
    term.resize(dd, C64::zero());
    acc.clear();
    acc.resize(dd, C64::zero());
    for pair in pairs {
        term.copy_from_slice(vec_rho);
        pair.apply_threaded(term, scratch, threads);
        for (a, t) in acc.iter_mut().zip(term.iter()) {
            *a += *t;
        }
    }
    std::mem::swap(vec_rho, acc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::DevicePreset;

    #[test]
    fn ideal_circuit_lowers_to_conjugations_only() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let p = CompiledDensityProgram::compile(&c, &NoiseModel::ideal()).unwrap();
        assert_eq!(p.op_count(), 4); // 2 gates + 2 measures, no channels
        assert_eq!(p.prefix_len(), 2);
        assert_eq!(p.dim(), 4);
        // Prefix holds the Bell state's vec(ρ): corners at 0.5.
        let v = p.prefix();
        assert!((v[0].re - 0.5).abs() < 1e-12);
        assert!((v[15].re - 0.5).abs() < 1e-12);
    }

    #[test]
    fn noisy_gates_emit_channel_ops_in_site_order() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let noise = DevicePreset::melbourne_like();
        let p = CompiledDensityProgram::compile(&c, &noise).unwrap();
        // h: gate + depol1 + damp1 + deph; cx: gate + depol2 + 2×(damp2, deph).
        assert_eq!(p.op_count(), 4 + 6);
        let kinds: Vec<bool> = p
            .ops()
            .iter()
            .map(|op| matches!(op, DensityOp::Channel { .. }))
            .collect();
        assert_eq!(
            kinds,
            vec![false, true, true, true, false, true, true, true, true, true]
        );
        // Everything is measurement-free: the whole program is prefix.
        assert_eq!(p.prefix_len(), p.op_count());
        // Trace preserved through the eager prefix evolution.
        let d = p.dim();
        let tr: f64 = (0..d).map(|i| p.prefix()[i * (d + 1)].re).sum();
        assert!((tr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn width_and_clbit_limits_enforced() {
        assert!(matches!(
            CompiledDensityProgram::compile(&Circuit::new(13), &NoiseModel::ideal()),
            Err(SimError::TooManyQubits {
                num_qubits: 13,
                max: 12
            })
        ));
        let mut bad = NoiseModel::ideal();
        bad.depol_1q = 2.0;
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(CompiledDensityProgram::compile(&c, &bad).is_err());
    }

    #[test]
    fn class_histogram_counts_gates_and_kraus_operators() {
        let mut c = Circuit::new(2);
        c.x(0).rz(0.3, 1);
        let mut noise = NoiseModel::ideal();
        noise.dephasing = 0.01; // 2 Kraus operators per 1q gate, all diagonal
        let p = CompiledDensityProgram::compile(&c, &noise).unwrap();
        let hist = p.class_histogram();
        assert!(hist.contains(&(KernelClass::Permutation, 1))); // X
        assert!(hist.contains(&(KernelClass::Diagonal, 1 + 4))); // Rz + 2×K
    }
}
