//! Quantum circuit simulators for the `qra` assertion library.
//!
//! Two exact back-ends replace the paper's Qiskit Aer usage:
//!
//! * [`StatevectorSimulator`] — noise-free shot sampling (the paper's
//!   "qasm simulator" runs with 8192 shots);
//! * [`DensityMatrixSimulator`] — exact mixed-state evolution with an
//!   optional [`NoiseModel`], substituting for the 15-qubit
//!   *ibmq-melbourne* device used in §IX-B. Circuits lower once through
//!   [`CompiledDensityProgram`] into kernel conjugation pairs over the
//!   vectorized density matrix (structured gates cost `O(4ⁿ)` instead of
//!   the dense walker's `O(8ⁿ)`). The
//!   [`noise::DevicePreset::melbourne_like`] preset carries depolarizing,
//!   amplitude/phase damping and readout-error calibrations chosen to land
//!   in the same error-rate regime the paper reports.
//!
//! # Example
//!
//! ```rust
//! use qra_circuit::Circuit;
//! use qra_sim::StatevectorSimulator;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! bell.measure_all();
//! let counts = StatevectorSimulator::with_seed(7).run(&bell, 8192)?;
//! assert!(counts.frequency("00")? > 0.4);
//! assert!(counts.frequency("11")? > 0.4);
//! # Ok::<(), qra_sim::SimError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod counts;
pub mod density;
pub mod error;
pub mod exec;
pub mod exec_density;
pub mod noise;
pub mod stabilizer;
pub mod states;
pub mod statevector;
pub mod threads;
pub mod trajectory;

pub use cache::ProgramCache;
pub use counts::Counts;
pub use density::DensityMatrixSimulator;
pub use error::SimError;
pub use exec::CompiledProgram;
pub use exec_density::CompiledDensityProgram;
pub use noise::{DevicePreset, NoiseModel};
pub use stabilizer::StabilizerSimulator;
pub use statevector::StatevectorSimulator;
pub use trajectory::TrajectorySimulator;
