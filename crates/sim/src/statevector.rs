//! Noise-free state-vector simulation with shot sampling.
//!
//! [`StatevectorSimulator::run`] lowers the circuit through
//! [`CompiledProgram::compile`] and executes kernel ops; the original
//! instruction-walking interpreter survives as
//! [`StatevectorSimulator::run_interpreted`] — the reference implementation
//! the compiled engine is tested bit-for-bit against
//! (`tests/compiled_identity.rs`) and benchmarked over
//! (`qra-bench/src/bin/sim_throughput.rs`).

use crate::exec::{CompiledProgram, ExecOp, MAX_CLBITS, MAX_QUBITS};
use crate::threads::resolve_threads;
use crate::{Counts, SimError};
use qra_circuit::circuit::apply_gate_inplace;
use qra_circuit::{Circuit, Operation};
use qra_math::{CVector, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest dimension for which the terminal path precomputes the full
/// outcome → classical-key table (2¹⁶ entries ≈ 512 KiB); wider registers
/// fall back to per-shot key assembly from precomputed bit shifts.
const KEY_TABLE_MAX_DIM: usize = 1 << 16;

/// An exact state-vector simulator supporting mid-circuit measurement and
/// reset via per-shot collapse, the Rust counterpart of the paper's Qiskit
/// Aer "qasm simulator".
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::StatevectorSimulator;
///
/// let mut c = Circuit::new(1);
/// c.h(0);
/// c.measure_all();
/// let counts = StatevectorSimulator::with_seed(1).run(&c, 4096)?;
/// assert!((counts.frequency("0").unwrap() - 0.5).abs() < 0.05);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct StatevectorSimulator {
    rng: StdRng,
    threads: usize,
}

impl Default for StatevectorSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl StatevectorSimulator {
    /// Creates a simulator seeded from the OS entropy source.
    pub fn new() -> Self {
        Self {
            rng: StdRng::from_entropy(),
            threads: 1,
        }
    }

    /// Creates a simulator with a fixed seed (reproducible sampling).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            threads: 1,
        }
    }

    /// Sets the amplitude-level worker thread count for kernel sweeps
    /// (`0` = one per available core). Threading only re-partitions the
    /// amplitude loops — it touches no RNG and changes no arithmetic — so
    /// runs are bit-for-bit identical at any thread count (the contract
    /// `tests/compiled_identity.rs` enforces).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads).0;
        self
    }

    /// The resolved amplitude-level thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Evolves `|0…0⟩` through the circuit's unitary part and returns the
    /// final state.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond 24 qubits;
    /// * [`SimError::Circuit`] when the circuit contains measurements or
    ///   resets (use [`StatevectorSimulator::run`] for those).
    pub fn evolve(&self, circuit: &Circuit) -> Result<CVector, SimError> {
        check_width(circuit)?;
        Ok(circuit.statevector()?)
    }

    /// Evolves `|0…0⟩` through a compiled program's cached unitary prefix
    /// (the leading gate run; for a measurement-free circuit that is the
    /// whole program) using this simulator's thread count. Consumes no
    /// randomness and is bit-for-bit identical at any thread count.
    pub fn evolve_compiled(&self, program: &CompiledProgram) -> CVector {
        let mut state = CVector::basis_state(program.dim(), 0);
        let mut scratch = Vec::new();
        for op in &program.ops()[..program.prefix_len()] {
            if let ExecOp::Apply(k) = op {
                k.apply_threaded(state.as_mut_slice(), &mut scratch, self.threads);
            }
        }
        state
    }

    /// Runs the circuit for `shots` shots and histograms the classical
    /// outcomes.
    ///
    /// The circuit is lowered once ([`CompiledProgram::compile`]) and the
    /// compiled program executed; callers amortizing one circuit over many
    /// runs should compile themselves and use
    /// [`StatevectorSimulator::run_compiled`].
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond 24 qubits;
    /// * [`SimError::Circuit`] for invalid circuits.
    pub fn run(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let program = CompiledProgram::compile(circuit)?;
        self.run_compiled(&program, shots)
    }

    /// Executes a pre-lowered program for `shots` shots.
    ///
    /// Seed-compatible with [`StatevectorSimulator::run_interpreted`]: the
    /// same seed yields bit-for-bit identical [`Counts`].
    ///
    /// # Errors
    ///
    /// * [`SimError::InvalidProbability`] if the state degenerates (e.g. a
    ///   non-unitary custom gate).
    pub fn run_compiled(
        &mut self,
        program: &CompiledProgram,
        shots: u64,
    ) -> Result<Counts, SimError> {
        if program.is_terminal() {
            self.run_compiled_terminal(program, shots)
        } else {
            self.run_compiled_per_shot(program, shots)
        }
    }

    /// All measurements terminal: evolve once, sample the distribution.
    fn run_compiled_terminal(
        &mut self,
        program: &CompiledProgram,
        shots: u64,
    ) -> Result<Counts, SimError> {
        let n = program.num_qubits();
        let dim = program.dim();
        let mut state = CVector::basis_state(dim, 0);
        let mut scratch = Vec::new();
        for op in program.ops() {
            if let ExecOp::Apply(k) = op {
                k.apply_threaded(state.as_mut_slice(), &mut scratch, self.threads);
            }
        }
        // In-place cumulative table: cum[i] = p₀ + … + pᵢ with the same
        // left-to-right association as `iter().sum()`, so `cum[dim-1]` is
        // bit-identical to the interpreter's total.
        let mut cum = state.probabilities();
        for i in 1..dim {
            cum[i] += cum[i - 1];
        }
        let total = cum[dim - 1].max(f64::MIN_POSITIVE);
        let mut counts = Counts::new(program.num_clbits());
        if dim <= KEY_TABLE_MAX_DIM {
            // Precompute outcome → key once, histogram outcome indices,
            // then bulk-record (BTreeMap contents are insertion-order
            // independent, so Counts stay byte-identical).
            let key_table = build_key_table(program.measures(), n, dim);
            let mut hist = vec![0u64; dim];
            for _ in 0..shots {
                hist[sample_cumulative(&cum, total, &mut self.rng)] += 1;
            }
            for (i, &h) in hist.iter().enumerate() {
                if h > 0 {
                    counts.record(key_table[i], h);
                }
            }
        } else {
            // Wide registers: avoid the 2ⁿ table, assemble keys per shot
            // from precomputed (shift, clbit-bit) pairs.
            let shifts: Vec<(usize, u64)> = program
                .measures()
                .iter()
                .map(|&(q, c)| (n - 1 - q, 1u64 << c))
                .collect();
            for _ in 0..shots {
                let outcome = sample_cumulative(&cum, total, &mut self.rng);
                let mut key = 0u64;
                for &(shift, bit) in &shifts {
                    if (outcome >> shift) & 1 == 1 {
                        key |= bit;
                    }
                }
                counts.record(key, 1);
            }
        }
        Ok(counts)
    }

    /// Mid-circuit measurement/reset: per-shot replay with collapse, with
    /// the unitary prefix evolved once and cloned into each shot.
    fn run_compiled_per_shot(
        &mut self,
        program: &CompiledProgram,
        shots: u64,
    ) -> Result<Counts, SimError> {
        let dim = program.dim();
        let mut scratch = Vec::new();
        // Evolve the leading unitary run once; it consumes no randomness,
        // so caching it preserves the per-shot RNG draw order exactly.
        let mut prefix = CVector::basis_state(dim, 0);
        for op in &program.ops()[..program.prefix_len()] {
            if let ExecOp::Apply(k) = op {
                k.apply_threaded(prefix.as_mut_slice(), &mut scratch, self.threads);
            }
        }
        let suffix = &program.ops()[program.prefix_len()..];
        let mut counts = Counts::new(program.num_clbits());
        let mut state = prefix.clone();
        for _ in 0..shots {
            state.as_mut_slice().copy_from_slice(prefix.as_slice());
            let mut key = 0u64;
            for op in suffix {
                match op {
                    ExecOp::Apply(k) => {
                        k.apply_threaded(state.as_mut_slice(), &mut scratch, self.threads)
                    }
                    ExecOp::Measure { mask, clbit_bit } => {
                        if collapse_mask(&mut state, *mask, &mut self.rng)? == 1 {
                            key |= clbit_bit;
                        } else {
                            key &= !clbit_bit;
                        }
                    }
                    ExecOp::Reset { mask, flip } => {
                        if collapse_mask(&mut state, *mask, &mut self.rng)? == 1 {
                            flip.apply_threaded(state.as_mut_slice(), &mut scratch, self.threads);
                        }
                    }
                }
            }
            counts.record(key, 1);
        }
        Ok(counts)
    }

    /// Runs the circuit through the original instruction-walking
    /// interpreter. Kept as the reference implementation for the
    /// compiled-vs-interpreter identity tests and throughput baselines;
    /// same seed ⇒ same [`Counts`] as [`StatevectorSimulator::run`].
    ///
    /// # Errors
    ///
    /// As for [`StatevectorSimulator::run`].
    pub fn run_interpreted(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        check_width(circuit)?;
        if measurements_are_terminal(circuit) {
            self.run_terminal(circuit, shots)
        } else {
            self.run_per_shot(circuit, shots)
        }
    }

    fn run_terminal(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mut state = CVector::basis_state(dim, 0);
        let mut measures: Vec<(usize, usize)> = Vec::new();
        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Gate(g) => {
                    apply_gate_inplace(&mut state, &g.matrix(), &inst.qubits, n);
                }
                Operation::Barrier => {}
                Operation::Measure => measures.push((inst.qubits[0], inst.clbits[0])),
                Operation::Reset => {
                    // Terminal-measurement fast path never sees resets
                    // (they are "gates touching qubits"), handled per-shot.
                    unreachable!("reset routed to per-shot path");
                }
            }
        }
        let probs = state.probabilities();
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let outcome = sample_index(&probs, &mut self.rng);
            let mut key = 0u64;
            for &(q, c) in &measures {
                if (outcome >> (n - 1 - q)) & 1 == 1 {
                    key |= 1 << c;
                }
            }
            counts.record(key, 1);
        }
        Ok(counts)
    }

    fn run_per_shot(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let mut state = CVector::basis_state(dim, 0);
            let mut key = 0u64;
            for inst in circuit.instructions() {
                match &inst.operation {
                    Operation::Gate(g) => {
                        apply_gate_inplace(&mut state, &g.matrix(), &inst.qubits, n);
                    }
                    Operation::Barrier => {}
                    Operation::Measure => {
                        let q = inst.qubits[0];
                        let c = inst.clbits[0];
                        let bit = collapse(&mut state, q, n, &mut self.rng)?;
                        if bit == 1 {
                            key |= 1 << c;
                        } else {
                            key &= !(1 << c);
                        }
                    }
                    Operation::Reset => {
                        let q = inst.qubits[0];
                        let bit = collapse(&mut state, q, n, &mut self.rng)?;
                        if bit == 1 {
                            apply_gate_inplace(&mut state, &qra_circuit::Gate::X.matrix(), &[q], n);
                        }
                    }
                }
            }
            counts.record(key, 1);
        }
        Ok(counts)
    }
}

fn check_width(circuit: &Circuit) -> Result<(), SimError> {
    if circuit.num_qubits() > MAX_QUBITS {
        return Err(SimError::TooManyQubits {
            num_qubits: circuit.num_qubits(),
            max: MAX_QUBITS,
        });
    }
    if circuit.num_clbits() > MAX_CLBITS {
        return Err(SimError::TooManyClbits {
            num_clbits: circuit.num_clbits(),
            max: MAX_CLBITS,
        });
    }
    Ok(())
}

/// Returns `true` when no gate or reset acts on any qubit after it has been
/// measured (so sampling the final distribution once is exact).
fn measurements_are_terminal(circuit: &Circuit) -> bool {
    // Measured-qubit set as a bitmask (width ≤ 24 fits u32) instead of the
    // former O(m²) Vec::contains scans.
    let mut measured = 0u32;
    for inst in circuit.instructions() {
        match &inst.operation {
            Operation::Measure => {
                let bit = 1u32 << inst.qubits[0];
                if measured & bit != 0 {
                    return false; // double measurement needs collapse order
                }
                measured |= bit;
            }
            Operation::Reset => return false,
            Operation::Gate(_) => {
                if inst.qubits.iter().any(|&q| measured & (1 << q) != 0) {
                    return false;
                }
            }
            Operation::Barrier => {}
        }
    }
    true
}

/// Precomputes the classical key for every basis outcome.
fn build_key_table(measures: &[(usize, usize)], n: usize, dim: usize) -> Vec<u64> {
    let shifts: Vec<(usize, u64)> = measures
        .iter()
        .map(|&(q, c)| (n - 1 - q, 1u64 << c))
        .collect();
    (0..dim)
        .map(|outcome| {
            let mut key = 0u64;
            for &(shift, bit) in &shifts {
                if (outcome >> shift) & 1 == 1 {
                    key |= bit;
                }
            }
            key
        })
        .collect()
}

/// Samples an index from a cumulative probability table in O(log dim):
/// the first `i` with `r < cum[i]`, matching the linear scan's semantics.
/// Shared with the density back-end's shot sampler.
pub(crate) fn sample_cumulative(cum: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let r = rng.gen_range(0.0..total);
    cum.partition_point(|&c| c <= r).min(cum.len() - 1)
}

/// Samples an index from an (unnormalised-tolerant) probability table.
fn sample_index(probs: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = probs.iter().sum();
    let mut r = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, &p) in probs.iter().enumerate() {
        if r < p {
            return i;
        }
        r -= p;
    }
    probs.len() - 1
}

/// Projectively measures the qubit selected by `mask`, collapsing the
/// state; returns the bit. Shared with the trajectory back-end.
pub(crate) fn collapse_mask(
    state: &mut CVector,
    mask: usize,
    rng: &mut StdRng,
) -> Result<u8, SimError> {
    let mut p1 = 0.0;
    for (i, amp) in state.iter().enumerate() {
        if i & mask != 0 {
            p1 += amp.norm_sqr();
        }
    }
    if !(0.0..=1.0 + 1e-9).contains(&p1) {
        return Err(SimError::InvalidProbability { value: p1 });
    }
    let outcome = if rng.gen_range(0.0..1.0) < p1 { 1u8 } else { 0 };
    let keep_one = outcome == 1;
    let norm = if keep_one {
        p1.sqrt()
    } else {
        (1.0 - p1).sqrt()
    };
    let scale = C64::from(1.0 / norm.max(f64::MIN_POSITIVE));
    for i in 0..state.len() {
        let is_one = i & mask != 0;
        if is_one == keep_one {
            state[i] *= scale;
        } else {
            state[i] = C64::zero();
        }
    }
    Ok(outcome)
}

/// Projectively measures `qubit`, collapsing the state; returns the bit.
fn collapse(state: &mut CVector, qubit: usize, n: usize, rng: &mut StdRng) -> Result<u8, SimError> {
    collapse_mask(state, 1usize << (n - 1 - qubit), rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_counts_split_evenly() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let counts = StatevectorSimulator::with_seed(42).run(&c, 8192).unwrap();
        assert!((counts.frequency("00").unwrap() - 0.5).abs() < 0.03);
        assert!((counts.frequency("11").unwrap() - 0.5).abs() < 0.03);
        assert_eq!(counts.count_str("01").unwrap(), 0);
        assert_eq!(counts.count_str("10").unwrap(), 0);
    }

    #[test]
    fn deterministic_outcome() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.measure_all();
        let counts = StatevectorSimulator::with_seed(1).run(&c, 100).unwrap();
        assert_eq!(counts.count_str("10").unwrap(), 100);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_all();
        let a = StatevectorSimulator::with_seed(5).run(&c, 1000).unwrap();
        let b = StatevectorSimulator::with_seed(5).run(&c, 1000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mid_circuit_measurement_collapses() {
        // Measure |+⟩, then apply H again: outcomes of second measurement
        // must be 50/50 regardless of the first (collapse happened).
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.h(0);
        c.measure(0, 1).unwrap();
        let counts = StatevectorSimulator::with_seed(9).run(&c, 4000).unwrap();
        // All four outcomes appear.
        for bits in ["00", "01", "10", "11"] {
            assert!(
                counts.frequency(bits).unwrap() > 0.15,
                "missing outcome {bits}"
            );
        }
    }

    #[test]
    fn repeated_measurement_is_consistent() {
        // Measuring the same qubit twice must agree shot-by-shot.
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.measure(0, 1).unwrap();
        let counts = StatevectorSimulator::with_seed(2).run(&c, 2000).unwrap();
        assert_eq!(counts.count_str("01").unwrap(), 0);
        assert_eq!(counts.count_str("10").unwrap(), 0);
        assert!(counts.count_str("00").unwrap() > 0);
        assert!(counts.count_str("11").unwrap() > 0);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0);
        c.reset(0).unwrap();
        c.measure(0, 0).unwrap();
        let counts = StatevectorSimulator::with_seed(3).run(&c, 500).unwrap();
        assert_eq!(counts.count_str("0").unwrap(), 500);
    }

    #[test]
    fn ghz_distribution() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c.measure_all();
        let counts = StatevectorSimulator::with_seed(10).run(&c, 8192).unwrap();
        assert!((counts.frequency("000").unwrap() - 0.5).abs() < 0.03);
        assert!((counts.frequency("111").unwrap() - 0.5).abs() < 0.03);
    }

    #[test]
    fn evolve_rejects_measurement() {
        let mut c = Circuit::with_clbits(1, 1);
        c.measure(0, 0).unwrap();
        assert!(StatevectorSimulator::new().evolve(&c).is_err());
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let c = Circuit::new(25);
        assert!(matches!(
            StatevectorSimulator::new().evolve(&c),
            Err(SimError::TooManyQubits { .. })
        ));
        assert!(matches!(
            StatevectorSimulator::new().run(&c, 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn partial_measurement_marginalizes() {
        // Bell pair, measure only qubit 0.
        let mut c = Circuit::with_clbits(2, 1);
        c.h(0).cx(0, 1);
        c.measure(0, 0).unwrap();
        let counts = StatevectorSimulator::with_seed(8).run(&c, 4000).unwrap();
        assert!((counts.frequency("0").unwrap() - 0.5).abs() < 0.05);
    }

    #[test]
    fn compiled_matches_interpreter_terminal() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).t(2).s(1);
        c.measure_all();
        let fast = StatevectorSimulator::with_seed(77).run(&c, 4096).unwrap();
        let slow = StatevectorSimulator::with_seed(77)
            .run_interpreted(&c, 4096)
            .unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn compiled_matches_interpreter_per_shot() {
        let mut c = Circuit::with_clbits(2, 3);
        c.h(0).cx(0, 1);
        c.measure(0, 0).unwrap();
        c.h(1);
        c.measure(1, 1).unwrap();
        c.reset(0).unwrap();
        c.h(0);
        c.measure(0, 2).unwrap();
        let fast = StatevectorSimulator::with_seed(13).run(&c, 2048).unwrap();
        let slow = StatevectorSimulator::with_seed(13)
            .run_interpreted(&c, 2048)
            .unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn run_compiled_reusable_across_runs() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let program = CompiledProgram::compile(&c).unwrap();
        let a = StatevectorSimulator::with_seed(4)
            .run_compiled(&program, 512)
            .unwrap();
        let b = StatevectorSimulator::with_seed(4).run(&c, 512).unwrap();
        assert_eq!(a, b);
    }
}
