//! Noise-free state-vector simulation with shot sampling.

use crate::{Counts, SimError};
use qra_circuit::circuit::apply_gate_inplace;
use qra_circuit::{Circuit, Operation};
use qra_math::{CVector, C64};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum supported width (2²⁴ amplitudes ≈ 256 MiB).
const MAX_QUBITS: usize = 24;

/// An exact state-vector simulator supporting mid-circuit measurement and
/// reset via per-shot collapse, the Rust counterpart of the paper's Qiskit
/// Aer "qasm simulator".
///
/// ```rust
/// use qra_circuit::Circuit;
/// use qra_sim::StatevectorSimulator;
///
/// let mut c = Circuit::new(1);
/// c.h(0);
/// c.measure_all();
/// let counts = StatevectorSimulator::with_seed(1).run(&c, 4096)?;
/// assert!((counts.frequency("0").unwrap() - 0.5).abs() < 0.05);
/// # Ok::<(), qra_sim::SimError>(())
/// ```
#[derive(Debug)]
pub struct StatevectorSimulator {
    rng: StdRng,
}

impl Default for StatevectorSimulator {
    fn default() -> Self {
        Self::new()
    }
}

impl StatevectorSimulator {
    /// Creates a simulator seeded from the OS entropy source.
    pub fn new() -> Self {
        Self {
            rng: StdRng::from_entropy(),
        }
    }

    /// Creates a simulator with a fixed seed (reproducible sampling).
    pub fn with_seed(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Evolves `|0…0⟩` through the circuit's unitary part and returns the
    /// final state.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond 24 qubits;
    /// * [`SimError::Circuit`] when the circuit contains measurements or
    ///   resets (use [`StatevectorSimulator::run`] for those).
    pub fn evolve(&self, circuit: &Circuit) -> Result<CVector, SimError> {
        check_width(circuit)?;
        Ok(circuit.statevector()?)
    }

    /// Runs the circuit for `shots` shots and histograms the classical
    /// outcomes.
    ///
    /// When every measurement is terminal (no gate touches a measured qubit
    /// afterwards), the final distribution is sampled directly; otherwise
    /// each shot replays the circuit with per-measurement collapse.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooManyQubits`] beyond 24 qubits;
    /// * [`SimError::Circuit`] for invalid circuits.
    pub fn run(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        check_width(circuit)?;
        if measurements_are_terminal(circuit) {
            self.run_terminal(circuit, shots)
        } else {
            self.run_per_shot(circuit, shots)
        }
    }

    fn run_terminal(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mut state = CVector::basis_state(dim, 0);
        let mut measures: Vec<(usize, usize)> = Vec::new();
        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Gate(g) => {
                    apply_gate_inplace(&mut state, &g.matrix(), &inst.qubits, n);
                }
                Operation::Barrier => {}
                Operation::Measure => measures.push((inst.qubits[0], inst.clbits[0])),
                Operation::Reset => {
                    // Terminal-measurement fast path never sees resets
                    // (they are "gates touching qubits"), handled per-shot.
                    unreachable!("reset routed to per-shot path");
                }
            }
        }
        let probs = state.probabilities();
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let outcome = sample_index(&probs, &mut self.rng);
            let mut key = 0u64;
            for &(q, c) in &measures {
                if (outcome >> (n - 1 - q)) & 1 == 1 {
                    key |= 1 << c;
                }
            }
            counts.record(key, 1);
        }
        Ok(counts)
    }

    fn run_per_shot(&mut self, circuit: &Circuit, shots: u64) -> Result<Counts, SimError> {
        let n = circuit.num_qubits();
        let dim = 1usize << n;
        let mut counts = Counts::new(circuit.num_clbits());
        for _ in 0..shots {
            let mut state = CVector::basis_state(dim, 0);
            let mut key = 0u64;
            for inst in circuit.instructions() {
                match &inst.operation {
                    Operation::Gate(g) => {
                        apply_gate_inplace(&mut state, &g.matrix(), &inst.qubits, n);
                    }
                    Operation::Barrier => {}
                    Operation::Measure => {
                        let q = inst.qubits[0];
                        let c = inst.clbits[0];
                        let bit = collapse(&mut state, q, n, &mut self.rng)?;
                        if bit == 1 {
                            key |= 1 << c;
                        } else {
                            key &= !(1 << c);
                        }
                    }
                    Operation::Reset => {
                        let q = inst.qubits[0];
                        let bit = collapse(&mut state, q, n, &mut self.rng)?;
                        if bit == 1 {
                            apply_gate_inplace(&mut state, &qra_circuit::Gate::X.matrix(), &[q], n);
                        }
                    }
                }
            }
            counts.record(key, 1);
        }
        Ok(counts)
    }
}

fn check_width(circuit: &Circuit) -> Result<(), SimError> {
    if circuit.num_qubits() > MAX_QUBITS {
        return Err(SimError::TooManyQubits {
            num_qubits: circuit.num_qubits(),
            max: MAX_QUBITS,
        });
    }
    if circuit.num_clbits() > 64 {
        return Err(SimError::TooManyClbits {
            num_clbits: circuit.num_clbits(),
            max: 64,
        });
    }
    Ok(())
}

/// Returns `true` when no gate or reset acts on any qubit after it has been
/// measured (so sampling the final distribution once is exact).
fn measurements_are_terminal(circuit: &Circuit) -> bool {
    let mut measured: Vec<usize> = Vec::new();
    for inst in circuit.instructions() {
        match &inst.operation {
            Operation::Measure => {
                if measured.contains(&inst.qubits[0]) {
                    return false; // double measurement needs collapse order
                }
                measured.push(inst.qubits[0]);
            }
            Operation::Reset => return false,
            Operation::Gate(_) => {
                if inst.qubits.iter().any(|q| measured.contains(q)) {
                    return false;
                }
            }
            Operation::Barrier => {}
        }
    }
    true
}

/// Samples an index from an (unnormalised-tolerant) probability table.
fn sample_index(probs: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = probs.iter().sum();
    let mut r = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, &p) in probs.iter().enumerate() {
        if r < p {
            return i;
        }
        r -= p;
    }
    probs.len() - 1
}

/// Projectively measures `qubit`, collapsing the state; returns the bit.
fn collapse(state: &mut CVector, qubit: usize, n: usize, rng: &mut StdRng) -> Result<u8, SimError> {
    let mask = 1usize << (n - 1 - qubit);
    let mut p1 = 0.0;
    for (i, amp) in state.iter().enumerate() {
        if i & mask != 0 {
            p1 += amp.norm_sqr();
        }
    }
    if !(0.0..=1.0 + 1e-9).contains(&p1) {
        return Err(SimError::InvalidProbability { value: p1 });
    }
    let outcome = if rng.gen_range(0.0..1.0) < p1 { 1u8 } else { 0 };
    let keep_one = outcome == 1;
    let norm = if keep_one {
        p1.sqrt()
    } else {
        (1.0 - p1).sqrt()
    };
    let scale = C64::from(1.0 / norm.max(f64::MIN_POSITIVE));
    for i in 0..state.len() {
        let is_one = i & mask != 0;
        if is_one == keep_one {
            state[i] *= scale;
        } else {
            state[i] = C64::zero();
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bell_counts_split_evenly() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.measure_all();
        let counts = StatevectorSimulator::with_seed(42).run(&c, 8192).unwrap();
        assert!((counts.frequency("00").unwrap() - 0.5).abs() < 0.03);
        assert!((counts.frequency("11").unwrap() - 0.5).abs() < 0.03);
        assert_eq!(counts.count_str("01").unwrap(), 0);
        assert_eq!(counts.count_str("10").unwrap(), 0);
    }

    #[test]
    fn deterministic_outcome() {
        let mut c = Circuit::new(2);
        c.x(0);
        c.measure_all();
        let counts = StatevectorSimulator::with_seed(1).run(&c, 100).unwrap();
        assert_eq!(counts.count_str("10").unwrap(), 100);
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_all();
        let a = StatevectorSimulator::with_seed(5).run(&c, 1000).unwrap();
        let b = StatevectorSimulator::with_seed(5).run(&c, 1000).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mid_circuit_measurement_collapses() {
        // Measure |+⟩, then apply H again: outcomes of second measurement
        // must be 50/50 regardless of the first (collapse happened).
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.h(0);
        c.measure(0, 1).unwrap();
        let counts = StatevectorSimulator::with_seed(9).run(&c, 4000).unwrap();
        // All four outcomes appear.
        for bits in ["00", "01", "10", "11"] {
            assert!(
                counts.frequency(bits).unwrap() > 0.15,
                "missing outcome {bits}"
            );
        }
    }

    #[test]
    fn repeated_measurement_is_consistent() {
        // Measuring the same qubit twice must agree shot-by-shot.
        let mut c = Circuit::with_clbits(1, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.measure(0, 1).unwrap();
        let counts = StatevectorSimulator::with_seed(2).run(&c, 2000).unwrap();
        assert_eq!(counts.count_str("01").unwrap(), 0);
        assert_eq!(counts.count_str("10").unwrap(), 0);
        assert!(counts.count_str("00").unwrap() > 0);
        assert!(counts.count_str("11").unwrap() > 0);
    }

    #[test]
    fn reset_returns_qubit_to_zero() {
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0);
        c.reset(0).unwrap();
        c.measure(0, 0).unwrap();
        let counts = StatevectorSimulator::with_seed(3).run(&c, 500).unwrap();
        assert_eq!(counts.count_str("0").unwrap(), 500);
    }

    #[test]
    fn ghz_distribution() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c.measure_all();
        let counts = StatevectorSimulator::with_seed(10).run(&c, 8192).unwrap();
        assert!((counts.frequency("000").unwrap() - 0.5).abs() < 0.03);
        assert!((counts.frequency("111").unwrap() - 0.5).abs() < 0.03);
    }

    #[test]
    fn evolve_rejects_measurement() {
        let mut c = Circuit::with_clbits(1, 1);
        c.measure(0, 0).unwrap();
        assert!(StatevectorSimulator::new().evolve(&c).is_err());
    }

    #[test]
    fn too_wide_circuit_rejected() {
        let c = Circuit::new(25);
        assert!(matches!(
            StatevectorSimulator::new().evolve(&c),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn partial_measurement_marginalizes() {
        // Bell pair, measure only qubit 0.
        let mut c = Circuit::with_clbits(2, 1);
        c.h(0).cx(0, 1);
        c.measure(0, 0).unwrap();
        let counts = StatevectorSimulator::with_seed(8).run(&c, 4000).unwrap();
        assert!((counts.frequency("0").unwrap() - 0.5).abs() < 0.05);
    }
}
