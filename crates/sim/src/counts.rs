//! Measurement outcome histograms.

use crate::SimError;
use std::collections::BTreeMap;
use std::fmt;

/// A histogram of classical measurement outcomes, keyed by the classical
/// register value (bit 0 of the key = classical bit 0, which is the value
/// written by `measure(qubit, 0)`).
///
/// Keys format as bitstrings with classical bit 0 leftmost, matching the
/// qubit-order convention used throughout this workspace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counts {
    num_clbits: usize,
    table: BTreeMap<u64, u64>,
}

impl Counts {
    /// Creates an empty histogram over `num_clbits` classical bits.
    pub fn new(num_clbits: usize) -> Self {
        Self {
            num_clbits,
            table: BTreeMap::new(),
        }
    }

    /// Number of classical bits per outcome.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// Adds `n` observations of `outcome` (raw key).
    pub fn record(&mut self, outcome: u64, n: u64) {
        *self.table.entry(outcome).or_insert(0) += n;
    }

    /// Total number of shots recorded.
    pub fn total(&self) -> u64 {
        self.table.values().sum()
    }

    /// Number of observations of the raw `outcome` key.
    pub fn count(&self, outcome: u64) -> u64 {
        self.table.get(&outcome).copied().unwrap_or(0)
    }

    /// Number of observations of a bitstring like `"011"` (classical bit 0
    /// leftmost).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedBitstring`] when `bits` has the wrong
    /// length or non-binary characters — recoverable, so campaign
    /// post-processing over untrusted bitstrings never aborts the run.
    pub fn count_str(&self, bits: &str) -> Result<u64, SimError> {
        Ok(self.count(self.parse_bits(bits)?))
    }

    /// Relative frequency of a bitstring outcome (0 when no shots).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::MalformedBitstring`] when `bits` is malformed;
    /// see [`Counts::count_str`].
    pub fn frequency(&self, bits: &str) -> Result<f64, SimError> {
        let total = self.total();
        if total == 0 {
            // Still validate so malformed queries surface even on empty
            // histograms.
            self.parse_bits(bits)?;
            return Ok(0.0);
        }
        Ok(self.count_str(bits)? as f64 / total as f64)
    }

    /// The value of classical bit `clbit` being 1, as a relative frequency
    /// over all outcomes.
    pub fn marginal_frequency(&self, clbit: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let ones: u64 = self
            .table
            .iter()
            .filter(|(k, _)| (*k >> clbit) & 1 == 1)
            .map(|(_, v)| *v)
            .sum();
        ones as f64 / total as f64
    }

    /// Fraction of shots for which **any** of the listed classical bits is 1
    /// — the paper's "assertion error rate" when those bits are the
    /// assertion ancilla measurements.
    pub fn any_set_frequency(&self, clbits: &[usize]) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .table
            .iter()
            .filter(|(k, _)| clbits.iter().any(|&b| (*k >> b) & 1 == 1))
            .map(|(_, v)| *v)
            .sum();
        hits as f64 / total as f64
    }

    /// Retains only shots where all listed classical bits are 0 (the
    /// paper's error-filtering post-selection) and returns the filtered
    /// histogram together with the retained fraction.
    pub fn post_select_zero(&self, clbits: &[usize]) -> (Counts, f64) {
        let mut out = Counts::new(self.num_clbits);
        for (&k, &v) in &self.table {
            if clbits.iter().all(|&b| (k >> b) & 1 == 0) {
                out.record(k, v);
            }
        }
        let kept = if self.total() == 0 {
            0.0
        } else {
            out.total() as f64 / self.total() as f64
        };
        (out, kept)
    }

    /// Iterates over `(outcome, count)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.table.iter().map(|(&k, &v)| (k, v))
    }

    /// Formats a raw outcome key as a bitstring (classical bit 0 leftmost).
    pub fn key_to_string(&self, key: u64) -> String {
        (0..self.num_clbits)
            .map(|b| if (key >> b) & 1 == 1 { '1' } else { '0' })
            .collect()
    }

    fn parse_bits(&self, bits: &str) -> Result<u64, SimError> {
        if bits.len() != self.num_clbits {
            return Err(SimError::MalformedBitstring {
                bits: bits.to_string(),
                reason: format!(
                    "length {} does not match {} clbits",
                    bits.len(),
                    self.num_clbits
                ),
            });
        }
        let mut key = 0u64;
        for (i, ch) in bits.chars().enumerate() {
            match ch {
                '0' => {}
                '1' => key |= 1 << i,
                _ => {
                    return Err(SimError::MalformedBitstring {
                        bits: bits.to_string(),
                        reason: format!("invalid bit character '{ch}'"),
                    })
                }
            }
        }
        Ok(key)
    }
}

impl fmt::Display for Counts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.table.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {v}", self.key_to_string(*k))?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<(u64, u64)> for Counts {
    fn from_iter<I: IntoIterator<Item = (u64, u64)>>(iter: I) -> Self {
        let mut c = Counts::new(0);
        let mut max_key = 0u64;
        for (k, v) in iter {
            max_key = max_key.max(k);
            c.record(k, v);
        }
        c.num_clbits = (64 - max_key.leading_zeros() as usize).max(1);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counts {
        let mut c = Counts::new(3);
        c.record(0b000, 50);
        c.record(0b001, 25); // clbit 0 set
        c.record(0b110, 25); // clbits 1, 2 set
        c
    }

    #[test]
    fn totals_and_counts() {
        let c = sample();
        assert_eq!(c.total(), 100);
        assert_eq!(c.count(0), 50);
        assert_eq!(c.count_str("100").unwrap(), 25); // clbit0 leftmost
        assert_eq!(c.count_str("011").unwrap(), 25);
        assert!((c.frequency("000").unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginals() {
        let c = sample();
        assert!((c.marginal_frequency(0) - 0.25).abs() < 1e-12);
        assert!((c.marginal_frequency(1) - 0.25).abs() < 1e-12);
        assert!((c.marginal_frequency(2) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn any_set_and_post_select() {
        let c = sample();
        assert!((c.any_set_frequency(&[0, 1]) - 0.5).abs() < 1e-12);
        let (filtered, kept) = c.post_select_zero(&[0]);
        assert_eq!(filtered.total(), 75);
        assert!((kept - 0.75).abs() < 1e-12);
        assert_eq!(filtered.count(0b110), 25);
    }

    #[test]
    fn key_roundtrip() {
        let c = sample();
        assert_eq!(c.key_to_string(0b001), "100");
        assert_eq!(c.key_to_string(0b110), "011");
    }

    #[test]
    fn malformed_bitstring_is_recoverable() {
        let err = sample().count_str("0x1").unwrap_err();
        assert!(matches!(err, SimError::MalformedBitstring { .. }));
        assert!(err.to_string().contains("0x1"));
    }

    #[test]
    fn wrong_length_bitstring_is_recoverable() {
        assert!(matches!(
            sample().count_str("00"),
            Err(SimError::MalformedBitstring { .. })
        ));
        // Malformed queries also surface on empty histograms.
        assert!(Counts::new(2).frequency("0z").is_err());
    }

    #[test]
    fn empty_counts_behave() {
        let c = Counts::new(2);
        assert_eq!(c.total(), 0);
        assert_eq!(c.frequency("00").unwrap(), 0.0);
        assert_eq!(c.marginal_frequency(0), 0.0);
        let (f, kept) = c.post_select_zero(&[0]);
        assert_eq!(f.total(), 0);
        assert_eq!(kept, 0.0);
    }

    #[test]
    fn display_and_from_iter() {
        let c: Counts = vec![(0u64, 3u64), (2, 1)].into_iter().collect();
        assert_eq!(c.total(), 4);
        let s = format!("{}", sample());
        assert!(s.contains("000: 50"));
    }
}
