//! Stabilizer ↔ statevector identity: for any all-Clifford circuit and
//! any seed, [`StabilizerSimulator::run`] must produce [`Counts`]
//! **bit-identical** to [`StatevectorSimulator::run`] at overlapping
//! widths. This is the same seed-compatibility contract the compiled and
//! density engines carry (see `compiled_identity.rs`); campaign reports
//! rely on it so `--backend auto` can route cells to the tableau without
//! changing a single report byte.
//!
//! The contract's fine print (documented in `stabilizer.rs`): identity
//! holds exactly when the statevector's sampling draw does not land on a
//! floating-point boundary tie, a ~2⁻⁵² per-shot event that none of the
//! fixed seeds below hits.

use qra_circuit::{Circuit, Gate};
use qra_sim::{StabilizerSimulator, StatevectorSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_identical(c: &Circuit, shots: u64, seed: u64, what: &str) {
    let sv = StatevectorSimulator::with_seed(seed).run(c, shots).unwrap();
    let st = StabilizerSimulator::with_seed(seed).run(c, shots).unwrap();
    assert_eq!(sv, st, "{what} diverged at seed {seed}");
}

/// Pushes a random Clifford generator.
fn push_random_clifford(c: &mut Circuit, rng: &mut StdRng, n: usize) {
    let q0 = rng.gen_range(0..n);
    let mut q1 = rng.gen_range(0..n);
    while q1 == q0 {
        q1 = rng.gen_range(0..n);
    }
    match rng.gen_range(0..9u32) {
        0 => c.h(q0),
        1 => c.s(q0),
        2 => c.sdg(q0),
        3 => c.x(q0),
        4 => c.y(q0),
        5 => c.z(q0),
        6 => c.cx(q0, q1),
        7 => c.cz(q0, q1),
        _ => c.swap(q0, q1),
    };
}

/// GHZ ladders across widths: the canonical paper workload, terminal
/// sampling path (affine-support enumeration vs cumulative table).
#[test]
fn ghz_ladders_are_bit_identical() {
    for n in [1usize, 2, 3, 5, 8, 12, 16] {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        for seed in [0u64, 1, 42, 0xDEAD_BEEF] {
            assert_identical(&c, 4096, seed, &format!("GHZ-{n}"));
        }
    }
}

/// Random all-generator circuits: terminal path with arbitrary
/// stabilizer groups (rank < n, signed phases, entangled supports).
#[test]
fn random_clifford_circuits_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..16 {
        let n = rng.gen_range(2..8);
        let mut c = Circuit::new(n);
        for _ in 0..rng.gen_range(4..40) {
            push_random_clifford(&mut c, &mut rng, n);
        }
        c.measure_all();
        let seed = rng.gen_range(0..1_000_000);
        assert_identical(&c, 2048, seed, &format!("trial {trial}"));
    }
}

/// Mid-circuit measurement and reset: the per-shot replay path, where
/// both engines burn one RNG draw per collapse in the same order.
#[test]
fn midcircuit_measure_and_reset_are_bit_identical() {
    let mut c = Circuit::new(3);
    c.expand_clbits(3);
    c.h(0);
    c.cx(0, 1);
    c.measure(0, 0).unwrap();
    c.x(2);
    c.reset(1).unwrap();
    c.h(2);
    c.cx(2, 0);
    c.measure(2, 1).unwrap();
    c.measure(0, 2).unwrap();
    for seed in [7u64, 19, 1234] {
        assert_identical(&c, 1024, seed, "mid-circuit measure/reset");
    }

    // Re-measuring the same qubit into the same clbit (non-terminal by
    // the duplicate-measure rule) and overwrite semantics.
    let mut c = Circuit::new(2);
    c.expand_clbits(2);
    c.h(0);
    c.measure(0, 0).unwrap();
    c.h(0);
    c.measure(0, 0).unwrap();
    c.measure(1, 1).unwrap();
    for seed in [3u64, 99] {
        assert_identical(&c, 512, seed, "duplicate clbit");
    }
}

/// A hand-built SWAP-style assertion on a classical set spec, the shape
/// `--backend auto` campaigns route to the tableau: prepare, uncompute
/// via the linear coset, park the parity on ancillas, recompute, and
/// measure only the ancillas.
#[test]
fn swap_assertion_circuit_is_bit_identical() {
    let n = 4;
    let mut c = Circuit::new(n + 2);
    c.expand_clbits(2);
    // Prepare GHZ-4.
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    // Uncompute the coset map (GHZ -> |+000>), swap-check two qubits
    // against fresh ancillas, recompute.
    for q in (0..n - 1).rev() {
        c.cx(q, q + 1);
    }
    for (q, a) in [(1, n), (2, n + 1)] {
        c.cx(q, a);
        c.cx(a, q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure(n, 0).unwrap();
    c.measure(n + 1, 1).unwrap();
    for seed in [11u64, 17, 23] {
        assert_identical(&c, 4096, seed, "swap assertion");
    }

    // A faulted variant (stray X before the checks) must flip ancilla
    // statistics identically on both engines.
    let mut f = Circuit::new(n + 2);
    f.expand_clbits(2);
    f.h(0);
    for q in 0..n - 1 {
        f.cx(q, q + 1);
    }
    f.x(1);
    for q in (0..n - 1).rev() {
        f.cx(q, q + 1);
    }
    for (q, a) in [(1, n), (2, n + 1)] {
        f.cx(q, a);
        f.cx(a, q);
    }
    for q in 0..n - 1 {
        f.cx(q, q + 1);
    }
    f.measure(n, 0).unwrap();
    f.measure(n + 1, 1).unwrap();
    let seed = 11;
    assert_identical(&f, 4096, seed, "faulted swap assertion");
    let flagged = StabilizerSimulator::with_seed(seed).run(&f, 4096).unwrap();
    assert!(
        flagged.any_set_frequency(&[0, 1]) > 0.9,
        "stray X should trip the ancilla parity"
    );
}

/// Gates the recognizer rejects must error, not silently misroute —
/// including u2(0, π), which is mathematically H but not bit-exactly so.
#[test]
fn near_clifford_gates_are_rejected_not_approximated() {
    for gate in [
        Gate::T,
        Gate::Rz(std::f64::consts::PI),
        Gate::Sx,
        Gate::U2(0.0, std::f64::consts::PI),
    ] {
        let mut c = Circuit::new(1);
        c.append(gate, &[0]).unwrap();
        c.measure_all();
        assert!(!StabilizerSimulator::supports(&c));
        assert!(StabilizerSimulator::with_seed(1).run(&c, 16).is_err());
    }
}

/// The batched (per-shot seeded) discipline is worker-count invariant
/// and agrees with itself across thread counts — the property campaign
/// sharding relies on.
#[test]
fn batched_counts_are_worker_invariant() {
    let n = 6;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.s(2);
    c.cz(1, 4);
    c.measure_all();
    let reference = StabilizerSimulator::with_seed(77)
        .with_threads(1)
        .run_batched(&c, 999)
        .unwrap();
    for threads in [2usize, 3, 7] {
        let counts = StabilizerSimulator::with_seed(77)
            .with_threads(threads)
            .run_batched(&c, 999)
            .unwrap();
        assert_eq!(reference, counts, "diverged at {threads} threads");
    }
}
