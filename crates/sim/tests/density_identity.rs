//! Compiled density engine ↔ dense-walker identity: for any circuit, noise
//! model and seed, the kernelized conjugation path
//! ([`DensityMatrixSimulator::run`] / `evolve` / `outcome_distribution`)
//! must match the legacy dense-matrix instruction walker
//! ([`DensityMatrixSimulator::run_interpreted`] and friends) bit-for-bit:
//! `evolve` up to the sign of zero (`max_abs_diff == 0.0`), distributions
//! and counts exactly. This is the density extension of the
//! seed-compatibility contract in DESIGN.md; noisy campaign cells rely on
//! it to keep fixed-seed reports byte-stable across the engine change.

use qra_circuit::{Circuit, Gate};
use qra_sim::{DensityMatrixSimulator, DevicePreset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pushes a random gate drawn from all four kernel classes.
fn push_random_gate(c: &mut Circuit, rng: &mut StdRng, n: usize) {
    let q0 = rng.gen_range(0..n);
    let mut q1 = rng.gen_range(0..n);
    while q1 == q0 {
        q1 = rng.gen_range(0..n);
    }
    match rng.gen_range(0..10u32) {
        // Single-qubit butterflies.
        0 => c.h(q0),
        1 => c.ry(rng.gen_range(0.0..3.0), q0),
        // Diagonals.
        2 => c.t(q0),
        3 => c.rz(rng.gen_range(0.0..3.0), q0),
        4 => c.cz(q0, q1),
        // Permutations.
        5 => c.x(q0),
        6 => c.cx(q0, q1),
        7 => c.swap(q0, q1),
        // Generic fallbacks.
        8 => c.ch(q0, q1),
        _ => c.cu3(
            rng.gen_range(0.0..3.0),
            rng.gen_range(0.0..3.0),
            rng.gen_range(0.0..3.0),
            q0,
            q1,
        ),
    };
}

/// Asserts all three observable surfaces agree between the compiled path
/// and the interpreted reference at a fixed seed.
fn assert_identical(sim: &DensityMatrixSimulator, c: &Circuit, shots: u64, seed: u64, ctx: &str) {
    let fast_rho = sim.evolve(c).unwrap();
    let slow_rho = sim.evolve_interpreted(c).unwrap();
    assert_eq!(
        fast_rho.max_abs_diff(&slow_rho),
        0.0,
        "{ctx}: evolve diverged beyond the sign of zero"
    );
    let fast_dist = sim.outcome_distribution(c).unwrap();
    let slow_dist = sim.outcome_distribution_interpreted(c).unwrap();
    assert_eq!(fast_dist, slow_dist, "{ctx}: distributions diverged");
    let fast = sim.run(c, shots, seed).unwrap();
    let slow = sim.run_interpreted(c, shots, seed).unwrap();
    assert_eq!(fast, slow, "{ctx}: counts diverged");
}

fn melbourne() -> DensityMatrixSimulator {
    DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like())
}

#[test]
fn noisy_bell_is_bit_identical() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c.measure_all();
    assert_identical(&melbourne(), &c, 4096, 7, "bell/melbourne");
    assert_identical(
        &DensityMatrixSimulator::new(),
        &c,
        4096,
        7,
        "bell/noiseless",
    );
}

#[test]
fn noisy_ghz_is_bit_identical() {
    for n in [3, 4, 5] {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cx(q, q + 1);
        }
        c.measure_all();
        assert_identical(&melbourne(), &c, 2048, 11, &format!("ghz{n}/melbourne"));
    }
}

#[test]
fn mid_circuit_measurement_is_bit_identical() {
    // H, measure, H, measure with readout confusion: the coalesce path.
    let mut c = Circuit::with_clbits(2, 3);
    c.h(0).cx(0, 1);
    c.measure(0, 0).unwrap();
    c.h(0);
    c.measure(0, 1).unwrap();
    c.measure(1, 2).unwrap();
    assert_identical(&melbourne(), &c, 2048, 23, "mid-circuit/melbourne");
}

#[test]
fn reset_circuits_are_bit_identical() {
    let mut c = Circuit::with_clbits(3, 3);
    c.h(0).cx(0, 1).cx(1, 2);
    c.reset(1).unwrap();
    c.h(1);
    c.measure(0, 0).unwrap();
    c.measure(1, 1).unwrap();
    c.measure(2, 2).unwrap();
    assert_identical(&melbourne(), &c, 2048, 31, "reset/melbourne");
    assert_identical(
        &DensityMatrixSimulator::with_noise(DevicePreset::LowNoise.noise_model()),
        &c,
        2048,
        31,
        "reset/low",
    );
}

#[test]
fn arbitrary_unitary_gates_are_bit_identical() {
    // Gate::Unitary lowers through the matrix-borrow path of
    // ConjugationPair::for_gate.
    let mut c = Circuit::new(3);
    c.h(0);
    let m = Gate::Crx(1.1).matrix();
    c.unitary(m, &[0, 2], "crx-custom").unwrap();
    c.cx(1, 2);
    c.measure_all();
    assert_identical(&melbourne(), &c, 1024, 5, "unitary/melbourne");
}

/// Random circuits over all kernel classes, with random mid-circuit
/// measurements and resets, under every preset: the fuzzing analogue of
/// `compiled_identity.rs`.
#[test]
fn random_noisy_circuits_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(404);
    for trial in 0..8 {
        let n = rng.gen_range(2..5);
        let clbits = rng.gen_range(2..5);
        let mut c = Circuit::with_clbits(n, clbits);
        for _ in 0..rng.gen_range(2..8) {
            push_random_gate(&mut c, &mut rng, n);
        }
        for _ in 0..rng.gen_range(1..5) {
            match rng.gen_range(0..4u32) {
                0 => {
                    c.measure(rng.gen_range(0..n), rng.gen_range(0..clbits))
                        .unwrap();
                }
                1 => {
                    c.reset(rng.gen_range(0..n)).unwrap();
                }
                _ => push_random_gate(&mut c, &mut rng, n),
            }
        }
        c.measure(rng.gen_range(0..n), rng.gen_range(0..clbits))
            .unwrap();
        let seed = rng.gen_range(0..1_000_000);
        for preset in DevicePreset::ALL {
            let sim = DensityMatrixSimulator::with_noise(preset.noise_model());
            assert_identical(&sim, &c, 512, seed, &format!("trial {trial}/{preset}"));
        }
    }
}

/// Scaled noise exercises non-preset rates (including saturated readout).
#[test]
fn scaled_noise_is_bit_identical() {
    let mut c = Circuit::with_clbits(2, 2);
    c.h(0).cx(0, 1);
    c.measure(0, 0).unwrap();
    c.x(0);
    c.measure(0, 1).unwrap();
    for factor in [0.5, 2.0, 100.0] {
        let noise = DevicePreset::melbourne_like().scaled(factor);
        let sim = DensityMatrixSimulator::with_noise(noise);
        assert_identical(&sim, &c, 1024, 13, &format!("scaled x{factor}"));
    }
}

/// The compiled sampler must keep the exact RNG draw sequence of the
/// linear scan: same seed, same number of `gen_range(0.0..total)` draws.
/// A circuit with an empty classical register (no measurements) still
/// samples the single key-0 branch per shot, like the interpreter.
#[test]
fn unmeasured_circuit_is_bit_identical() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    let sim = melbourne();
    let fast = sim.run(&c, 256, 3).unwrap();
    let slow = sim.run_interpreted(&c, 256, 3).unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.count(0), 256);
}

/// The compiled engine's ceiling is 12 qubits (up from the walker's
/// historical 10): a 12-qubit circuit compiles and runs on both paths, a
/// 13-qubit one fails with the structured error on both.
#[test]
fn qubit_ceiling_is_twelve_on_both_paths() {
    use qra_sim::SimError;
    // Gateless: a 4096-dim dense gate embed would dominate debug CI time;
    // state preparation + distribution alone exercise the 12-qubit paths.
    let sim = DensityMatrixSimulator::new();
    let c = Circuit::new(12);
    let counts = sim.run(&c, 4, 1).unwrap();
    assert_eq!(counts, sim.run_interpreted(&c, 4, 1).unwrap());
    let too_big = Circuit::new(13);
    for result in [sim.run(&too_big, 1, 1), sim.run_interpreted(&too_big, 1, 1)] {
        assert!(matches!(
            result,
            Err(SimError::TooManyQubits {
                num_qubits: 13,
                max: 12
            })
        ));
    }
}

/// Ideal noise on one simulator must agree with `NoiseModel::ideal()` on
/// another — compile bakes the noise model in, so this pins the baking.
#[test]
fn compiled_program_carries_its_noise_model() {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c.measure_all();
    let noisy = melbourne();
    let program = noisy.compile(&c).unwrap();
    // Executing the noisy program through an ideal simulator handle uses
    // the program's baked-in noise, matching the noisy interpreted run.
    let via_ideal_handle = DensityMatrixSimulator::new()
        .run_compiled(&program, 1024, 17)
        .unwrap();
    let reference = noisy.run_interpreted(&c, 1024, 17).unwrap();
    assert_eq!(via_ideal_handle, reference);
}

/// Amplitude-level threading over vec(ρ) must be invisible in every
/// observable: for a fixed seed, counts, distributions and evolved
/// density matrices are identical at every thread count. A 6-qubit
/// register vectorizes to dim 4096, clearing the kernel parallel
/// threshold so the threaded conjugation sweeps genuinely engage.
#[test]
fn thread_matrix_density_is_bit_identical() {
    let n = 6;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    for q in 0..n {
        c.ry(0.2 * (q + 1) as f64, q);
    }
    c.measure_all();
    let base_sim = melbourne();
    let base_counts = base_sim.run(&c, 512, 77).unwrap();
    let base_dist = base_sim.outcome_distribution(&c).unwrap();
    let base_rho = base_sim.evolve(&c).unwrap();
    for threads in [1usize, 2, 4] {
        let sim = melbourne().with_threads(threads);
        assert_eq!(
            base_counts,
            sim.run(&c, 512, 77).unwrap(),
            "threads = {threads}: counts diverged"
        );
        assert_eq!(
            base_dist,
            sim.outcome_distribution(&c).unwrap(),
            "threads = {threads}: distribution diverged"
        );
        assert_eq!(
            base_rho.max_abs_diff(&sim.evolve(&c).unwrap()),
            0.0,
            "threads = {threads}: evolved state diverged"
        );
    }
}

/// Threaded mid-circuit density execution: branch splitting, staged
/// compaction and reset flips all route through the threaded kernels,
/// and none of it may leak into the results.
#[test]
fn thread_matrix_density_mid_circuit_is_bit_identical() {
    let mut c = Circuit::with_clbits(5, 6);
    c.h(0).cx(0, 1).cx(1, 2).cx(2, 3).cx(3, 4);
    c.measure(4, 5).unwrap();
    c.reset(4).unwrap();
    c.cx(3, 4);
    for q in 0..5 {
        c.measure(q, q).unwrap();
    }
    let base = melbourne().run(&c, 256, 88).unwrap();
    for threads in [2usize, 4] {
        let counts = melbourne().with_threads(threads).run(&c, 256, 88).unwrap();
        assert_eq!(base, counts, "threads = {threads}");
    }
}
