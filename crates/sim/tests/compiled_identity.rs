//! Compiled-engine ↔ interpreter identity: for any circuit and any seed,
//! [`StatevectorSimulator::run`] (kernel lowering, prefix caching, binary-
//! search sampling) must produce [`Counts`] **byte-identical** to
//! [`StatevectorSimulator::run_interpreted`] (the original instruction
//! walker). This is the seed-compatibility contract documented in
//! DESIGN.md; campaign reports rely on it to stay stable across engine
//! changes.

use qra_circuit::{Circuit, Gate};
use qra_sim::{CompiledProgram, StatevectorSimulator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pushes a random gate drawn from all four kernel classes.
fn push_random_gate(c: &mut Circuit, rng: &mut StdRng, n: usize) {
    let q0 = rng.gen_range(0..n);
    let mut q1 = rng.gen_range(0..n);
    while q1 == q0 {
        q1 = rng.gen_range(0..n);
    }
    match rng.gen_range(0..10u32) {
        // Single-qubit butterflies.
        0 => c.h(q0),
        1 => c.ry(rng.gen_range(0.0..3.0), q0),
        // Diagonals.
        2 => c.t(q0),
        3 => c.rz(rng.gen_range(0.0..3.0), q0),
        4 => c.cz(q0, q1),
        // Permutations.
        5 => c.x(q0),
        6 => c.cx(q0, q1),
        7 => c.swap(q0, q1),
        // Generic fallbacks.
        8 => c.ch(q0, q1),
        _ => c.cu3(
            rng.gen_range(0.0..3.0),
            rng.gen_range(0.0..3.0),
            rng.gen_range(0.0..3.0),
            q0,
            q1,
        ),
    };
}

/// Random unitary-then-measure-all circuits: the terminal fast path with
/// cumulative-table binary-search sampling and the outcome→key table.
#[test]
fn terminal_circuits_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(101);
    for trial in 0..12 {
        let n = rng.gen_range(2..6);
        let mut c = Circuit::new(n);
        for _ in 0..rng.gen_range(4..24) {
            push_random_gate(&mut c, &mut rng, n);
        }
        c.measure_all();
        let seed = rng.gen_range(0..1_000_000);
        let fast = StatevectorSimulator::with_seed(seed).run(&c, 2048).unwrap();
        let slow = StatevectorSimulator::with_seed(seed)
            .run_interpreted(&c, 2048)
            .unwrap();
        assert_eq!(fast, slow, "trial {trial}: terminal counts diverged");
    }
}

/// Random circuits with interleaved mid-circuit measurements and resets:
/// the per-shot path with the cached unitary prefix.
#[test]
fn mid_circuit_and_reset_circuits_are_bit_identical() {
    let mut rng = StdRng::seed_from_u64(202);
    for trial in 0..12 {
        let n = rng.gen_range(2..5);
        let clbits = rng.gen_range(2..5);
        let mut c = Circuit::with_clbits(n, clbits);
        // Unitary prefix the compiled engine caches across shots.
        for _ in 0..rng.gen_range(2..10) {
            push_random_gate(&mut c, &mut rng, n);
        }
        // Suffix mixing gates, measurements and resets.
        for _ in 0..rng.gen_range(2..8) {
            match rng.gen_range(0..4u32) {
                0 => {
                    c.measure(rng.gen_range(0..n), rng.gen_range(0..clbits))
                        .unwrap();
                }
                1 => {
                    c.reset(rng.gen_range(0..n)).unwrap();
                }
                _ => push_random_gate(&mut c, &mut rng, n),
            }
        }
        c.measure(rng.gen_range(0..n), rng.gen_range(0..clbits))
            .unwrap();
        let seed = rng.gen_range(0..1_000_000);
        let fast = StatevectorSimulator::with_seed(seed).run(&c, 512).unwrap();
        let slow = StatevectorSimulator::with_seed(seed)
            .run_interpreted(&c, 512)
            .unwrap();
        assert_eq!(fast, slow, "trial {trial}: per-shot counts diverged");
    }
}

/// A 16-qubit GHZ chain with a partial measurement: the wide-register
/// terminal path (exercises the non-key-table branch boundary and the
/// binary-search sampler over a 2¹⁶-entry cumulative table).
#[test]
fn ghz16_terminal_is_bit_identical() {
    let n = 16;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    let fast = StatevectorSimulator::with_seed(7).run(&c, 4096).unwrap();
    let slow = StatevectorSimulator::with_seed(7)
        .run_interpreted(&c, 4096)
        .unwrap();
    assert_eq!(fast, slow);
}

/// Gate::Unitary (arbitrary matrix) lowers through the borrow path; it
/// must sample identically too.
#[test]
fn arbitrary_unitary_gates_are_bit_identical() {
    let mut c = Circuit::new(3);
    c.h(0);
    let m = Gate::Crx(1.1).matrix();
    c.unitary(m, &[0, 2], "crx-custom").unwrap();
    c.cx(1, 2);
    c.measure_all();
    let fast = StatevectorSimulator::with_seed(5).run(&c, 1024).unwrap();
    let slow = StatevectorSimulator::with_seed(5)
        .run_interpreted(&c, 1024)
        .unwrap();
    assert_eq!(fast, slow);
}

/// Compiling once and re-running must equal compiling per run: the program
/// is immutable and execution keeps no hidden state.
#[test]
fn compiled_program_is_reusable() {
    let mut c = Circuit::with_clbits(3, 3);
    c.h(0).cx(0, 1);
    c.measure(0, 0).unwrap();
    c.h(0);
    c.measure(0, 1).unwrap();
    let program = CompiledProgram::compile(&c).unwrap();
    assert!(!program.is_terminal());
    assert_eq!(program.prefix_len(), 2);
    let mut sim = StatevectorSimulator::with_seed(9);
    let a = sim.run_compiled(&program, 256).unwrap();
    let b = StatevectorSimulator::with_seed(9).run(&c, 256).unwrap();
    assert_eq!(a, b);
    // Continue drawing from the same simulator: still well-formed.
    let c2 = sim.run_compiled(&program, 256).unwrap();
    assert_eq!(c2.total(), 256);
}

/// Amplitude-level threading must be invisible in results: for a fixed
/// seed, `run` counts and `evolve_compiled` states are **byte-identical**
/// at every thread count. The 12-qubit register (dim 4096) clears the
/// kernel parallel threshold, so the threaded sweeps genuinely engage.
#[test]
fn thread_matrix_run_and_evolve_are_bit_identical() {
    let n = 12;
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    for q in 0..n {
        c.ry(0.1 * (q + 1) as f64, q).t(q);
    }
    c.measure_all();
    let program = CompiledProgram::compile(&c).unwrap();
    let base_counts = StatevectorSimulator::with_seed(33).run(&c, 1024).unwrap();
    let base_state = StatevectorSimulator::new().evolve_compiled(&program);
    for threads in [1usize, 2, 4] {
        let counts = StatevectorSimulator::with_seed(33)
            .with_threads(threads)
            .run(&c, 1024)
            .unwrap();
        assert_eq!(base_counts, counts, "threads = {threads}: counts diverged");
        let state = StatevectorSimulator::new()
            .with_threads(threads)
            .evolve_compiled(&program);
        assert_eq!(
            base_state.as_slice(),
            state.as_slice(),
            "threads = {threads}: state diverged"
        );
    }
}

/// The per-shot (mid-circuit) path under threading: collapse draws happen
/// on the main thread in program order, so the RNG stream — and the
/// histogram — must not depend on the thread count.
#[test]
fn thread_matrix_mid_circuit_is_bit_identical() {
    let n = 11;
    let mut c = Circuit::with_clbits(n, n + 1);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure(n - 1, n).unwrap();
    c.reset(n - 1).unwrap();
    c.cx(n - 2, n - 1);
    for q in 0..n {
        c.measure(q, q).unwrap();
    }
    let base = StatevectorSimulator::with_seed(44).run(&c, 128).unwrap();
    for threads in [2usize, 4] {
        let counts = StatevectorSimulator::with_seed(44)
            .with_threads(threads)
            .run(&c, 128)
            .unwrap();
        assert_eq!(base, counts, "threads = {threads}");
    }
}

/// Kernel fusion is loop fusion over stage lists — the identical
/// per-amplitude arithmetic in program order — so a fused program must
/// sample and evolve **bit-identically** to its unfused twin.
#[test]
fn fused_programs_are_bit_identical_to_unfused() {
    let mut rng = StdRng::seed_from_u64(303);
    for trial in 0..8 {
        let n = rng.gen_range(2..6);
        let mut c = Circuit::new(n);
        // Dense single-qubit chains and repeated diagonals: maximal
        // fusion opportunity.
        for _ in 0..rng.gen_range(8..32) {
            let q = rng.gen_range(0..n);
            match rng.gen_range(0..6u32) {
                0 => {
                    c.h(q);
                }
                1 => {
                    c.t(q);
                }
                2 => {
                    c.ry(rng.gen_range(0.0..3.0), q);
                }
                3 => {
                    c.rz(rng.gen_range(0.0..3.0), q);
                }
                4 => {
                    c.s(q);
                }
                _ => push_random_gate(&mut c, &mut rng, n),
            }
        }
        c.measure_all();
        let fused = CompiledProgram::compile(&c).unwrap();
        let unfused = CompiledProgram::compile_unfused(&c).unwrap();
        assert!(
            fused.op_count() <= unfused.op_count(),
            "trial {trial}: fusion must never add ops"
        );
        let seed = rng.gen_range(0..1_000_000);
        let a = StatevectorSimulator::with_seed(seed)
            .run_compiled(&fused, 1024)
            .unwrap();
        let b = StatevectorSimulator::with_seed(seed)
            .run_compiled(&unfused, 1024)
            .unwrap();
        assert_eq!(a, b, "trial {trial}: fused counts diverged from unfused");
        let sa = StatevectorSimulator::new().evolve_compiled(&fused);
        let sb = StatevectorSimulator::new().evolve_compiled(&unfused);
        assert_eq!(
            sa.as_slice(),
            sb.as_slice(),
            "trial {trial}: fused state diverged from unfused"
        );
    }
}

/// Fused programs must also stay bit-identical to the *interpreter* —
/// fusion rides inside the existing seed-compatibility contract rather
/// than weakening it.
#[test]
fn fused_programs_keep_the_interpreter_contract() {
    let mut c = Circuit::new(4);
    c.h(0).t(0).h(0).s(1).t(1).rz(0.4, 1).cx(0, 1);
    c.cp(0.7, 2, 3);
    c.cp(0.9, 2, 3);
    c.h(2);
    c.measure_all();
    let program = CompiledProgram::compile(&c).unwrap();
    assert!(program.fused_away() > 0, "workload must actually fuse");
    let fast = StatevectorSimulator::with_seed(55)
        .run_compiled(&program, 2048)
        .unwrap();
    let slow = StatevectorSimulator::with_seed(55)
        .run_interpreted(&c, 2048)
        .unwrap();
    assert_eq!(fast, slow);
}
