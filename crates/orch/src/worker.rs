//! The worker loop: claim units from the shared manifest, execute them,
//! stream records.
//!
//! A worker is stateless beyond the run directory: it scans the completed
//! set once at startup, then walks the unit grid claiming incomplete
//! units. Claims persist for the whole run epoch, so a unit completed by a
//! peer mid-run still has its claim and is skipped. Workers start their
//! walk at a pid-scattered offset so concurrent workers mostly claim
//! disjoint units instead of contending in lockstep.

use crate::rundir::{Manifest, RunDir};
use crate::OrchError;

/// Executes one unit, returning its serialized
/// [`SweepUnitRecord`](qra_faults::SweepUnitRecord) JSON line. The
/// arguments are the unit's `(point, cell)` coordinates.
pub type UnitRunner<'a> = dyn Fn(usize, usize) -> Result<String, OrchError> + Sync + 'a;

/// Runs the worker loop until no claimable unit remains, returning the
/// number of units this worker completed.
///
/// `scatter` offsets the walk's starting unit (subprocess workers pass
/// their pid; test threads pass distinct values) purely to reduce claim
/// contention — coverage never depends on it.
///
/// # Errors
///
/// Returns [`OrchError`] on I/O failure or when a unit runner fails; the
/// claim of a failed unit is left in place, so a resume (which clears
/// stale claims) retries it.
pub fn worker_loop(
    dir: &RunDir,
    manifest: &Manifest,
    scatter: usize,
    run_unit: &UnitRunner<'_>,
) -> Result<usize, OrchError> {
    let total = manifest.total_units();
    if total == 0 {
        return Ok(0);
    }
    let completed = dir.scan(manifest)?.completed;
    let mut stream = dir.open_results_stream()?;
    let start = scatter % total;
    let mut done = 0;
    for i in 0..total {
        let unit = (start + i) % total;
        if completed.contains(&unit) || !dir.claim(unit) {
            continue;
        }
        let (point, cell) = manifest.unit_coords(unit);
        let record = run_unit(point, cell)?;
        stream.append(&record)?;
        done += 1;
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::Mutex;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qra-orch-worker-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> Manifest {
        Manifest {
            argv: vec![],
            labels: vec!["a".into(), "b".into()],
            cells_per_point: 3,
            units_per_point: 3,
            margin: "0.02".into(),
            workers: 1,
        }
    }

    fn margin_record(point: usize, cell: usize) -> String {
        // Any parseable record will do for loop mechanics; real campaigns
        // are exercised by the CLI integration tests.
        format!("{{\"point\":{point},\"cell\":{cell},\"margins\":[]}}")
    }

    #[test]
    fn worker_covers_every_unit_exactly_once() {
        let root = tmpdir("cover");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let ran = Mutex::new(Vec::new());
        let runner = |p: usize, c: usize| {
            ran.lock().unwrap().push((p, c));
            Ok(margin_record(p, c))
        };
        let done = worker_loop(&dir, &m, 4, &runner).unwrap();
        assert_eq!(done, 6);
        assert_eq!(ran.lock().unwrap().len(), 6);
        // The scatter offset changed execution order, not coverage.
        assert_eq!(ran.lock().unwrap()[0], m.unit_coords(4));
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, (0..6).collect::<BTreeSet<_>>());
        // A second worker epoch finds nothing to do.
        let done = worker_loop(&dir, &m, 0, &runner).unwrap();
        assert_eq!(done, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn worker_skips_claimed_and_completed_units() {
        let root = tmpdir("skip");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        // Unit 0 already completed (claim retained), unit 5 claimed by a
        // live peer.
        dir.claim(0);
        dir.open_results_stream()
            .unwrap()
            .append(&margin_record(0, 0))
            .unwrap();
        dir.claim(5);
        let runner = |p: usize, c: usize| Ok(margin_record(p, c));
        let done = worker_loop(&dir, &m, 0, &runner).unwrap();
        assert_eq!(done, 4, "6 units minus one completed minus one claimed");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_unit_leaves_its_claim_for_resume() {
        let root = tmpdir("fail");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let runner = |p: usize, c: usize| {
            if (p, c) == (0, 1) {
                Err(OrchError("backend exploded".into()))
            } else {
                Ok(margin_record(p, c))
            }
        };
        let e = worker_loop(&dir, &m, 0, &runner).unwrap_err();
        assert!(e.0.contains("exploded"), "{e}");
        let state = dir.scan(&m).unwrap();
        assert!(state.in_flight.contains(&1), "failed unit stays claimed");
        // Resume clears the stale claim and a fresh worker finishes.
        dir.clear_stale_claims(&state.completed).unwrap();
        let ok_runner = |p: usize, c: usize| Ok(margin_record(p, c));
        worker_loop(&dir, &m, 0, &ok_runner).unwrap();
        assert_eq!(dir.scan(&m).unwrap().completed.len(), 6);
        let _ = fs::remove_dir_all(&root);
    }
}
