//! The worker loop: claim units from the shared manifest, execute them,
//! stream records.
//!
//! A worker is stateless beyond the run directory: it scans the completed
//! set once at startup, then walks the unit grid claiming incomplete
//! units. Claims persist for the whole run epoch, so a unit completed by a
//! peer mid-run still has its claim and is skipped. Workers start their
//! walk at a pid-scattered offset so concurrent workers mostly claim
//! disjoint units instead of contending in lockstep.
//!
//! A unit that fails does not abort the worker: the failure is recorded as
//! one attempt (`attempts/u<ID>.<N>`), the lease is marked failed, and the
//! walk continues. A claimer that finds a unit already at the manifest's
//! `max_attempts` quarantines it instead of running it: it appends the
//! deterministic quarantined record produced by the caller's
//! [`QuarantineRenderer`], turning a poison unit into a named skip rather
//! than an infinite resume loop.

use crate::chaos::Chaos;
use crate::rundir::{Manifest, RunDir, LOCAL_HOST};
use crate::OrchError;

/// Executes one unit, returning its serialized
/// [`SweepUnitRecord`](qra_faults::SweepUnitRecord) JSON line. The
/// arguments are the unit's `(point, cell)` coordinates.
pub type UnitRunner<'a> = dyn Fn(usize, usize) -> Result<String, OrchError> + Sync + 'a;

/// Renders the quarantined record for a poison unit: given the unit's
/// `(point, cell)` coordinates and its attempt-reason history, returns the
/// serialized [`SweepUnitRecord`](qra_faults::SweepUnitRecord) JSON line
/// annotated as quarantined. The record must be deterministic — derived
/// from the manifest and the attempt history alone — so every worker
/// renders the identical bytes.
pub type QuarantineRenderer<'a> =
    dyn Fn(usize, usize, &[String]) -> Result<String, OrchError> + Sync + 'a;

/// Runs the worker loop until no claimable unit remains, returning the
/// number of units this worker completed (quarantined units count: their
/// record completes them).
///
/// `scatter` offsets the walk's starting unit (subprocess workers pass
/// their pid; test threads pass distinct values) purely to reduce claim
/// contention — coverage never depends on it.
///
/// # Errors
///
/// Returns [`OrchError`] on I/O failure. A unit runner failure is *not* an
/// error: the worker records the attempt, marks the lease failed, and
/// continues with the next claimable unit.
pub fn worker_loop(
    dir: &RunDir,
    manifest: &Manifest,
    scatter: usize,
    run_unit: &UnitRunner<'_>,
    quarantine: &QuarantineRenderer<'_>,
) -> Result<usize, OrchError> {
    worker_loop_on(dir, manifest, scatter, LOCAL_HOST, run_unit, quarantine)
}

/// [`worker_loop`] writing a host-labelled results stream, so progress
/// snapshots attribute completed units to the worker's host. Remote
/// workers spawned over ssh pass their `--host` label; [`LOCAL_HOST`]
/// keeps the legacy stream name (and is what [`worker_loop`] passes).
///
/// # Errors
///
/// Returns [`OrchError`] on I/O failure, like [`worker_loop`].
pub fn worker_loop_on(
    dir: &RunDir,
    manifest: &Manifest,
    scatter: usize,
    host: &str,
    run_unit: &UnitRunner<'_>,
    quarantine: &QuarantineRenderer<'_>,
) -> Result<usize, OrchError> {
    let total = manifest.total_units();
    if total == 0 {
        return Ok(0);
    }
    let chaos = Chaos::from_env(dir)?;
    let scatter = chaos
        .as_ref()
        .and_then(Chaos::scatter_override)
        .unwrap_or(scatter);
    let completed = dir.scan(manifest)?.completed;
    let mut stream = dir.open_results_stream_for(host)?;
    let start = scatter % total;
    let mut done = 0;
    for i in 0..total {
        let unit = (start + i) % total;
        if completed.contains(&unit) || !dir.claim(unit) {
            continue;
        }
        let (point, cell) = manifest.unit_coords(unit);
        let max_attempts = manifest.max_attempts as usize;
        if max_attempts > 0 && dir.attempt_count(unit) >= max_attempts {
            // Quarantine before executing: the poison unit must not get
            // another chance to hang or crash this worker. A kill between
            // a claim and its quarantine record can overshoot the attempt
            // count by one; truncate so the record is identical either way.
            let mut history = dir.attempt_reasons(unit)?;
            history.truncate(max_attempts);
            let record = quarantine(point, cell, &history)?;
            stream.append(&record)?;
            done += 1;
            continue;
        }
        if let Some(chaos) = &chaos {
            chaos.before_unit(point, cell);
        }
        match run_unit(point, cell) {
            Ok(record) => {
                let committed = match &chaos {
                    Some(chaos) => chaos.append(&mut stream, point, cell, &record)?,
                    None => {
                        stream.append(&record)?;
                        true
                    }
                };
                if committed {
                    done += 1;
                }
            }
            Err(e) => {
                // One bad unit must not idle the whole worker: count the
                // attempt, mark the lease failed (so reclaim does not
                // double-count), and move on.
                dir.record_attempt(unit, &e.0)?;
                dir.mark_claim_failed(unit)?;
            }
        }
    }
    Ok(done)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::Mutex;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("qra-orch-worker-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> Manifest {
        Manifest {
            argv: vec![],
            labels: vec!["a".into(), "b".into()],
            cells_per_point: 3,
            units_per_point: 3,
            margin: "0.02".into(),
            workers: 1,
            unit_timeout_ms: None,
            max_attempts: 3,
            hosts: vec![],
        }
    }

    fn margin_record(point: usize, cell: usize) -> String {
        // Any parseable record will do for loop mechanics; real campaigns
        // are exercised by the CLI integration tests.
        format!("{{\"point\":{point},\"cell\":{cell},\"margins\":[]}}")
    }

    fn quarantined_record(
        point: usize,
        cell: usize,
        attempts: &[String],
    ) -> Result<String, OrchError> {
        let reasons: Vec<String> = attempts
            .iter()
            .map(|r| qra_faults::json::json_str(r))
            .collect();
        Ok(format!(
            "{{\"point\":{point},\"cell\":{cell},\"margins\":[],\
             \"quarantined\":{{\"attempts\":[{}]}}}}",
            reasons.join(",")
        ))
    }

    fn no_quarantine(_: usize, _: usize, _: &[String]) -> Result<String, OrchError> {
        panic!("quarantine renderer must not run in this test");
    }

    #[test]
    fn worker_covers_every_unit_exactly_once() {
        let root = tmpdir("cover");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let ran = Mutex::new(Vec::new());
        let runner = |p: usize, c: usize| {
            ran.lock().unwrap().push((p, c));
            Ok(margin_record(p, c))
        };
        let done = worker_loop(&dir, &m, 4, &runner, &no_quarantine).unwrap();
        assert_eq!(done, 6);
        assert_eq!(ran.lock().unwrap().len(), 6);
        // The scatter offset changed execution order, not coverage.
        assert_eq!(ran.lock().unwrap()[0], m.unit_coords(4));
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, (0..6).collect::<BTreeSet<_>>());
        // A second worker epoch finds nothing to do.
        let done = worker_loop(&dir, &m, 0, &runner, &no_quarantine).unwrap();
        assert_eq!(done, 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn worker_skips_claimed_and_completed_units() {
        let root = tmpdir("skip");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        // Unit 0 already completed (claim retained), unit 5 claimed by a
        // live peer.
        dir.claim(0);
        dir.open_results_stream()
            .unwrap()
            .append(&margin_record(0, 0))
            .unwrap();
        dir.claim(5);
        let runner = |p: usize, c: usize| Ok(margin_record(p, c));
        let done = worker_loop(&dir, &m, 0, &runner, &no_quarantine).unwrap();
        assert_eq!(done, 4, "6 units minus one completed minus one claimed");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_unit_records_an_attempt_and_the_worker_continues() {
        let root = tmpdir("fail");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let runner = |p: usize, c: usize| {
            if (p, c) == (0, 1) {
                Err(OrchError("backend exploded".into()))
            } else {
                Ok(margin_record(p, c))
            }
        };
        // The failure no longer aborts the worker: the other 5 complete.
        let done = worker_loop(&dir, &m, 0, &runner, &no_quarantine).unwrap();
        assert_eq!(done, 5);
        let state = dir.scan(&m).unwrap();
        assert!(state.in_flight.contains(&1), "failed unit stays claimed");
        assert_eq!(dir.attempt_reasons(1).unwrap(), vec!["backend exploded"]);
        assert!(dir.lease(1).unwrap().failed, "lease carries the failure");
        // Resume clears the stale claim without double-counting the
        // attempt, and a fresh worker finishes.
        dir.clear_stale_claims(&state.completed).unwrap();
        assert_eq!(dir.attempt_count(1), 1);
        let ok_runner = |p: usize, c: usize| Ok(margin_record(p, c));
        worker_loop(&dir, &m, 0, &ok_runner, &no_quarantine).unwrap();
        assert_eq!(dir.scan(&m).unwrap().completed.len(), 6);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn poison_unit_is_quarantined_after_max_attempts() {
        let root = tmpdir("poison");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let poison = |p: usize, c: usize| {
            if (p, c) == (1, 0) {
                Err(OrchError("always fails".into()))
            } else {
                Ok(margin_record(p, c))
            }
        };
        // Three epochs of failure exhaust the attempts.
        for epoch in 1..=3 {
            worker_loop(&dir, &m, 0, &poison, &no_quarantine).unwrap();
            let state = dir.scan(&m).unwrap();
            dir.clear_stale_claims(&state.completed).unwrap();
            assert_eq!(dir.attempt_count(3), epoch);
        }
        // The next claimer quarantines instead of running the unit.
        let executed = Mutex::new(0usize);
        let must_not_run = |p: usize, c: usize| {
            if (p, c) == (1, 0) {
                *executed.lock().unwrap() += 1;
            }
            Ok(margin_record(p, c))
        };
        let done = worker_loop(&dir, &m, 0, &must_not_run, &quarantined_record).unwrap();
        assert_eq!(done, 1, "only the quarantined unit remained");
        assert_eq!(*executed.lock().unwrap(), 0, "poison unit must not rerun");
        let state = dir.scan(&m).unwrap();
        assert!(state.completed.contains(&3));
        assert_eq!(state.quarantined, BTreeSet::from([3]));
        let record = state.records.iter().find(|r| r.point == 1 && r.cell == 0);
        let attempts = record.unwrap().quarantined.as_ref().unwrap();
        assert_eq!(attempts.len(), 3);
        assert!(attempts.iter().all(|r| r == "always fails"));
        let _ = fs::remove_dir_all(&root);
    }
}
