//! `qra-orch` — a work-queue orchestrator for distributed noise sweeps.
//!
//! The paper's evaluation (§IX) is a matrix of
//! assertion design × fault class × noise point; a sequential
//! [`run_sweep`](qra_faults::run_sweep) walks it one campaign at a time.
//! This crate distributes the same matrix at the granularity of one
//! **unit** — a `(sweep point × campaign cell)` pair, plus one margin
//! calibration unit per point in auto-margin mode — across N worker
//! processes, with all coordination through a crash-safe run directory:
//!
//! * [`rundir`] — the shared state: a `manifest.json` describing the sweep
//!   (written once, temp+rename), an `O_EXCL` claim file per unit, one
//!   append-only JSONL record stream per worker pid, and an atomically
//!   replaced `progress.json`;
//! * [`worker`] — the claim-execute-record loop each worker runs
//!   (`qra worker --run-dir <dir>` in production, in-process threads in
//!   tests and embedded mode);
//! * [`orchestrate`] — spawning workers as subprocesses of our own binary,
//!   monitoring them, and emitting progress events to stderr and
//!   `progress.json`.
//!
//! **Determinism contract.** Campaign cell seeds derive from
//! `(seed, cell index)` and calibration seeds from
//! `(seed, point index, repeat)` alone, and every unit record embeds its
//! `(point, cell)` coordinate, so
//! [`assemble_sweep`](qra_faults::assemble_sweep) over any complete record
//! set — any worker count, any scheduling order, any number of
//! kill+resume cycles — produces a [`SweepReport`](qra_faults::SweepReport)
//! byte-identical to the sequential run at the same seed. Workers affect
//! only *when* a unit runs, never *what* it computes.

#![deny(missing_docs)]

pub mod orchestrate;
pub mod rundir;
pub mod worker;

pub use orchestrate::{monitor_workers, run_threaded, spawn_workers, EpochOutcome};
pub use rundir::{parse_progress, progress_json, Manifest, ResultsStream, RunDir, ScanState};
pub use worker::{worker_loop, UnitRunner};

use std::fmt;

/// Error from run-directory I/O, worker execution, or orchestration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchError(pub String);

impl fmt::Display for OrchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for OrchError {}
