//! `qra-orch` — a work-queue orchestrator for distributed noise sweeps.
//!
//! The paper's evaluation (§IX) is a matrix of
//! assertion design × fault class × noise point; a sequential
//! [`run_sweep`](qra_faults::run_sweep) walks it one campaign at a time.
//! This crate distributes the same matrix at the granularity of one
//! **unit** — a `(sweep point × campaign cell)` pair, plus one margin
//! calibration unit per point in auto-margin mode — across N worker
//! processes, with all coordination through a crash-safe run directory:
//!
//! * [`rundir`] — the shared state: a `manifest.json` describing the sweep
//!   (written once, temp+rename), an `O_EXCL` lease file per unit, one
//!   checksummed append-only JSONL record stream per worker pid, per-unit
//!   attempt markers, and an atomically replaced `progress.json`;
//! * [`lease`] — the claim-file format: owner pid plus a heartbeat mtime,
//!   with a `failed` marker distinguishing recorded failures from
//!   abandoned leases;
//! * [`worker`] — the claim-execute-record loop each worker runs
//!   (`qra worker --run-dir <dir>` in production, in-process threads in
//!   tests and embedded mode), including poison-unit quarantine;
//! * [`orchestrate`] — spawning workers as subprocesses of our own binary,
//!   monitoring them (killing hung workers past the unit timeout and
//!   reclaiming units of dead ones), and emitting progress events to
//!   stderr and `progress.json`;
//! * [`chaos`] — deterministic, env-driven fault injection (debug builds
//!   only) proving all of the above against real worker subprocesses.
//!
//! **Determinism contract.** Campaign cell seeds derive from
//! `(seed, cell index)` and calibration seeds from
//! `(seed, point index, repeat)` alone, and every unit record embeds its
//! `(point, cell)` coordinate, so
//! [`assemble_sweep`](qra_faults::assemble_sweep) over any complete record
//! set — any worker count, any scheduling order, any number of
//! kill+resume cycles — produces a [`SweepReport`](qra_faults::SweepReport)
//! byte-identical to the sequential run at the same seed. Workers affect
//! only *when* a unit runs, never *what* it computes. Quarantined units
//! are the one deliberate exception: a unit that exhausts `max_attempts`
//! is recorded as a deterministic named skip (reason + attempt history),
//! so its annotation — not its timing — is what differs from the
//! sequential run, identically across worker counts and kill histories.

#![deny(missing_docs)]

pub mod chaos;
pub mod lease;
pub mod orchestrate;
pub mod rundir;
pub mod worker;

pub use chaos::Chaos;
pub use lease::Lease;
pub use orchestrate::{
    monitor_workers, run_threaded, spawn_workers, spawn_workers_on, EpochOutcome,
};
pub use rundir::{
    parse_progress, progress_json, stream_host, Manifest, ResultsStream, RunDir, ScanState,
    ATTEMPT_REASON_DIED, DEFAULT_MAX_ATTEMPTS, LOCAL_HOST,
};
pub use worker::{worker_loop, worker_loop_on, QuarantineRenderer, UnitRunner};

use std::fmt;

/// Error from run-directory I/O, worker execution, or orchestration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchError(pub String);

impl fmt::Display for OrchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for OrchError {}
