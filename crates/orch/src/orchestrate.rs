//! Orchestration: spawn N workers over a run directory, monitor them, and
//! emit progress until the unit grid is covered.
//!
//! Workers are subprocesses re-invoking our own binary
//! (`qra worker --run-dir <dir>`), so a SIGKILL of any worker — or of the
//! orchestrator itself — loses at most the units that worker had claimed
//! but not recorded; `sweep resume` clears those stale claims and finishes
//! the rest. The monitor additionally polices unit leases mid-epoch: a
//! lease whose heartbeat exceeded the manifest's unit timeout gets its
//! hung owner killed and the unit reclaimed, and a lease whose owner died
//! without recording the unit is reclaimed on the spot — either way one
//! replacement worker is spawned, so an epoch can no longer block forever
//! on one stuck process. An embedded threaded mode runs the same worker
//! loop on in-process threads (used by `--workers` on a machine where
//! spawning is undesirable, and by tests).

use crate::rundir::{progress_json, Manifest, RunDir, ScanState, ATTEMPT_REASON_DIED};
use crate::worker::{worker_loop, QuarantineRenderer, UnitRunner};
use crate::OrchError;
use std::io::Write as _;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How often the monitor rescans and re-emits progress.
const MONITOR_INTERVAL: Duration = Duration::from_millis(300);

/// Spawns `workers` subprocess workers over `dir`, each running
/// `<exe> worker --run-dir <dir>`. On a mid-loop spawn failure the
/// already-spawned children are killed and reaped before the error
/// returns, so no orphan workers outlive the failed call.
///
/// # Errors
///
/// Returns [`OrchError`] when the current executable cannot be determined
/// or a spawn fails.
pub fn spawn_workers(dir: &RunDir, workers: usize) -> Result<Vec<Child>, OrchError> {
    spawn_workers_on(dir, workers, &[])
}

/// [`spawn_workers`] distributed round-robin over a host list. An empty
/// list (and the literal host [`crate::rundir::LOCAL_HOST`]) spawns the
/// legacy local worker. Other `local`-prefixed labels (e.g. `localA`)
/// spawn locally but write host-labelled result streams — the testable
/// multi-host shape. Anything else is reached as
/// `ssh <host> <exe> worker --run-dir <dir> --host <host>`, which
/// assumes the run directory is on a shared mount and the `qra` binary
/// sits at the same path on the remote host.
///
/// # Errors
///
/// Returns [`OrchError`] when the current executable cannot be determined
/// or a spawn fails (a dead ssh target surfaces as a worker that exits
/// nonzero, not a spawn failure).
pub fn spawn_workers_on(
    dir: &RunDir,
    workers: usize,
    hosts: &[String],
) -> Result<Vec<Child>, OrchError> {
    let exe = std::env::current_exe()
        .map_err(|e| OrchError(format!("cannot locate own executable: {e}")))?;
    // Remote shells start in $HOME: ship an absolute run-dir path.
    let abs_root = dir
        .root()
        .canonicalize()
        .unwrap_or_else(|_| dir.root().to_path_buf());
    let mut children = Vec::with_capacity(workers);
    for w in 0..workers {
        let host = if hosts.is_empty() {
            crate::rundir::LOCAL_HOST
        } else {
            hosts[w % hosts.len()].as_str()
        };
        let mut command = if host == crate::rundir::LOCAL_HOST {
            let mut c = Command::new(&exe);
            c.arg("worker").arg("--run-dir").arg(dir.root());
            c
        } else if host.starts_with("local") {
            let mut c = Command::new(&exe);
            c.arg("worker")
                .arg("--run-dir")
                .arg(dir.root())
                .arg("--host")
                .arg(host);
            c
        } else {
            let mut c = Command::new("ssh");
            c.arg("-oBatchMode=yes")
                .arg(host)
                .arg(exe.as_os_str())
                .arg("worker")
                .arg("--run-dir")
                .arg(&abs_root)
                .arg("--host")
                .arg(host);
            c
        };
        let spawned = command
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| OrchError(format!("spawning worker for host {host}: {e}")));
        match spawned {
            Ok(child) => children.push(child),
            Err(e) => {
                for mut child in children {
                    let _ = child.kill();
                    let _ = child.wait();
                }
                return Err(e);
            }
        }
    }
    Ok(children)
}

/// The outcome of one orchestration epoch.
#[derive(Debug)]
pub struct EpochOutcome {
    /// The final scan after every worker exited.
    pub state: ScanState,
    /// Workers that exited with a failure status, were killed by a
    /// signal, or were killed by the monitor for a stalled lease.
    pub workers_failed: usize,
}

impl EpochOutcome {
    /// Whether every unit of the manifest has a completed record
    /// (quarantined units count — their record is their named skip).
    pub fn complete(&self, manifest: &Manifest) -> bool {
        self.state.completed.len() == manifest.total_units()
    }
}

/// Monitors spawned workers until they all exit: rescans the run directory
/// on an interval, polices unit leases (kills hung owners past the unit
/// timeout, reclaims units of dead owners, respawns one replacement per
/// reclaim), writes `progress.json` (atomically) and emits a progress line
/// to stderr whenever the counts change.
///
/// # Errors
///
/// Returns [`OrchError`] on scan or progress-write failure. Worker
/// failures are *not* errors — they are reported in the outcome so the
/// caller can decide between "resume will finish this" and "done".
pub fn monitor_workers(
    dir: &RunDir,
    manifest: &Manifest,
    mut children: Vec<Child>,
) -> Result<EpochOutcome, OrchError> {
    let started = Instant::now();
    let mut point_elapsed: Vec<Option<f64>> = vec![None; manifest.labels.len()];
    let mut point_done: Vec<usize> = vec![0; manifest.labels.len()];
    let mut workers_failed = 0;
    let mut last_line = String::new();
    loop {
        // Reap exited workers.
        children.retain_mut(|child| match child.try_wait() {
            Ok(Some(status)) => {
                if !status.success() {
                    workers_failed += 1;
                }
                false
            }
            Ok(None) => true,
            Err(_) => {
                workers_failed += 1;
                false
            }
        });

        let mut state = dir.scan(manifest)?;
        let killed = police_leases(dir, manifest, &mut children, &state)?;
        if killed > 0 {
            workers_failed += killed;
            // Reclaims released leases; rescan so progress reflects it.
            state = dir.scan(manifest)?;
        }
        observe_points(
            manifest,
            &state,
            started,
            &mut point_done,
            &mut point_elapsed,
        );
        dir.write_progress(&progress_json(manifest, &state, &point_elapsed))?;
        let line = format!(
            "sweep: {}/{} unit(s) done, {} in-flight, {} failed, {} quarantined, \
             {} worker(s) running",
            state.completed.len(),
            manifest.total_units(),
            state.in_flight.len(),
            state.failed.len(),
            state.quarantined.len(),
            children.len()
        );
        if line != last_line {
            let _ = writeln!(std::io::stderr(), "{line}");
            last_line = line;
        }
        for report in &state.corrupt {
            let _ = writeln!(std::io::stderr(), "sweep: corrupt record: {report}");
        }

        if children.is_empty() {
            return Ok(EpochOutcome {
                state,
                workers_failed,
            });
        }
        std::thread::sleep(MONITOR_INTERVAL);
    }
}

/// Polices unit leases mid-epoch. For every in-flight, non-failed lease:
/// if its owner is one of our live children and its heartbeat exceeded
/// the manifest's unit timeout, the hung owner is killed and the unit
/// reclaimed (one attempt recorded); if its owner is *not* among the live
/// children, the owner died mid-unit and the unit is reclaimed likewise.
/// Each reclaim spawns one replacement worker, keeping the epoch's worker
/// count. Returns how many hung workers were killed.
///
/// Every reclaim writes exactly one attempt marker, and claimers
/// quarantine units at `max_attempts`, so respawns are bounded by
/// `total_units × max_attempts` — a poison unit converges to quarantine
/// instead of respawning forever.
fn police_leases(
    dir: &RunDir,
    manifest: &Manifest,
    children: &mut Vec<Child>,
    state: &ScanState,
) -> Result<usize, OrchError> {
    let mut killed = 0;
    for &unit in &state.in_flight {
        let Some(lease) = dir.lease(unit) else {
            continue;
        };
        if lease.failed {
            continue; // the owner recorded the failure; the epoch retry handles it
        }
        match children.iter().position(|c| c.id() == lease.pid) {
            Some(i) => {
                let Some(timeout_ms) = manifest.unit_timeout_ms else {
                    continue;
                };
                if lease.age < Duration::from_millis(timeout_ms) {
                    continue;
                }
                // Stalled: kill the hung owner first, then double-check the
                // unit did not complete in the window since our scan — a
                // reclaim of a completed unit would duplicate its record.
                let mut child = children.swap_remove(i);
                let _ = child.kill();
                let _ = child.wait();
                killed += 1;
                if !dir.scan(manifest)?.completed.contains(&unit) {
                    dir.record_attempt(
                        unit,
                        &format!("unit execution exceeded the {timeout_ms}ms unit timeout"),
                    )?;
                    dir.release_claim(unit)?;
                }
                children.extend(spawn_workers_on(dir, 1, &manifest.hosts)?);
            }
            None => {
                // The owner is not a live child: it died (or was killed)
                // holding the lease. Its stream is fsynced per record, so
                // nothing can complete the unit anymore — reclaim now
                // instead of stalling until the epoch boundary.
                dir.record_attempt(unit, ATTEMPT_REASON_DIED)?;
                dir.release_claim(unit)?;
                children.extend(spawn_workers_on(dir, 1, &manifest.hosts)?);
            }
        }
    }
    Ok(killed)
}

/// Stamps each point's elapsed time whenever its done-count advances, so
/// `progress.json` reports per-point wall-clock from epoch start to the
/// point's most recent completion.
fn observe_points(
    manifest: &Manifest,
    state: &ScanState,
    started: Instant,
    point_done: &mut [usize],
    point_elapsed: &mut [Option<f64>],
) {
    for p in 0..manifest.labels.len() {
        let done = state
            .completed
            .iter()
            .filter(|&&u| u / manifest.units_per_point == p)
            .count();
        if done > point_done[p] {
            point_done[p] = done;
            point_elapsed[p] = Some(started.elapsed().as_secs_f64());
        }
    }
}

/// Runs an orchestration epoch on in-process threads instead of
/// subprocesses: `workers` threads each run [`worker_loop`] with distinct
/// scatter offsets. Used by orch's own tests and callers that want
/// single-process orchestration; the run-directory protocol is identical.
///
/// # Errors
///
/// Returns [`OrchError`] on scan failure; individual worker errors are
/// counted in the outcome (their claims stay for resume), not propagated.
pub fn run_threaded(
    dir: &RunDir,
    manifest: &Manifest,
    workers: usize,
    run_unit: &UnitRunner<'_>,
    quarantine: &QuarantineRenderer<'_>,
) -> Result<EpochOutcome, OrchError> {
    let total = manifest.total_units().max(1);
    let workers_failed = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.max(1))
            .map(|w| {
                let dir = dir.clone();
                let scatter = w * total / workers.max(1);
                scope.spawn(move || worker_loop(&dir, manifest, scatter, run_unit, quarantine))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join())
            .filter(|outcome| !matches!(outcome, Ok(Ok(_))))
            .count()
    });
    let state = dir.scan(manifest)?;
    let point_elapsed: Vec<Option<f64>> = vec![None; manifest.labels.len()];
    dir.write_progress(&progress_json(manifest, &state, &point_elapsed))?;
    Ok(EpochOutcome {
        state,
        workers_failed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qra-orch-epoch-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> Manifest {
        Manifest {
            argv: vec![],
            labels: vec!["a".into(), "b".into(), "c".into()],
            cells_per_point: 4,
            units_per_point: 4,
            margin: "0.02".into(),
            workers: 3,
            unit_timeout_ms: None,
            max_attempts: 3,
            hosts: vec![],
        }
    }

    fn no_quarantine(_: usize, _: usize, _: &[String]) -> Result<String, OrchError> {
        panic!("quarantine renderer must not run in this test");
    }

    #[test]
    fn threaded_epoch_covers_units_exactly_once_across_workers() {
        let root = tmpdir("threads");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let executions = AtomicUsize::new(0);
        let runner = |p: usize, c: usize| {
            executions.fetch_add(1, Ordering::SeqCst);
            Ok(format!("{{\"point\":{p},\"cell\":{c},\"margins\":[]}}"))
        };
        let outcome = run_threaded(&dir, &m, 3, &runner, &no_quarantine).unwrap();
        assert_eq!(outcome.workers_failed, 0);
        assert!(outcome.complete(&m));
        // Claims made every unit run exactly once despite 3 racing workers.
        assert_eq!(executions.load(Ordering::SeqCst), m.total_units());
        assert_eq!(
            outcome.state.completed,
            (0..m.total_units()).collect::<BTreeSet<_>>()
        );
        assert!(dir.progress_path().exists());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn interrupted_epoch_resumes_to_completion() {
        let root = tmpdir("resume");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        // First epoch: the runner fails every unit after the fifth — the
        // worker records an attempt per failure and keeps walking, so the
        // epoch ends with 5 completed and 7 failed-but-claimed units.
        let count = AtomicUsize::new(0);
        let dying = |p: usize, c: usize| {
            if count.fetch_add(1, Ordering::SeqCst) >= 5 {
                Err(OrchError("killed".into()))
            } else {
                Ok(format!("{{\"point\":{p},\"cell\":{c},\"margins\":[]}}"))
            }
        };
        let outcome = run_threaded(&dir, &m, 1, &dying, &no_quarantine).unwrap();
        assert_eq!(
            outcome.workers_failed, 0,
            "failures no longer abort the worker"
        );
        assert!(!outcome.complete(&m));
        assert_eq!(outcome.state.completed.len(), 5);
        assert_eq!(
            outcome.state.in_flight.len(),
            7,
            "failed units stay claimed"
        );

        // Resume: clear stale claims (no double-counted attempts), run a
        // fresh epoch.
        dir.clear_stale_claims(&outcome.state.completed).unwrap();
        let healthy =
            |p: usize, c: usize| Ok(format!("{{\"point\":{p},\"cell\":{c},\"margins\":[]}}"));
        let outcome = run_threaded(&dir, &m, 2, &healthy, &no_quarantine).unwrap();
        assert!(outcome.complete(&m));
        assert_eq!(outcome.workers_failed, 0);
        let _ = fs::remove_dir_all(&root);
    }
}
