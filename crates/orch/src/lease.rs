//! Unit leases: claim files that carry the owning worker's pid and use
//! their mtime as a heartbeat.
//!
//! A lease is created `O_EXCL` (exactly one owner per unit per epoch) with
//! the owner's pid as its first line. The file's mtime — stamped when the
//! owner claims the unit — is the unit's heartbeat: the monitor treats a
//! non-failed lease older than the manifest's unit timeout as a stalled
//! unit, kills its owner, and reclaims the unit. A worker that *observes*
//! a unit failure (the runner returned an error, rather than the process
//! dying mid-unit) appends a `failed` marker line, so the monitor and the
//! stale-claim sweep can tell a recorded failure (attempt already counted
//! by the worker) from an abandoned lease (attempt counted at reclaim).

use crate::OrchError;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::Path;
use std::time::Duration;

/// A parsed lease file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lease {
    /// Pid of the worker that claimed the unit (0 when the lease carries
    /// no pid — e.g. a crash between create and write).
    pub pid: u32,
    /// Whether the owner marked the unit failed after recording an
    /// attempt for it.
    pub failed: bool,
    /// Heartbeat age: time since the lease was last touched.
    pub age: Duration,
}

/// Atomically acquires the lease at `path` for the current process.
/// Returns `false` when another owner already holds it.
pub fn acquire(path: &Path) -> bool {
    let Ok(mut f) = OpenOptions::new().write(true).create_new(true).open(path) else {
        return false;
    };
    // The pid content is best-effort: an empty lease still excludes other
    // claimers, and reads back as pid 0 — an abandoned lease with no live
    // owner, which the monitor reclaims.
    let _ = writeln!(f, "{}", std::process::id());
    let _ = f.sync_all();
    true
}

/// Reads the lease at `path`; `None` when it does not exist or cannot be
/// read (e.g. it was just released by the monitor).
pub fn read(path: &Path) -> Option<Lease> {
    let meta = std::fs::metadata(path).ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let pid = text
        .lines()
        .next()
        .and_then(|l| l.trim().parse().ok())
        .unwrap_or(0);
    let failed = text.lines().any(|l| l.trim() == "failed");
    let age = meta
        .modified()
        .ok()
        .and_then(|m| std::time::SystemTime::now().duration_since(m).ok())
        .unwrap_or_default();
    Some(Lease { pid, failed, age })
}

/// Appends the `failed` marker to the lease at `path`, recording that the
/// owner observed the unit fail (as opposed to dying while running it).
///
/// # Errors
///
/// Returns [`OrchError`] on I/O failure (including a missing lease).
pub fn mark_failed(path: &Path) -> Result<(), OrchError> {
    let mut f = OpenOptions::new()
        .append(true)
        .open(path)
        .map_err(|e| OrchError(format!("opening lease {}: {e}", path.display())))?;
    writeln!(f, "failed")
        .map_err(|e| OrchError(format!("marking lease {}: {e}", path.display())))?;
    f.sync_all()
        .map_err(|e| OrchError(format!("syncing lease {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpfile(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("qra-orch-lease-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn lease_acquires_exclusively_and_carries_pid() {
        let path = tmpfile("acquire");
        assert!(acquire(&path));
        assert!(!acquire(&path), "second acquire must lose");
        let lease = read(&path).unwrap();
        assert_eq!(lease.pid, std::process::id());
        assert!(!lease.failed);
        assert!(lease.age < Duration::from_secs(60));
        let _ = std::fs::remove_file(&path);
        assert!(read(&path).is_none(), "released lease reads as None");
    }

    #[test]
    fn failed_marker_round_trips_and_needs_a_lease() {
        let path = tmpfile("failed");
        assert!(acquire(&path));
        mark_failed(&path).unwrap();
        let lease = read(&path).unwrap();
        assert_eq!(lease.pid, std::process::id());
        assert!(lease.failed);
        let _ = std::fs::remove_file(&path);
        assert!(mark_failed(&path).is_err(), "no lease to mark");
    }

    #[test]
    fn empty_lease_reads_as_abandoned_pid_zero() {
        let path = tmpfile("empty");
        std::fs::write(&path, "").unwrap();
        let lease = read(&path).unwrap();
        assert_eq!(lease.pid, 0);
        assert!(!lease.failed);
        let _ = std::fs::remove_file(&path);
    }
}
