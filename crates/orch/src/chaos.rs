//! Deterministic fault injection for the orchestrator, driven by the
//! `QRA_CHAOS` environment variable.
//!
//! The chaos layer exists so the hardening paths — lease timeouts, poison
//! quarantine, checksum verification, stale-claim reclaim — are exercised
//! against *real* worker subprocesses, not just unit-test doubles. It is
//! compiled into debug builds only: [`Chaos::from_env`] always returns
//! `None` under `--release`, so production binaries ignore the variable
//! entirely.
//!
//! `QRA_CHAOS` is a comma-separated fault list:
//!
//! | spec          | effect                                                    |
//! |---------------|-----------------------------------------------------------|
//! | `kill=N`      | abort the worker process after it appends N records       |
//! | `hang=P:C`    | hang forever before running unit `(P, C)` — **one-shot**  |
//! | `panic=P:C`   | panic before running unit `(P, C)` — **every attempt**    |
//! | `torn=P:C`    | write a truncated record line for `(P, C)`, then abort    |
//! | `corrupt=P:C` | flip one byte of `(P, C)`'s checksummed line, keep going  |
//! | `race`        | zero every worker's scatter so claims contend in lockstep |
//!
//! One-shot faults coordinate across worker processes through `O_EXCL`
//! marker files under `<run dir>/chaos/`, so exactly one attempt of the
//! targeted unit takes the fault regardless of worker count or respawns
//! — which is what makes the recovered run byte-identical to the
//! sequential one. `panic` deliberately fires on *every* attempt: it is
//! the poison unit that drives quarantine. Seeded choices (torn cut
//! point, corrupted byte index) derive from `QRA_CHAOS_SEED` (default 0)
//! and the unit coordinates via FNV-1a, never from wall-clock or OS
//! randomness.

use crate::rundir::{checksummed_line, fnv1a, ResultsStream, RunDir};
use crate::OrchError;
use std::cell::Cell;
use std::fs::OpenOptions;
use std::path::PathBuf;
use std::time::Duration;

/// A parsed fault plan. Construct with [`Chaos::from_env`]; worker loops
/// consult it at each injection point.
#[derive(Debug)]
pub struct Chaos {
    marker_dir: PathBuf,
    seed: u64,
    kill_after: Option<usize>,
    appended: Cell<usize>,
    hang: Option<(usize, usize)>,
    panic: Option<(usize, usize)>,
    torn: Option<(usize, usize)>,
    corrupt: Option<(usize, usize)>,
    race: bool,
}

impl Chaos {
    /// Parses the fault plan from `QRA_CHAOS` / `QRA_CHAOS_SEED`. Returns
    /// `Ok(None)` when the variable is unset — and always in release
    /// builds, keeping chaos off every production path.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on an unparseable fault spec (chaos is a test
    /// harness; a typo must fail loudly, not silently run faultless).
    pub fn from_env(dir: &RunDir) -> Result<Option<Chaos>, OrchError> {
        if !cfg!(debug_assertions) {
            return Ok(None);
        }
        let Ok(spec) = std::env::var("QRA_CHAOS") else {
            return Ok(None);
        };
        let seed = match std::env::var("QRA_CHAOS_SEED") {
            Ok(s) => s
                .parse()
                .map_err(|_| OrchError(format!("QRA_CHAOS_SEED: not a u64: '{s}'")))?,
            Err(_) => 0,
        };
        let mut chaos = Chaos {
            marker_dir: dir.root().join("chaos"),
            seed,
            kill_after: None,
            appended: Cell::new(0),
            hang: None,
            panic: None,
            torn: None,
            corrupt: None,
            race: false,
        };
        for entry in spec.split(',').filter(|e| !e.is_empty()) {
            match entry.split_once('=') {
                None if entry == "race" => chaos.race = true,
                Some(("kill", n)) => {
                    chaos.kill_after = Some(n.parse().map_err(|_| {
                        OrchError(format!("QRA_CHAOS: bad kill count in '{entry}'"))
                    })?);
                }
                Some(("hang", coords)) => chaos.hang = Some(parse_coords(entry, coords)?),
                Some(("panic", coords)) => chaos.panic = Some(parse_coords(entry, coords)?),
                Some(("torn", coords)) => chaos.torn = Some(parse_coords(entry, coords)?),
                Some(("corrupt", coords)) => chaos.corrupt = Some(parse_coords(entry, coords)?),
                _ => {
                    return Err(OrchError(format!(
                        "QRA_CHAOS: unknown fault '{entry}' \
                         (expected kill=N, hang=P:C, panic=P:C, torn=P:C, corrupt=P:C, race)"
                    )))
                }
            }
        }
        std::fs::create_dir_all(&chaos.marker_dir)
            .map_err(|e| OrchError(format!("creating {}: {e}", chaos.marker_dir.display())))?;
        Ok(Some(chaos))
    }

    /// The scatter override: `race` forces every worker to walk the unit
    /// grid from 0 so their claims contend in lockstep.
    pub fn scatter_override(&self) -> Option<usize> {
        self.race.then_some(0)
    }

    /// Fires pre-execution faults for unit `(point, cell)`: a one-shot
    /// hang (parks forever; recovered by the monitor's unit timeout) or an
    /// every-attempt panic (the poison unit that drives quarantine).
    pub fn before_unit(&self, point: usize, cell: usize) {
        if self.hang == Some((point, cell)) && self.one_shot(&format!("hang-{point}-{cell}")) {
            loop {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
        if self.panic == Some((point, cell)) {
            panic!("chaos: injected panic at unit ({point}, {cell})");
        }
    }

    /// Appends `record` through the chaos write faults. Returns whether
    /// the unit actually committed: `torn` writes a truncated line and
    /// aborts the process (one-shot), `corrupt` writes the full line with
    /// one seeded byte flipped and lets the worker continue (one-shot,
    /// returns `false` — the record will scan as corrupt, so the unit is
    /// not done), and `kill=N` aborts after the N-th clean append.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn append(
        &self,
        stream: &mut ResultsStream,
        point: usize,
        cell: usize,
        record: &str,
    ) -> Result<bool, OrchError> {
        if self.torn == Some((point, cell)) && self.one_shot(&format!("torn-{point}-{cell}")) {
            let line = checksummed_line(record);
            let cut = 1 + (self.mix(point, cell) as usize) % (line.len() - 1);
            stream.append_raw(&line.as_bytes()[..cut])?;
            std::process::abort();
        }
        if self.corrupt == Some((point, cell)) && self.one_shot(&format!("corrupt-{point}-{cell}"))
        {
            let mut bytes = checksummed_line(record).into_bytes();
            // Flip a byte of the record body (never the leading brace or
            // the checksum splice), guaranteeing a verification mismatch.
            let idx = 1 + (self.mix(point, cell) as usize) % (record.len() - 2);
            bytes[idx] ^= 0x01;
            bytes.push(b'\n');
            stream.append_raw(&bytes)?;
            return Ok(false);
        }
        stream.append(record)?;
        if let Some(n) = self.kill_after {
            let appended = self.appended.get() + 1;
            self.appended.set(appended);
            if appended >= n {
                std::process::abort();
            }
        }
        Ok(true)
    }

    /// Wins a one-shot fault exactly once across all workers and respawns
    /// (an `O_EXCL` marker under the run dir's `chaos/`).
    fn one_shot(&self, name: &str) -> bool {
        OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.marker_dir.join(name))
            .is_ok()
    }

    /// Deterministic per-unit randomness: FNV-1a over seed ∥ point ∥ cell.
    fn mix(&self, point: usize, cell: usize) -> u64 {
        let mut buf = [0u8; 24];
        buf[..8].copy_from_slice(&self.seed.to_le_bytes());
        buf[8..16].copy_from_slice(&(point as u64).to_le_bytes());
        buf[16..].copy_from_slice(&(cell as u64).to_le_bytes());
        fnv1a(&buf)
    }
}

fn parse_coords(entry: &str, coords: &str) -> Result<(usize, usize), OrchError> {
    let bad = || {
        OrchError(format!(
            "QRA_CHAOS: bad unit coordinates in '{entry}' (want P:C)"
        ))
    };
    let (p, c) = coords.split_once(':').ok_or_else(bad)?;
    Ok((p.parse().map_err(|_| bad())?, c.parse().map_err(|_| bad())?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rundir::Manifest;

    fn tmp_rundir(tag: &str) -> (std::path::PathBuf, RunDir) {
        let root =
            std::env::temp_dir().join(format!("qra-orch-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let m = Manifest {
            argv: vec![],
            labels: vec!["a".into()],
            cells_per_point: 2,
            units_per_point: 2,
            margin: "0.02".into(),
            workers: 1,
            unit_timeout_ms: None,
            max_attempts: 3,
            hosts: vec![],
        };
        let dir = RunDir::init(&root, &m).unwrap();
        (root, dir)
    }

    // Env-var parsing is process-global, so these tests build plans
    // directly instead of racing over set_var across threads.
    fn plan(dir: &RunDir) -> Chaos {
        Chaos {
            marker_dir: dir.root().join("chaos"),
            seed: 7,
            kill_after: None,
            appended: Cell::new(0),
            hang: None,
            panic: None,
            torn: None,
            corrupt: None,
            race: false,
        }
    }

    #[test]
    fn one_shot_markers_fire_exactly_once() {
        let (root, dir) = tmp_rundir("oneshot");
        std::fs::create_dir_all(dir.root().join("chaos")).unwrap();
        let chaos = plan(&dir);
        assert!(chaos.one_shot("hang-0-1"));
        assert!(!chaos.one_shot("hang-0-1"), "second firing must lose");
        assert!(chaos.one_shot("hang-0-0"), "markers are per-name");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_append_flips_one_body_byte_deterministically() {
        let (root, dir) = tmp_rundir("corrupt");
        std::fs::create_dir_all(dir.root().join("chaos")).unwrap();
        let chaos = Chaos {
            corrupt: Some((0, 0)),
            ..plan(&dir)
        };
        let record = "{\"point\":0,\"cell\":0,\"margins\":[]}";
        let mut stream = dir.open_results_stream().unwrap();
        assert!(!chaos.append(&mut stream, 0, 0, record).unwrap());
        // One-shot: the retry of the same unit appends cleanly, so the
        // corrupt line reads as absent and the valid one completes it.
        assert!(chaos.append(&mut stream, 0, 0, record).unwrap());
        let (_, m) = RunDir::open(dir.root()).unwrap();
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.corrupt.len(), 1, "{:?}", state.corrupt);
        assert!(
            state.corrupt[0].contains("checksum mismatch"),
            "{:?}",
            state.corrupt
        );
        assert!(state.completed.contains(&0));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn seeded_mix_is_stable_per_unit() {
        let (root, dir) = tmp_rundir("mix");
        let chaos = plan(&dir);
        assert_eq!(chaos.mix(1, 2), chaos.mix(1, 2));
        assert_ne!(chaos.mix(1, 2), chaos.mix(2, 1));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn parse_coords_accepts_pairs_and_rejects_garbage() {
        assert_eq!(parse_coords("hang=1:2", "1:2").unwrap(), (1, 2));
        assert!(parse_coords("hang=1", "1").is_err());
        assert!(parse_coords("hang=x:y", "x:y").is_err());
    }
}
