//! The crash-safe run directory: the only shared state of a distributed
//! sweep.
//!
//! Layout (all under one directory, created by [`RunDir::init`]):
//!
//! ```text
//! <dir>/manifest.json      what to run (written once, temp+rename)
//! <dir>/claims/u<ID>       unit claims (O_EXCL create; wins execution)
//! <dir>/results/w<PID>.jsonl  one append-only record stream per worker
//! <dir>/progress.json      latest progress snapshot (temp+rename)
//! ```
//!
//! Crash safety rests on three properties. The manifest and progress
//! snapshots are written to a temporary name and atomically renamed, so a
//! reader never observes a torn file. Claims are created with `O_EXCL`
//! (one winner per unit) and persist for the whole run epoch, so a unit is
//! never executed twice concurrently. Each worker appends complete JSONL
//! lines to its **own** results file — named after its pid so a resumed
//! run never appends to a dead worker's stream — and a kill mid-write can
//! only tear the final, unterminated line, which [`RunDir::scan`] ignores.

use crate::OrchError;
use qra_faults::json::{self, json_str};
use qra_faults::{parse_unit_record, CellStatus, SweepUnitPayload, SweepUnitRecord};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// What a run directory executes: the sweep's canonical CLI argv plus the
/// unit-grid coordinates every worker and merger must agree on.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Canonical `qra campaign …` argv describing the sweep (file paths
    /// absolute, so workers can start in any directory).
    pub argv: Vec<String>,
    /// Point labels in sweep order.
    pub labels: Vec<String>,
    /// Campaign cells per point (`CampaignReport::total_cells`).
    pub cells_per_point: usize,
    /// Units per point: `cells_per_point`, plus one calibration unit in
    /// auto-margin mode.
    pub units_per_point: usize,
    /// The sweep's margin mode, in its CLI spelling.
    pub margin: String,
    /// Worker count the run was started with (the default for resume).
    pub workers: usize,
}

impl Manifest {
    /// Total units in the run.
    pub fn total_units(&self) -> usize {
        self.labels.len() * self.units_per_point
    }

    /// The global id of unit `(point, cell)`.
    pub fn unit_id(&self, point: usize, cell: usize) -> usize {
        point * self.units_per_point + cell
    }

    /// The `(point, cell)` coordinates of a global unit id.
    pub fn unit_coords(&self, unit: usize) -> (usize, usize) {
        (unit / self.units_per_point, unit % self.units_per_point)
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\"argv\":[");
        for (i, a) in self.argv.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(a));
        }
        out.push_str("],\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(l));
        }
        let _ = write!(
            out,
            "],\"cells_per_point\":{},\"units_per_point\":{},\"margin\":{},\"workers\":{}}}",
            self.cells_per_point,
            self.units_per_point,
            json_str(&self.margin),
            self.workers
        );
        out
    }

    fn from_json(text: &str) -> Result<Self, OrchError> {
        let root = json::parse(text).map_err(|e| OrchError(format!("manifest: {e}")))?;
        let strings = |key: &str| -> Result<Vec<String>, OrchError> {
            root.require(key)?
                .as_arr()?
                .iter()
                .map(|v| Ok(v.as_str()?.to_string()))
                .collect()
        };
        Ok(Manifest {
            argv: strings("argv")?,
            labels: strings("labels")?,
            cells_per_point: root.require("cells_per_point")?.as_usize()?,
            units_per_point: root.require("units_per_point")?.as_usize()?,
            margin: root.require("margin")?.as_str()?.to_string(),
            workers: root.require("workers")?.as_usize()?,
        })
    }
}

impl From<json::JsonError> for OrchError {
    fn from(e: json::JsonError) -> Self {
        OrchError(format!("manifest: {}", e.0))
    }
}

/// Everything the results streams currently contain.
#[derive(Debug, Default)]
pub struct ScanState {
    /// Unit ids with a completed record.
    pub completed: BTreeSet<usize>,
    /// Completed units whose campaign contains failed cells.
    pub failed: BTreeSet<usize>,
    /// Unit ids currently claimed but not completed (in-flight, or stale
    /// claims of a killed worker).
    pub in_flight: BTreeSet<usize>,
    /// All completed records, in scan order.
    pub records: Vec<SweepUnitRecord>,
    /// Unterminated trailing lines skipped (torn by a mid-write kill).
    pub torn_lines: usize,
}

/// A handle on an initialized run directory.
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> OrchError {
    OrchError(format!("{context} {}: {e}", path.display()))
}

/// Writes `content` to `path` atomically: temp file in the same directory,
/// flush, rename.
fn write_atomic(path: &Path, content: &str) -> Result<(), OrchError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
    f.write_all(content.as_bytes())
        .map_err(|e| io_err("writing", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("renaming into", path, e))
}

impl RunDir {
    /// Initializes a fresh run directory and writes its manifest.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] when the directory already holds a manifest
    /// (refusing to clobber a run) or on I/O failure.
    pub fn init(root: impl Into<PathBuf>, manifest: &Manifest) -> Result<Self, OrchError> {
        let root = root.into();
        let dir = Self { root };
        if dir.manifest_path().exists() {
            return Err(OrchError(format!(
                "{} already contains a run (manifest.json exists); \
                 use `sweep resume` or a fresh directory",
                dir.root.display()
            )));
        }
        fs::create_dir_all(dir.claims_dir())
            .map_err(|e| io_err("creating", &dir.claims_dir(), e))?;
        fs::create_dir_all(dir.results_dir())
            .map_err(|e| io_err("creating", &dir.results_dir(), e))?;
        write_atomic(&dir.manifest_path(), &manifest.to_json())?;
        Ok(dir)
    }

    /// Opens an existing run directory and reloads its manifest.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] when no manifest is present or it is
    /// malformed.
    pub fn open(root: impl Into<PathBuf>) -> Result<(Self, Manifest), OrchError> {
        let dir = Self { root: root.into() };
        let text = fs::read_to_string(dir.manifest_path())
            .map_err(|e| io_err("reading", &dir.manifest_path(), e))?;
        let manifest = Manifest::from_json(&text)?;
        Ok((dir, manifest))
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    fn claims_dir(&self) -> PathBuf {
        self.root.join("claims")
    }

    fn results_dir(&self) -> PathBuf {
        self.root.join("results")
    }

    /// The progress snapshot path.
    pub fn progress_path(&self) -> PathBuf {
        self.root.join("progress.json")
    }

    fn claim_path(&self, unit: usize) -> PathBuf {
        self.claims_dir().join(format!("u{unit}"))
    }

    /// Tries to claim `unit` for execution. Exactly one caller per run
    /// epoch wins (`O_EXCL` create); the claim persists until the claims
    /// are cleared by the next resume.
    pub fn claim(&self, unit: usize) -> bool {
        OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(self.claim_path(unit))
            .is_ok()
    }

    /// Removes claims for units without a completed record (a killed
    /// worker's leftovers). Must only be called while no workers are
    /// running — `sweep resume` does this before respawning.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure while listing or removing.
    pub fn clear_stale_claims(&self, completed: &BTreeSet<usize>) -> Result<usize, OrchError> {
        let mut cleared = 0;
        let dir = self.claims_dir();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("listing", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing", &dir, e))?;
            let Some(unit) = claim_unit_id(&entry.file_name()) else {
                continue;
            };
            if !completed.contains(&unit) {
                fs::remove_file(entry.path()).map_err(|e| io_err("removing", &entry.path(), e))?;
                cleared += 1;
            }
        }
        Ok(cleared)
    }

    /// Opens this process's own append-only results stream
    /// (`results/w<pid>.jsonl`). Pid-unique naming means a resumed run
    /// never appends to a dead worker's file, so the only possible tear is
    /// this process's own final line.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn open_results_stream(&self) -> Result<ResultsStream, OrchError> {
        let path = self
            .results_dir()
            .join(format!("w{}.jsonl", std::process::id()));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("opening", &path, e))?;
        Ok(ResultsStream { file, path })
    }

    /// Reads every results stream and the claims directory.
    ///
    /// Unterminated trailing lines (torn by a kill mid-write) are skipped
    /// and counted; a *terminated* line that fails to parse is corruption
    /// and an error.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure or a corrupt terminated record.
    pub fn scan(&self, manifest: &Manifest) -> Result<ScanState, OrchError> {
        let mut state = ScanState::default();
        let dir = self.results_dir();
        let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| io_err("listing", &dir, e))?
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| io_err("listing", &dir, e))?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let text = fs::read_to_string(&path).map_err(|e| io_err("reading", &path, e))?;
            let mut rest = text.as_str();
            while let Some(nl) = rest.find('\n') {
                let line = &rest[..nl];
                rest = &rest[nl + 1..];
                if line.trim().is_empty() {
                    continue;
                }
                let record = parse_unit_record(line)
                    .map_err(|e| OrchError(format!("corrupt record in {}: {e}", path.display())))?;
                let unit = manifest.unit_id(record.point, record.cell);
                // A unit recorded twice (two epochs racing) would also fail
                // assembly; catch it at scan time with the file named.
                if !state.completed.insert(unit) {
                    return Err(OrchError(format!(
                        "{}: duplicate record for unit ({}, {})",
                        path.display(),
                        record.point,
                        record.cell
                    )));
                }
                if unit_failed(&record) {
                    state.failed.insert(unit);
                }
                state.records.push(record);
            }
            if !rest.is_empty() {
                state.torn_lines += 1;
            }
        }

        let claims = self.claims_dir();
        for entry in fs::read_dir(&claims).map_err(|e| io_err("listing", &claims, e))? {
            let entry = entry.map_err(|e| io_err("listing", &claims, e))?;
            if let Some(unit) = claim_unit_id(&entry.file_name()) {
                if !state.completed.contains(&unit) {
                    state.in_flight.insert(unit);
                }
            }
        }
        Ok(state)
    }

    /// Atomically replaces `progress.json` with `content`.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn write_progress(&self, content: &str) -> Result<(), OrchError> {
        write_atomic(&self.progress_path(), content)
    }
}

fn claim_unit_id(name: &std::ffi::OsStr) -> Option<usize> {
    name.to_str()?.strip_prefix('u')?.parse().ok()
}

fn unit_failed(record: &SweepUnitRecord) -> bool {
    match &record.payload {
        SweepUnitPayload::Cell(parsed) => {
            let r = &parsed.report;
            r.baselines
                .iter()
                .map(|b| &b.status)
                .chain(r.cells.iter().map(|c| &c.status))
                .any(|s| matches!(s, CellStatus::Failed { .. }))
        }
        SweepUnitPayload::Margins(_) => false,
    }
}

/// A worker's own append-only record stream.
#[derive(Debug)]
pub struct ResultsStream {
    file: File,
    path: PathBuf,
}

impl ResultsStream {
    /// Appends one record as a single complete line (one `write_all` of
    /// `line + "\n"`, so a kill tears at most the final line) and flushes
    /// it to disk before the unit counts as done.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn append(&mut self, record_json: &str) -> Result<(), OrchError> {
        let mut line = String::with_capacity(record_json.len() + 1);
        line.push_str(record_json);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| io_err("appending to", &self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("syncing", &self.path, e))
    }
}

/// Renders a progress snapshot as JSON (the `progress.json` format).
pub fn progress_json(
    manifest: &Manifest,
    state: &ScanState,
    point_elapsed: &[Option<f64>],
) -> String {
    let mut out = format!(
        "{{\"total\":{},\"done\":{},\"failed\":{},\"in_flight\":{},\"points\":[",
        manifest.total_units(),
        state.completed.len(),
        state.failed.len(),
        state.in_flight.len()
    );
    for (p, label) in manifest.labels.iter().enumerate() {
        if p > 0 {
            out.push(',');
        }
        let done = state
            .completed
            .iter()
            .filter(|&&u| u / manifest.units_per_point == p)
            .count();
        let _ = write!(
            out,
            "{{\"label\":{},\"done\":{done},\"total\":{},\"elapsed_s\":{}}}",
            json_str(label),
            manifest.units_per_point,
            point_elapsed
                .get(p)
                .copied()
                .flatten()
                .map_or("null".to_string(), json::json_f64)
        );
    }
    out.push_str("]}");
    out
}

/// Reloads the counters of a `progress.json` snapshot:
/// `(done, total, failed, in_flight)`.
///
/// # Errors
///
/// Returns [`OrchError`] on malformed JSON.
pub fn parse_progress(text: &str) -> Result<(usize, usize, usize, usize), OrchError> {
    let root = json::parse(text).map_err(|e| OrchError(format!("progress.json: {e}")))?;
    Ok((
        root.require("done")?.as_usize()?,
        root.require("total")?.as_usize()?,
        root.require("failed")?.as_usize()?,
        root.require("in_flight")?.as_usize()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qra-orch-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> Manifest {
        Manifest {
            argv: vec!["campaign".into(), "--ghz".into(), "2".into()],
            labels: vec!["ideal".into(), "low".into()],
            cells_per_point: 4,
            units_per_point: 5,
            margin: "auto:3:2".into(),
            workers: 2,
        }
    }

    #[test]
    fn manifest_round_trips_and_maps_units() {
        let m = manifest();
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
        assert_eq!(m.total_units(), 10);
        assert_eq!(m.unit_id(1, 3), 8);
        assert_eq!(m.unit_coords(8), (1, 3));
    }

    #[test]
    fn init_refuses_to_clobber_and_open_reloads() {
        let root = tmpdir("init");
        let m = manifest();
        let _dir = RunDir::init(&root, &m).unwrap();
        assert!(RunDir::init(&root, &m).is_err(), "second init must refuse");
        let (_, reloaded) = RunDir::open(&root).unwrap();
        assert_eq!(reloaded, m);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn claims_are_exclusive_and_stale_ones_clear() {
        let root = tmpdir("claims");
        let dir = RunDir::init(&root, &manifest()).unwrap();
        assert!(dir.claim(3));
        assert!(!dir.claim(3), "second claim of the same unit must lose");
        assert!(dir.claim(7));
        // Unit 3 completed, 7 did not: only 7's claim is stale.
        let completed = BTreeSet::from([3]);
        assert_eq!(dir.clear_stale_claims(&completed).unwrap(), 1);
        assert!(!dir.claim(3), "completed unit keeps its claim");
        assert!(dir.claim(7), "stale claim was cleared");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_skips_torn_trailing_lines_and_flags_claims() {
        let root = tmpdir("scan");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let margin_record =
            "{\"point\":1,\"cell\":4,\"margins\":[{\"design\":\"ndd\",\"margin\":0.01}]}";
        let mut stream = dir.open_results_stream().unwrap();
        stream.append(margin_record).unwrap();
        // Simulate a kill mid-write: a torn, unterminated final line.
        let torn_path = dir.results_dir().join("w99999.jsonl");
        fs::write(&torn_path, "{\"point\":0,\"cel").unwrap();
        dir.claim(0);
        dir.claim(9);
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, BTreeSet::from([9]));
        assert_eq!(state.torn_lines, 1);
        assert_eq!(state.in_flight, BTreeSet::from([0]));
        assert!(state.failed.is_empty());
        // A terminated corrupt line is an error naming the file.
        fs::write(&torn_path, "not json\n").unwrap();
        let e = dir.scan(&m).unwrap_err();
        assert!(e.0.contains("w99999.jsonl"), "{e}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn progress_snapshot_round_trips() {
        let m = manifest();
        let mut state = ScanState::default();
        state.completed.extend([0, 1, 5]);
        state.failed.insert(1);
        state.in_flight.insert(2);
        let json = progress_json(&m, &state, &[Some(1.5), None]);
        assert!(json.contains("\"label\":\"ideal\",\"done\":2"), "{json}");
        assert!(json.contains("\"elapsed_s\":1.5"), "{json}");
        assert!(json.contains("\"elapsed_s\":null"), "{json}");
        assert_eq!(parse_progress(&json).unwrap(), (3, 10, 1, 1));
    }
}
