//! The crash-safe run directory: the only shared state of a distributed
//! sweep.
//!
//! Layout (all under one directory, created by [`RunDir::init`]):
//!
//! ```text
//! <dir>/manifest.json      what to run (written once, temp+rename)
//! <dir>/claims/u<ID>       unit leases (O_EXCL create; pid + heartbeat mtime)
//! <dir>/attempts/u<ID>.<N> one marker per failed attempt (content = reason)
//! <dir>/results/w<PID>.jsonl  one append-only record stream per worker
//! <dir>/progress.json      latest progress snapshot (temp+rename)
//! ```
//!
//! Crash safety rests on four properties. The manifest and progress
//! snapshots are written to a temporary name and atomically renamed, so a
//! reader never observes a torn file. Claims are leases created with
//! `O_EXCL` (one winner per unit) carrying the owner's pid and a heartbeat
//! mtime, and persist for the whole run epoch, so a unit is never executed
//! twice concurrently. Each worker appends complete JSONL lines to its
//! **own** results file — named after its pid so a resumed run never
//! appends to a dead worker's stream — and a kill mid-write can only tear
//! the final, unterminated line, which [`RunDir::scan`] ignores. Finally,
//! every record line carries a trailing FNV-1a checksum written at append
//! time; `scan` verifies it and treats a corrupt mid-file record as absent
//! (the unit is re-runnable) rather than silently parsing or failing the
//! whole run.

use crate::lease::{self, Lease};
use crate::OrchError;
use qra_faults::json::{self, json_str, Json};
use qra_faults::{parse_unit_record, CellStatus, SweepUnitPayload, SweepUnitRecord};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Default number of attempts before a unit is quarantined
/// (`--max-attempts`).
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// The attempt reason recorded when a unit's owner died (or was killed)
/// without recording the unit. Used identically by the mid-epoch monitor
/// reclaim and the epoch-boundary stale-claim sweep, so a poison unit's
/// quarantined attempt history is byte-identical regardless of worker
/// count, kill timing, or which mechanism observed each death.
pub const ATTEMPT_REASON_DIED: &str = "worker died before recording the unit";

/// The host label for workers running on the orchestrator's own machine.
/// Local streams keep the legacy unlabelled `w<pid>.jsonl` name.
pub const LOCAL_HOST: &str = "local";

/// Extracts the worker host label from a results-stream file name:
/// `w<pid>.jsonl` is [`LOCAL_HOST`], `w<pid>.<host>.jsonl` is `<host>`.
/// `None` for names no stream writer produces.
pub fn stream_host(file_name: &str) -> Option<&str> {
    let stem = file_name.strip_prefix('w')?.strip_suffix(".jsonl")?;
    match stem.split_once('.') {
        None => {
            stem.parse::<u64>().ok()?;
            Some(LOCAL_HOST)
        }
        Some((pid, host)) => {
            pid.parse::<u64>().ok()?;
            (!host.is_empty()).then_some(host)
        }
    }
}

/// What a run directory executes: the sweep's canonical CLI argv plus the
/// unit-grid coordinates every worker and merger must agree on.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Canonical `qra campaign …` argv describing the sweep (file paths
    /// absolute, so workers can start in any directory).
    pub argv: Vec<String>,
    /// Point labels in sweep order.
    pub labels: Vec<String>,
    /// Campaign cells per point (`CampaignReport::total_cells`).
    pub cells_per_point: usize,
    /// Units per point: `cells_per_point`, plus one calibration unit in
    /// auto-margin mode.
    pub units_per_point: usize,
    /// The sweep's margin mode, in its CLI spelling.
    pub margin: String,
    /// Worker count the run was started with (the default for resume).
    pub workers: usize,
    /// Per-unit execution deadline in milliseconds (`--unit-timeout`);
    /// `None` disables stalled-lease detection.
    pub unit_timeout_ms: Option<u64>,
    /// Attempts before a unit is quarantined (`--max-attempts`); 0
    /// disables quarantine.
    pub max_attempts: u32,
    /// Worker host labels (`--hosts`); empty means local-only. Hosts
    /// named `local` (or prefixed `local`) spawn workers directly — the
    /// rest are reached over ssh, assuming the run directory sits on a
    /// shared mount and the `qra` binary path is valid on every host.
    pub hosts: Vec<String>,
}

impl Manifest {
    /// Total units in the run.
    pub fn total_units(&self) -> usize {
        self.labels.len() * self.units_per_point
    }

    /// The global id of unit `(point, cell)`.
    pub fn unit_id(&self, point: usize, cell: usize) -> usize {
        point * self.units_per_point + cell
    }

    /// The `(point, cell)` coordinates of a global unit id.
    pub fn unit_coords(&self, unit: usize) -> (usize, usize) {
        (unit / self.units_per_point, unit % self.units_per_point)
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\"argv\":[");
        for (i, a) in self.argv.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(a));
        }
        out.push_str("],\"labels\":[");
        for (i, l) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(l));
        }
        let _ = write!(
            out,
            "],\"cells_per_point\":{},\"units_per_point\":{},\"margin\":{},\"workers\":{},\
             \"unit_timeout_ms\":{},\"max_attempts\":{},\"hosts\":[",
            self.cells_per_point,
            self.units_per_point,
            json_str(&self.margin),
            self.workers,
            self.unit_timeout_ms
                .map_or("null".to_string(), |ms| ms.to_string()),
            self.max_attempts
        );
        for (i, h) in self.hosts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(h));
        }
        out.push_str("]}");
        out
    }

    fn from_json(text: &str) -> Result<Self, OrchError> {
        let root = json::parse(text).map_err(|e| OrchError(format!("manifest: {e}")))?;
        let strings = |key: &str| -> Result<Vec<String>, OrchError> {
            root.require(key)?
                .as_arr()?
                .iter()
                .map(|v| Ok(v.as_str()?.to_string()))
                .collect()
        };
        Ok(Manifest {
            argv: strings("argv")?,
            labels: strings("labels")?,
            cells_per_point: root.require("cells_per_point")?.as_usize()?,
            units_per_point: root.require("units_per_point")?.as_usize()?,
            margin: root.require("margin")?.as_str()?.to_string(),
            workers: root.require("workers")?.as_usize()?,
            // Absent in pre-lease manifests: keep those resumable.
            unit_timeout_ms: match root.get("unit_timeout_ms") {
                None | Some(Json::Null) => None,
                Some(v) => Some(v.as_u64()?),
            },
            max_attempts: match root.get("max_attempts") {
                None => DEFAULT_MAX_ATTEMPTS,
                Some(v) => u32::try_from(v.as_u64()?)
                    .map_err(|_| OrchError("manifest: max_attempts out of range".into()))?,
            },
            // Absent in pre-multi-host manifests: those runs are local.
            hosts: match root.get("hosts") {
                None => Vec::new(),
                Some(v) => v
                    .as_arr()?
                    .iter()
                    .map(|h| Ok(h.as_str()?.to_string()))
                    .collect::<Result<_, OrchError>>()?,
            },
        })
    }
}

impl From<json::JsonError> for OrchError {
    fn from(e: json::JsonError) -> Self {
        OrchError(format!("manifest: {}", e.0))
    }
}

/// Everything the results streams currently contain.
#[derive(Debug, Default)]
pub struct ScanState {
    /// Unit ids with a completed record.
    pub completed: BTreeSet<usize>,
    /// Completed units whose campaign contains failed cells.
    pub failed: BTreeSet<usize>,
    /// Unit ids currently claimed but not completed (in-flight, or stale
    /// claims of a killed worker).
    pub in_flight: BTreeSet<usize>,
    /// Completed units whose record is a quarantine annotation (the unit
    /// exhausted its attempts and was recorded as a named skip).
    pub quarantined: BTreeSet<usize>,
    /// All completed records, in scan order.
    pub records: Vec<SweepUnitRecord>,
    /// Unterminated trailing lines skipped (torn by a mid-write kill).
    pub torn_lines: usize,
    /// Corrupt terminated lines, each reported with its file, line number
    /// and checksum details. A corrupt record is treated as absent — its
    /// unit stays re-runnable — never silently parsed and never fatal.
    pub corrupt: Vec<String>,
    /// Completed-unit count per worker host (stream-name attribution);
    /// local-only runs report everything under [`LOCAL_HOST`].
    pub host_done: BTreeMap<String, usize>,
}

/// A handle on an initialized run directory.
#[derive(Debug, Clone)]
pub struct RunDir {
    root: PathBuf,
}

fn io_err(context: &str, path: &Path, e: std::io::Error) -> OrchError {
    OrchError(format!("{context} {}: {e}", path.display()))
}

/// Writes `content` to `path` atomically: temp file in the same directory,
/// flush, rename.
fn write_atomic(path: &Path, content: &str) -> Result<(), OrchError> {
    let tmp = path.with_extension("tmp");
    let mut f = File::create(&tmp).map_err(|e| io_err("creating", &tmp, e))?;
    f.write_all(content.as_bytes())
        .map_err(|e| io_err("writing", &tmp, e))?;
    f.sync_all().map_err(|e| io_err("syncing", &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_err("renaming into", path, e))
}

impl RunDir {
    /// Initializes a fresh run directory and writes its manifest.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] when the directory already holds a manifest
    /// (refusing to clobber a run) or on I/O failure.
    pub fn init(root: impl Into<PathBuf>, manifest: &Manifest) -> Result<Self, OrchError> {
        let root = root.into();
        let dir = Self { root };
        if dir.manifest_path().exists() {
            return Err(OrchError(format!(
                "{} already contains a run (manifest.json exists); \
                 use `sweep resume` or a fresh directory",
                dir.root.display()
            )));
        }
        fs::create_dir_all(dir.claims_dir())
            .map_err(|e| io_err("creating", &dir.claims_dir(), e))?;
        fs::create_dir_all(dir.results_dir())
            .map_err(|e| io_err("creating", &dir.results_dir(), e))?;
        fs::create_dir_all(dir.attempts_dir())
            .map_err(|e| io_err("creating", &dir.attempts_dir(), e))?;
        write_atomic(&dir.manifest_path(), &manifest.to_json())?;
        Ok(dir)
    }

    /// Opens an existing run directory and reloads its manifest.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] when no manifest is present or it is
    /// malformed.
    pub fn open(root: impl Into<PathBuf>) -> Result<(Self, Manifest), OrchError> {
        let dir = Self { root: root.into() };
        let text = fs::read_to_string(dir.manifest_path())
            .map_err(|e| io_err("reading", &dir.manifest_path(), e))?;
        let manifest = Manifest::from_json(&text)?;
        Ok((dir, manifest))
    }

    /// The directory root.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn manifest_path(&self) -> PathBuf {
        self.root.join("manifest.json")
    }

    fn claims_dir(&self) -> PathBuf {
        self.root.join("claims")
    }

    fn results_dir(&self) -> PathBuf {
        self.root.join("results")
    }

    fn attempts_dir(&self) -> PathBuf {
        self.root.join("attempts")
    }

    /// The progress snapshot path.
    pub fn progress_path(&self) -> PathBuf {
        self.root.join("progress.json")
    }

    fn claim_path(&self, unit: usize) -> PathBuf {
        self.claims_dir().join(format!("u{unit}"))
    }

    fn attempt_path(&self, unit: usize, n: usize) -> PathBuf {
        self.attempts_dir().join(format!("u{unit}.{n}"))
    }

    /// Tries to claim `unit` for execution, acquiring its lease (pid +
    /// heartbeat mtime). Exactly one caller per run epoch wins (`O_EXCL`
    /// create); the lease persists until the monitor reclaims the unit or
    /// the claims are cleared by the next resume.
    pub fn claim(&self, unit: usize) -> bool {
        lease::acquire(&self.claim_path(unit))
    }

    /// Reads `unit`'s lease; `None` when the unit is unclaimed.
    pub fn lease(&self, unit: usize) -> Option<Lease> {
        lease::read(&self.claim_path(unit))
    }

    /// Marks `unit`'s lease failed: the owner observed the unit fail and
    /// already recorded the attempt, so reclaim must not count another.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure (including a missing lease).
    pub fn mark_claim_failed(&self, unit: usize) -> Result<(), OrchError> {
        lease::mark_failed(&self.claim_path(unit))
    }

    /// Releases `unit`'s lease so another worker can reclaim it. Only the
    /// monitor (after killing/observing the owner's death) and the
    /// stale-claim sweep may call this.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn release_claim(&self, unit: usize) -> Result<(), OrchError> {
        let path = self.claim_path(unit);
        fs::remove_file(&path).map_err(|e| io_err("releasing", &path, e))
    }

    /// How many failed attempts `unit` has accumulated.
    pub fn attempt_count(&self, unit: usize) -> usize {
        let mut n = 0;
        while self.attempt_path(unit, n + 1).exists() {
            n += 1;
        }
        n
    }

    /// Records one failed attempt for `unit` with its reason, returning
    /// the attempt's 1-based number. Markers are `O_EXCL`-created so two
    /// racing recorders never overwrite each other's reason.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn record_attempt(&self, unit: usize, reason: &str) -> Result<usize, OrchError> {
        // Pre-lease run dirs have no attempts/; create it lazily.
        fs::create_dir_all(self.attempts_dir())
            .map_err(|e| io_err("creating", &self.attempts_dir(), e))?;
        let mut n = self.attempt_count(unit) + 1;
        loop {
            let path = self.attempt_path(unit, n);
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    f.write_all(reason.as_bytes())
                        .map_err(|e| io_err("writing", &path, e))?;
                    f.sync_all().map_err(|e| io_err("syncing", &path, e))?;
                    return Ok(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => n += 1,
                Err(e) => return Err(io_err("creating", &path, e)),
            }
        }
    }

    /// The recorded attempt reasons for `unit`, in attempt order.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn attempt_reasons(&self, unit: usize) -> Result<Vec<String>, OrchError> {
        (1..=self.attempt_count(unit))
            .map(|n| {
                let path = self.attempt_path(unit, n);
                fs::read_to_string(&path).map_err(|e| io_err("reading", &path, e))
            })
            .collect()
    }

    /// Removes leases of units without a completed record (a killed
    /// worker's leftovers), recording one attempt per *abandoned* lease —
    /// one whose owner did not mark it failed (a failed lease's attempt
    /// was already recorded by its owner). Must only be called while no
    /// workers are running — `sweep resume` and the epoch retry loop do
    /// this before respawning.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure while listing or removing.
    pub fn clear_stale_claims(&self, completed: &BTreeSet<usize>) -> Result<usize, OrchError> {
        let mut cleared = 0;
        let dir = self.claims_dir();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("listing", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing", &dir, e))?;
            let Some(unit) = claim_unit_id(&entry.file_name()) else {
                continue;
            };
            if !completed.contains(&unit) {
                if self.lease(unit).is_some_and(|l| !l.failed) {
                    self.record_attempt(unit, ATTEMPT_REASON_DIED)?;
                }
                fs::remove_file(entry.path()).map_err(|e| io_err("removing", &entry.path(), e))?;
                cleared += 1;
            }
        }
        Ok(cleared)
    }

    /// Opens this process's own append-only results stream
    /// (`results/w<pid>.jsonl`). Pid-unique naming means a resumed run
    /// never appends to a dead worker's file, so the only possible tear is
    /// this process's own final line.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn open_results_stream(&self) -> Result<ResultsStream, OrchError> {
        self.open_results_stream_for(LOCAL_HOST)
    }

    /// Opens this process's results stream labelled with a worker host
    /// (`results/w<pid>.<host>.jsonl`); the label feeds per-host progress
    /// attribution. [`LOCAL_HOST`] keeps the legacy `w<pid>.jsonl` name,
    /// so local-only runs are byte-compatible with older run dirs. Pids
    /// from different hosts may collide, but the host label keeps the
    /// file names distinct.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn open_results_stream_for(&self, host: &str) -> Result<ResultsStream, OrchError> {
        let name = if host == LOCAL_HOST {
            format!("w{}.jsonl", std::process::id())
        } else {
            format!("w{}.{host}.jsonl", std::process::id())
        };
        let path = self.results_dir().join(name);
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("opening", &path, e))?;
        Ok(ResultsStream { file, path })
    }

    /// Reads every results stream and the claims directory.
    ///
    /// Unterminated trailing lines (torn by a kill mid-write) are skipped
    /// and counted. A *terminated* line whose checksum does not verify, or
    /// that fails to parse, is corruption: it is reported in
    /// [`ScanState::corrupt`] (file, line, both checksums) and treated as
    /// absent, so the unit stays re-runnable. Duplicate *valid* records
    /// for one unit remain fatal — they mean two epochs raced.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure or a duplicate valid record.
    pub fn scan(&self, manifest: &Manifest) -> Result<ScanState, OrchError> {
        let mut state = ScanState::default();
        let dir = self.results_dir();
        let mut paths: Vec<PathBuf> = fs::read_dir(&dir)
            .map_err(|e| io_err("listing", &dir, e))?
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| io_err("listing", &dir, e))?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .collect();
        paths.sort();
        for path in paths {
            let host = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(stream_host)
                .unwrap_or(LOCAL_HOST)
                .to_string();
            let text = fs::read_to_string(&path).map_err(|e| io_err("reading", &path, e))?;
            let mut rest = text.as_str();
            let mut line_no = 0usize;
            while let Some(nl) = rest.find('\n') {
                let line = &rest[..nl];
                rest = &rest[nl + 1..];
                line_no += 1;
                if line.trim().is_empty() {
                    continue;
                }
                let body = match strip_checksum(line) {
                    Ok(body) => body,
                    Err(msg) => {
                        state
                            .corrupt
                            .push(format!("{} line {line_no}: {msg}", path.display()));
                        continue;
                    }
                };
                let record = match parse_unit_record(&body) {
                    Ok(record) => record,
                    Err(e) => {
                        state.corrupt.push(format!(
                            "{} line {line_no}: unparseable record: {e}",
                            path.display()
                        ));
                        continue;
                    }
                };
                let unit = manifest.unit_id(record.point, record.cell);
                // A unit recorded twice (two epochs racing) would also fail
                // assembly; catch it at scan time with the file named.
                if !state.completed.insert(unit) {
                    return Err(OrchError(format!(
                        "{}: duplicate record for unit ({}, {})",
                        path.display(),
                        record.point,
                        record.cell
                    )));
                }
                if record.quarantined.is_some() {
                    state.quarantined.insert(unit);
                }
                if unit_failed(&record) {
                    state.failed.insert(unit);
                }
                *state.host_done.entry(host.clone()).or_insert(0) += 1;
                state.records.push(record);
            }
            if !rest.is_empty() {
                state.torn_lines += 1;
            }
        }

        let claims = self.claims_dir();
        for entry in fs::read_dir(&claims).map_err(|e| io_err("listing", &claims, e))? {
            let entry = entry.map_err(|e| io_err("listing", &claims, e))?;
            if let Some(unit) = claim_unit_id(&entry.file_name()) {
                if !state.completed.contains(&unit) {
                    state.in_flight.insert(unit);
                }
            }
        }
        Ok(state)
    }

    /// Atomically replaces `progress.json` with `content`.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn write_progress(&self, content: &str) -> Result<(), OrchError> {
        write_atomic(&self.progress_path(), content)
    }
}

fn claim_unit_id(name: &std::ffi::OsStr) -> Option<usize> {
    name.to_str()?.strip_prefix('u')?.parse().ok()
}

fn unit_failed(record: &SweepUnitRecord) -> bool {
    match &record.payload {
        SweepUnitPayload::Cell(parsed) => {
            let r = &parsed.report;
            r.baselines
                .iter()
                .map(|b| &b.status)
                .chain(r.cells.iter().map(|c| &c.status))
                .any(|s| matches!(s, CellStatus::Failed { .. }))
        }
        SweepUnitPayload::Margins(_) => false,
    }
}

/// FNV-1a 64-bit over `bytes` (offset 0xcbf29ce484222325, prime
/// 0x100000001b3) — the record checksum function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Wraps a record JSON object with its trailing checksum field: the
/// FNV-1a of the *original* record is spliced in as
/// `,"fnv":"<16 hex digits>"` before the closing brace. [`RunDir::scan`]
/// strips and verifies it.
pub fn checksummed_line(record_json: &str) -> String {
    let Some(body) = record_json.strip_suffix('}') else {
        return record_json.to_string();
    };
    format!(
        "{body},\"fnv\":\"{:016x}\"}}",
        fnv1a(record_json.as_bytes())
    )
}

/// Strips and verifies a line's trailing checksum, returning the original
/// record JSON. Lines without a checksum field (pre-checksum streams,
/// hand-written test records) pass through unverified. The error is the
/// human-readable corruption report (checksum mismatch with both values,
/// or a malformed checksum field).
fn strip_checksum(line: &str) -> Result<String, String> {
    const KEY: &str = ",\"fnv\":\"";
    let Some(pos) = line.rfind(KEY) else {
        return Ok(line.to_string());
    };
    let tail = &line[pos + KEY.len()..];
    let hex = tail
        .strip_suffix("\"}")
        .filter(|h| h.len() == 16)
        .ok_or_else(|| "malformed checksum field".to_string())?;
    let recorded =
        u64::from_str_radix(hex, 16).map_err(|_| "malformed checksum field".to_string())?;
    let mut body = String::with_capacity(pos + 1);
    body.push_str(&line[..pos]);
    body.push('}');
    let computed = fnv1a(body.as_bytes());
    if computed != recorded {
        return Err(format!(
            "checksum mismatch (recorded {recorded:016x}, computed {computed:016x})"
        ));
    }
    Ok(body)
}

/// A worker's own append-only record stream.
#[derive(Debug)]
pub struct ResultsStream {
    file: File,
    path: PathBuf,
}

impl ResultsStream {
    /// Appends one record — framed with its trailing FNV-1a checksum — as
    /// a single complete line (one `write_all` of `line + "\n"`, so a kill
    /// tears at most the final line) and flushes it to disk before the
    /// unit counts as done.
    ///
    /// # Errors
    ///
    /// Returns [`OrchError`] on I/O failure.
    pub fn append(&mut self, record_json: &str) -> Result<(), OrchError> {
        let mut line = checksummed_line(record_json);
        line.push('\n');
        self.write_bytes(line.as_bytes())
    }

    /// Appends pre-rendered bytes verbatim — no checksum framing, no
    /// trailing newline. The chaos layer uses this to inject torn and
    /// corrupt lines; production code never should.
    pub fn append_raw(&mut self, bytes: &[u8]) -> Result<(), OrchError> {
        self.write_bytes(bytes)
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), OrchError> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err("appending to", &self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("syncing", &self.path, e))
    }
}

/// Renders a progress snapshot as JSON (the `progress.json` format).
pub fn progress_json(
    manifest: &Manifest,
    state: &ScanState,
    point_elapsed: &[Option<f64>],
) -> String {
    let mut out = format!(
        "{{\"total\":{},\"done\":{},\"failed\":{},\"in_flight\":{},\"quarantined\":{},\"points\":[",
        manifest.total_units(),
        state.completed.len(),
        state.failed.len(),
        state.in_flight.len(),
        state.quarantined.len()
    );
    for (p, label) in manifest.labels.iter().enumerate() {
        if p > 0 {
            out.push(',');
        }
        let done = state
            .completed
            .iter()
            .filter(|&&u| u / manifest.units_per_point == p)
            .count();
        let _ = write!(
            out,
            "{{\"label\":{},\"done\":{done},\"total\":{},\"elapsed_s\":{}}}",
            json_str(label),
            manifest.units_per_point,
            point_elapsed
                .get(p)
                .copied()
                .flatten()
                .map_or("null".to_string(), json::json_f64)
        );
    }
    // Per-host attribution: which worker host completed how many units
    // (BTreeMap order keeps the rendering deterministic).
    out.push_str("],\"hosts\":[");
    for (i, (host, done)) in state.host_done.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"host\":{},\"done\":{done}}}", json_str(host));
    }
    out.push_str("]}");
    out
}

/// Reloads the counters of a `progress.json` snapshot:
/// `(done, total, failed, in_flight)`.
///
/// # Errors
///
/// Returns [`OrchError`] on malformed JSON.
pub fn parse_progress(text: &str) -> Result<(usize, usize, usize, usize), OrchError> {
    let root = json::parse(text).map_err(|e| OrchError(format!("progress.json: {e}")))?;
    Ok((
        root.require("done")?.as_usize()?,
        root.require("total")?.as_usize()?,
        root.require("failed")?.as_usize()?,
        root.require("in_flight")?.as_usize()?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qra-orch-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn manifest() -> Manifest {
        Manifest {
            argv: vec!["campaign".into(), "--ghz".into(), "2".into()],
            labels: vec!["ideal".into(), "low".into()],
            cells_per_point: 4,
            units_per_point: 5,
            margin: "auto:3:2".into(),
            workers: 2,
            unit_timeout_ms: Some(1500),
            max_attempts: 3,
            hosts: vec![],
        }
    }

    #[test]
    fn manifest_round_trips_and_maps_units() {
        let m = manifest();
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
        assert_eq!(m.total_units(), 10);
        assert_eq!(m.unit_id(1, 3), 8);
        assert_eq!(m.unit_coords(8), (1, 3));
        // No timeout serializes as null and round-trips.
        let m = Manifest {
            unit_timeout_ms: None,
            ..manifest()
        };
        assert!(m.to_json().contains("\"unit_timeout_ms\":null"));
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
        // Pre-lease manifests (no timeout/attempt/host fields) still load.
        let legacy = "{\"argv\":[],\"labels\":[\"a\"],\"cells_per_point\":1,\
                      \"units_per_point\":1,\"margin\":\"0.02\",\"workers\":1}";
        let m = Manifest::from_json(legacy).unwrap();
        assert_eq!(m.unit_timeout_ms, None);
        assert_eq!(m.max_attempts, DEFAULT_MAX_ATTEMPTS);
        assert!(m.hosts.is_empty(), "pre-multi-host manifests are local");
        // A host list round-trips.
        let m = Manifest {
            hosts: vec!["localA".into(), "node7".into()],
            ..manifest()
        };
        assert!(m.to_json().contains("\"hosts\":[\"localA\",\"node7\"]"));
        assert_eq!(Manifest::from_json(&m.to_json()).unwrap(), m);
    }

    #[test]
    fn stream_host_parses_worker_stream_names() {
        assert_eq!(stream_host("w123.jsonl"), Some(LOCAL_HOST));
        assert_eq!(stream_host("w123.hostA.jsonl"), Some("hostA"));
        assert_eq!(stream_host("w9.local.jsonl"), Some("local"));
        assert_eq!(stream_host("w123.jsonl.tmp"), None);
        assert_eq!(stream_host("wabc.jsonl"), None, "pid must be numeric");
        assert_eq!(stream_host("wabc.hostA.jsonl"), None);
        assert_eq!(stream_host("w123..jsonl"), None, "empty host label");
        assert_eq!(stream_host("progress.json"), None);
        assert_eq!(stream_host("u12"), None);
    }

    #[test]
    fn init_refuses_to_clobber_and_open_reloads() {
        let root = tmpdir("init");
        let m = manifest();
        let _dir = RunDir::init(&root, &m).unwrap();
        assert!(RunDir::init(&root, &m).is_err(), "second init must refuse");
        let (_, reloaded) = RunDir::open(&root).unwrap();
        assert_eq!(reloaded, m);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn claims_are_exclusive_and_stale_ones_clear() {
        let root = tmpdir("claims");
        let dir = RunDir::init(&root, &manifest()).unwrap();
        assert!(dir.claim(3));
        assert!(!dir.claim(3), "second claim of the same unit must lose");
        assert!(dir.claim(7));
        let lease = dir.lease(7).unwrap();
        assert_eq!(lease.pid, std::process::id());
        // Unit 3 completed, 7 did not: only 7's claim is stale, and its
        // abandoned lease costs the unit one attempt.
        let completed = BTreeSet::from([3]);
        assert_eq!(dir.clear_stale_claims(&completed).unwrap(), 1);
        assert!(!dir.claim(3), "completed unit keeps its claim");
        assert!(dir.claim(7), "stale claim was cleared");
        assert_eq!(dir.attempt_count(7), 1);
        assert_eq!(dir.attempt_reasons(7).unwrap(), vec![ATTEMPT_REASON_DIED]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn failed_leases_clear_without_an_extra_attempt() {
        let root = tmpdir("failed-lease");
        let dir = RunDir::init(&root, &manifest()).unwrap();
        assert!(dir.claim(2));
        // The worker observed the failure and recorded the attempt itself.
        dir.record_attempt(2, "backend exploded").unwrap();
        dir.mark_claim_failed(2).unwrap();
        assert_eq!(dir.clear_stale_claims(&BTreeSet::new()).unwrap(), 1);
        assert_eq!(dir.attempt_count(2), 1, "no double-counted attempt");
        assert_eq!(dir.attempt_reasons(2).unwrap(), vec!["backend exploded"]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn attempts_accumulate_in_order() {
        let root = tmpdir("attempts");
        let dir = RunDir::init(&root, &manifest()).unwrap();
        assert_eq!(dir.attempt_count(4), 0);
        assert_eq!(dir.record_attempt(4, "first").unwrap(), 1);
        assert_eq!(dir.record_attempt(4, "second").unwrap(), 2);
        assert_eq!(dir.attempt_count(4), 2);
        assert_eq!(dir.attempt_reasons(4).unwrap(), vec!["first", "second"]);
        assert_eq!(dir.attempt_count(5), 0, "attempts are per-unit");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn checksummed_lines_round_trip_and_catch_tampering() {
        let record = "{\"point\":1,\"cell\":4,\"margins\":[]}";
        let line = checksummed_line(record);
        assert!(line.contains(",\"fnv\":\""), "{line}");
        assert_eq!(strip_checksum(&line).unwrap(), record);
        // Flip one byte of the body: the mismatch names both checksums.
        let tampered = line.replacen("\"cell\":4", "\"cell\":5", 1);
        let e = strip_checksum(&tampered).unwrap_err();
        assert!(e.contains("checksum mismatch (recorded"), "{e}");
        assert!(e.contains("computed"), "{e}");
        // A line without a checksum passes through unverified.
        assert_eq!(strip_checksum(record).unwrap(), record);
        // A mangled checksum field is corruption, not a legacy line.
        let mangled = line.replace(",\"fnv\":\"", ",\"fnv\":\"zz");
        assert!(strip_checksum(&mangled).unwrap_err().contains("malformed"));
    }

    #[test]
    fn scan_skips_torn_trailing_lines_and_flags_claims() {
        let root = tmpdir("scan");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let margin_record =
            "{\"point\":1,\"cell\":4,\"margins\":[{\"design\":\"ndd\",\"margin\":0.01}]}";
        let mut stream = dir.open_results_stream().unwrap();
        stream.append(margin_record).unwrap();
        // Simulate a kill mid-write: a torn, unterminated final line.
        let torn_path = dir.results_dir().join("w99999.jsonl");
        fs::write(&torn_path, "{\"point\":0,\"cel").unwrap();
        dir.claim(0);
        dir.claim(9);
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, BTreeSet::from([9]));
        assert_eq!(state.torn_lines, 1);
        assert_eq!(state.in_flight, BTreeSet::from([0]));
        assert!(state.failed.is_empty());
        assert!(state.corrupt.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_reports_corrupt_mid_file_records_as_absent() {
        let root = tmpdir("corrupt");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let record = |unit: usize| {
            let (p, c) = m.unit_coords(unit);
            format!("{{\"point\":{p},\"cell\":{c},\"margins\":[]}}")
        };
        // A valid record, a checksummed-but-tampered record, an
        // unparseable terminated line, then another valid record — the
        // corruption is mid-file, not trailing.
        let corrupt_line = checksummed_line(&record(1)).replacen("\"margins\"", "\"margxns\"", 1);
        let text = format!(
            "{}\n{corrupt_line}\nnot json at all\n{}\n",
            checksummed_line(&record(0)),
            checksummed_line(&record(2))
        );
        fs::write(dir.results_dir().join("w1.jsonl"), text).unwrap();
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, BTreeSet::from([0, 2]));
        assert_eq!(state.corrupt.len(), 2, "{:?}", state.corrupt);
        assert!(
            state.corrupt[0].contains("w1.jsonl line 2"),
            "{:?}",
            state.corrupt
        );
        assert!(
            state.corrupt[0].contains("checksum mismatch (recorded"),
            "{:?}",
            state.corrupt
        );
        assert!(
            state.corrupt[1].contains("w1.jsonl line 3"),
            "{:?}",
            state.corrupt
        );
        assert!(
            state.corrupt[1].contains("unparseable record"),
            "{:?}",
            state.corrupt
        );
        // The corrupt unit is absent, hence re-runnable: a fresh record
        // for it is not a duplicate.
        dir.open_results_stream()
            .unwrap()
            .append(&record(1))
            .unwrap();
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, BTreeSet::from([0, 1, 2]));
        // A duplicate *valid* record stays fatal.
        dir.open_results_stream()
            .unwrap()
            .append(&record(0))
            .unwrap();
        let e = dir.scan(&m).unwrap_err();
        assert!(e.0.contains("duplicate record"), "{e}");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_tolerates_truncated_records_mid_stream() {
        let root = tmpdir("truncated");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        // A record truncated *but terminated* (e.g. a filesystem that
        // dropped bytes yet kept the newline) is corrupt, not fatal.
        let full = checksummed_line("{\"point\":0,\"cell\":0,\"margins\":[]}");
        let truncated = &full[..full.len() / 2];
        let text = format!(
            "{truncated}\n{}\n",
            checksummed_line("{\"point\":0,\"cell\":1,\"margins\":[]}")
        );
        fs::write(dir.results_dir().join("w7.jsonl"), text).unwrap();
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, BTreeSet::from([1]));
        assert_eq!(state.corrupt.len(), 1, "{:?}", state.corrupt);
        assert!(state.corrupt[0].contains("line 1"), "{:?}", state.corrupt);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn scan_attributes_completed_units_to_stream_hosts() {
        let root = tmpdir("hosts");
        let m = manifest();
        let dir = RunDir::init(&root, &m).unwrap();
        let record = |unit: usize| {
            let (p, c) = m.unit_coords(unit);
            format!("{{\"point\":{p},\"cell\":{c},\"margins\":[]}}")
        };
        // Two labelled host streams plus one legacy local stream.
        let mut a = dir.open_results_stream_for("hostA").unwrap();
        a.append(&record(0)).unwrap();
        a.append(&record(1)).unwrap();
        dir.open_results_stream_for("hostB")
            .unwrap()
            .append(&record(2))
            .unwrap();
        dir.open_results_stream()
            .unwrap()
            .append(&record(3))
            .unwrap();
        let state = dir.scan(&m).unwrap();
        assert_eq!(state.completed, BTreeSet::from([0, 1, 2, 3]));
        assert_eq!(
            state.host_done,
            BTreeMap::from([
                ("hostA".to_string(), 2),
                ("hostB".to_string(), 1),
                (LOCAL_HOST.to_string(), 1),
            ])
        );
        let json = progress_json(&m, &state, &[None, None]);
        assert!(
            json.contains(
                "\"hosts\":[{\"host\":\"hostA\",\"done\":2},\
                 {\"host\":\"hostB\",\"done\":1},{\"host\":\"local\",\"done\":1}]"
            ),
            "{json}"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn progress_snapshot_round_trips() {
        let m = manifest();
        let mut state = ScanState::default();
        state.completed.extend([0, 1, 5]);
        state.failed.insert(1);
        state.in_flight.insert(2);
        state.quarantined.insert(5);
        let json = progress_json(&m, &state, &[Some(1.5), None]);
        assert!(json.contains("\"label\":\"ideal\",\"done\":2"), "{json}");
        assert!(json.contains("\"quarantined\":1"), "{json}");
        assert!(json.contains("\"elapsed_s\":1.5"), "{json}");
        assert!(json.contains("\"elapsed_s\":null"), "{json}");
        assert_eq!(parse_progress(&json).unwrap(), (3, 10, 1, 1));
    }

    #[test]
    fn parse_progress_rejects_malformed_json() {
        assert!(parse_progress("not json").is_err());
        assert!(parse_progress("").is_err());
        assert!(parse_progress("{\"done\":1}").is_err(), "missing keys");
        assert!(
            parse_progress("{\"done\":\"x\",\"total\":1,\"failed\":0,\"in_flight\":0}").is_err(),
            "ill-typed counter"
        );
        assert!(
            parse_progress("{\"done\":1,\"total\":2,\"failed\":0,").is_err(),
            "truncated"
        );
    }
}
