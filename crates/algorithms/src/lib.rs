//! Quantum algorithm workloads for the `qra` assertion case studies.
//!
//! These are the programs the paper debugs with assertions: entangled
//! state preparation ([`states`]), the quantum Fourier transform
//! ([`qft`]), quantum phase estimation ([`qpe`], §IX), the Deutsch–Jozsa
//! algorithm ([`deutsch_jozsa`], §X), and the QFT-based controlled adder
//! ([`adder`], Appendix D). Each module also ships the paper's *bug
//! injections* — the incorrect program variants the assertions must catch.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adder;
pub mod bernstein_vazirani;
pub mod deutsch_jozsa;
pub mod grover;
pub mod qft;
pub mod qpe;
pub mod states;
pub mod teleport;
