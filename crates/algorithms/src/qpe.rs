//! Quantum phase estimation with the paper's assertion slots (§IX).
//!
//! The paper's 4-qubit QPE (Fig. 15/16) estimates the phase of
//! `U = u3(0, 0, π/8) = P(π/8)` applied to an eigenstate register prepared
//! in a superposition of eigenstates. Six assertion *slots* are defined:
//! slot 1 after the Hadamard layer, slots 2–5 after each controlled-U
//! power, slot 6 after the inverse QFT. [`expected_slot_state`] computes
//! the bug-free pure state at each slot (the paper's "precalculated state
//! vectors" `V1…V6`), and [`QpeBug`] injects the two §IX-A bugs.

use crate::qft::append_iqft;
use qra_circuit::Circuit;
use qra_math::CVector;

/// Bug injections for the QPE case study (§IX-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QpeBug {
    /// Correct program.
    #[default]
    None,
    /// **Bug1**: the loop index is dropped — every controlled-U uses the
    /// base angle instead of `2^j · angle`. Slots 3–5 become incorrect.
    MissingLoopIndex,
    /// **Bug2**: `cu3` mistyped as `u3` — the gate loses its control and
    /// acts unconditionally on the eigenstate qubit. Slots 2–5 become
    /// incorrect.
    UncontrolledGate,
    /// The §IX-B bug: the `cu3` parameters are passed in the wrong order,
    /// `cu3(0, 2^j·angle, 0)` instead of `cu3(2^j·angle, 0, 0)`, turning
    /// the rotation into a controlled phase whose eigenstates differ —
    /// meaningful for [`GateForm::RotationY`] configurations.
    WrongParameterOrder,
}

/// Which unitary family the controlled powers use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GateForm {
    /// `U = P(λ) = u3(0, 0, λ)` — the §IX-A phase gate; eigenstates are
    /// `|0⟩` and `|1⟩`, so a `|+⟩` register superposes eigenstates.
    #[default]
    Phase,
    /// `U = Ry(θ) = u3(θ, 0, 0)` — the §IX-B rotation gate; eigenstates
    /// are `(|0⟩ ± i|1⟩)/√2`, so the `eigen_phase = π/2` register is a
    /// *true* eigenstate and stays pure through the whole circuit.
    RotationY,
}

/// Configuration of the QPE workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QpeConfig {
    /// Number of counting qubits (the paper uses 4).
    pub counting: usize,
    /// Gate angle (λ for [`GateForm::Phase`], θ for
    /// [`GateForm::RotationY`]; the paper uses π/8).
    pub angle: f64,
    /// Relative phase φ of the eigenstate register
    /// `(|0⟩ + e^{iφ}|1⟩)/√2` (0 in §IX-A, π/2 in §IX-B).
    pub eigen_phase: f64,
    /// The controlled-gate family.
    pub gate_form: GateForm,
    /// Injected bug.
    pub bug: QpeBug,
}

impl QpeConfig {
    /// The paper's §IX-A configuration: 4 counting qubits, `λ = π/8`,
    /// eigenstate `|+⟩`.
    pub fn paper_sec9a() -> Self {
        Self {
            counting: 4,
            angle: std::f64::consts::PI / 8.0,
            eigen_phase: 0.0,
            gate_form: GateForm::Phase,
            bug: QpeBug::None,
        }
    }

    /// The §IX-B configuration: `cu3(2^j·π/8, 0, 0)` gates with the exact
    /// eigenstate `(|0⟩ + i|1⟩)/√2`.
    pub fn paper_sec9b() -> Self {
        Self {
            eigen_phase: std::f64::consts::FRAC_PI_2,
            gate_form: GateForm::RotationY,
            ..Self::paper_sec9a()
        }
    }

    /// Replaces the bug injection.
    pub fn with_bug(mut self, bug: QpeBug) -> Self {
        self.bug = bug;
        self
    }

    /// Total qubits: counting register plus the eigenstate qubit.
    pub fn num_qubits(&self) -> usize {
        self.counting + 1
    }

    /// Number of assertion slots (`counting + 2`).
    pub fn num_slots(&self) -> usize {
        self.counting + 2
    }

    /// The eigenstate qubit index (after the counting qubits).
    pub fn eigen_qubit(&self) -> usize {
        self.counting
    }
}

/// Builds the QPE circuit up to and including assertion slot `slot`
/// (1-based; `slot = counting + 2` is the full circuit).
///
/// # Panics
///
/// Panics when `slot` is 0 or exceeds `num_slots()`.
pub fn qpe_prefix(config: &QpeConfig, slot: usize) -> Circuit {
    assert!(
        (1..=config.num_slots()).contains(&slot),
        "slot {slot} out of range 1..={}",
        config.num_slots()
    );
    let n = config.counting;
    let ar = config.eigen_qubit();
    let mut c = Circuit::new(config.num_qubits());

    // Superposition precondition + eigenstate preparation.
    for q in 0..n {
        c.h(q);
    }
    c.h(ar);
    if config.eigen_phase != 0.0 {
        c.p(config.eigen_phase, ar);
    }
    if slot == 1 {
        return c;
    }

    // Phase-kickback subroutine: controlled-U^{2^j} from counting qubit j.
    let powers = (slot - 1).min(n);
    for j in 0..powers {
        let angle = match config.bug {
            QpeBug::MissingLoopIndex => config.angle,
            _ => (1usize << j) as f64 * config.angle,
        };
        // u3 parameter packing per gate family.
        let (theta, phi, lambda) = match (config.bug, config.gate_form) {
            (QpeBug::WrongParameterOrder, _) => (0.0, angle, 0.0),
            (_, GateForm::Phase) => (0.0, 0.0, angle),
            (_, GateForm::RotationY) => (angle, 0.0, 0.0),
        };
        match config.bug {
            QpeBug::UncontrolledGate => {
                // cu3 mistyped as u3: unconditional gate on the eigenstate.
                c.u3(theta, phi, lambda, ar);
            }
            _ => {
                c.cu3(theta, phi, lambda, j, ar);
            }
        }
    }
    if slot <= n + 1 {
        return c;
    }

    // Inverse QFT on the counting register. The kickback encodes the value
    // with qubit j weighted 2^j, i.e. bit-reversed relative to the
    // big-endian register order, so the iQFT runs on the reversed list.
    let reversed: Vec<usize> = (0..n).rev().collect();
    append_iqft(&mut c, &reversed);
    c
}

/// The full QPE circuit (all slots), without measurements.
pub fn qpe(config: &QpeConfig) -> Circuit {
    qpe_prefix(config, config.num_slots())
}

/// The bug-free pure state expected at `slot` — the paper's precalculated
/// `V1…V6` vectors, obtained by evolving the clean prefix.
///
/// # Panics
///
/// Panics when `slot` is out of range.
pub fn expected_slot_state(config: &QpeConfig, slot: usize) -> CVector {
    let clean = QpeConfig {
        bug: QpeBug::None,
        ..*config
    };
    qpe_prefix(&clean, slot)
        .statevector()
        .expect("QPE prefix contains no measurement")
}

/// Decodes the measured counting-register value: bit of counting qubit `j`
/// contributes `2^j` (see [`qpe_prefix`] for the ordering rationale).
/// Takes the per-qubit classical bits in counting order.
pub fn decode_counting(bits: &[bool]) -> usize {
    bits.iter()
        .enumerate()
        .map(|(j, &b)| usize::from(b) << j)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_sim::StatevectorSimulator;

    #[test]
    fn qpe_peaks_at_exact_phase_values() {
        // λ = π/8 = 2π/16: the |1⟩-eigenstate branch reads v = 1, the |0⟩
        // branch reads v = 0, each with probability ½.
        let config = QpeConfig::paper_sec9a();
        let mut circuit = qpe(&config);
        circuit.measure_all();
        let counts = StatevectorSimulator::with_seed(1)
            .run(&circuit, 4096)
            .unwrap();
        let mut p_v0 = 0.0;
        let mut p_v1 = 0.0;
        for (key, cnt) in counts.iter() {
            let bits: Vec<bool> = (0..4).map(|j| (key >> j) & 1 == 1).collect();
            match decode_counting(&bits) {
                0 => p_v0 += cnt as f64,
                1 => p_v1 += cnt as f64,
                v => panic!("unexpected counting value {v}"),
            }
        }
        let total = counts.total() as f64;
        assert!((p_v0 / total - 0.5).abs() < 0.05);
        assert!((p_v1 / total - 0.5).abs() < 0.05);
    }

    #[test]
    fn slot_states_have_unit_norm_and_progression() {
        let config = QpeConfig::paper_sec9a();
        for slot in 1..=config.num_slots() {
            let v = expected_slot_state(&config, slot);
            assert!(v.is_normalized(1e-9), "slot {slot}");
        }
    }

    #[test]
    fn slot1_is_uniform_superposition() {
        let config = QpeConfig::paper_sec9a();
        let v = expected_slot_state(&config, 1);
        for i in 0..32 {
            assert!((v.probability(i) - 1.0 / 32.0).abs() < 1e-9);
        }
    }

    #[test]
    fn bug1_diverges_from_slot3_onwards() {
        // The first controlled gate (j = 0) is unaffected (2⁰·λ = λ), so
        // slot 2 still matches; slots 3–5 diverge — the paper's
        // localisation story.
        let clean = QpeConfig::paper_sec9a();
        let buggy = clean.with_bug(QpeBug::MissingLoopIndex);
        for slot in 1..=2 {
            let a = qpe_prefix(&buggy, slot).statevector().unwrap();
            let b = expected_slot_state(&clean, slot);
            assert!(
                a.approx_eq_up_to_phase(&b, 1e-9),
                "slot {slot} should match"
            );
        }
        for slot in 3..=5 {
            let a = qpe_prefix(&buggy, slot).statevector().unwrap();
            let b = expected_slot_state(&clean, slot);
            assert!(
                !a.approx_eq_up_to_phase(&b, 1e-6),
                "slot {slot} should diverge"
            );
        }
    }

    #[test]
    fn bug2_diverges_from_slot2_onwards() {
        let clean = QpeConfig::paper_sec9a();
        let buggy = clean.with_bug(QpeBug::UncontrolledGate);
        let a = qpe_prefix(&buggy, 1).statevector().unwrap();
        assert!(a.approx_eq_up_to_phase(&expected_slot_state(&clean, 1), 1e-9));
        for slot in 2..=5 {
            let a = qpe_prefix(&buggy, slot).statevector().unwrap();
            let b = expected_slot_state(&clean, slot);
            assert!(
                !a.approx_eq_up_to_phase(&b, 1e-6),
                "slot {slot} should diverge"
            );
        }
    }

    #[test]
    fn bug2_leaves_counting_register_unentangled() {
        // §IX-A2: with Bug2 the counting qubits stay |++++⟩.
        let buggy = QpeConfig::paper_sec9a().with_bug(QpeBug::UncontrolledGate);
        let sv = qpe_prefix(&buggy, 5).statevector().unwrap();
        let rho = qra_math::CMatrix::outer(&sv, &sv);
        let reduced = rho.partial_trace(&[4]).unwrap();
        assert!((reduced.purity().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slot5_matches_paper_structure() {
        // |φ₅⟩ = (|++++⟩|0⟩ + |θ₄⟩|1⟩)/√2: the eigenstate-qubit marginals
        // are ½/½ and the counting register conditioned on |0⟩ is uniform.
        let config = QpeConfig::paper_sec9a();
        let v = expected_slot_state(&config, 5);
        let mut p_ar1 = 0.0;
        for i in 0..32 {
            if i & 1 == 1 {
                p_ar1 += v.probability(i);
            }
        }
        assert!((p_ar1 - 0.5).abs() < 1e-9);
        // Conditioned on ar = 0, all 16 counting patterns equal.
        for x in 0..16 {
            assert!((v.probability(x << 1) - 1.0 / 32.0).abs() < 1e-9);
        }
    }

    #[test]
    fn prefix_slot_bounds() {
        let config = QpeConfig::paper_sec9a();
        assert_eq!(config.num_slots(), 6);
        assert_eq!(qpe_prefix(&config, 6).num_qubits(), 5);
    }

    #[test]
    #[should_panic]
    fn prefix_rejects_slot_zero() {
        qpe_prefix(&QpeConfig::paper_sec9a(), 0);
    }

    #[test]
    fn decode_counting_order() {
        assert_eq!(decode_counting(&[true, false, false, false]), 1);
        assert_eq!(decode_counting(&[false, true, false, true]), 10);
    }

    #[test]
    fn rotation_form_keeps_eigen_qubit_pure() {
        // §IX-B: with cu3(θ,0,0) gates and the (|0⟩+i|1⟩)/√2 eigenstate,
        // the eigen qubit never entangles with the counting register.
        let config = QpeConfig::paper_sec9b();
        for slot in 1..=config.num_slots() {
            let sv = expected_slot_state(&config, slot);
            let rho = qra_math::CMatrix::outer(&sv, &sv);
            let traced: Vec<usize> = (0..config.counting).collect();
            let eig_rho = rho.partial_trace(&traced).unwrap();
            assert!(
                (eig_rho.purity().unwrap() - 1.0).abs() < 1e-9,
                "slot {slot}: eigen qubit impure"
            );
        }
    }

    #[test]
    fn wrong_parameter_order_bug_corrupts_eigen_qubit() {
        // The parameter-order bug turns the rotation into a phase gate;
        // the eigen qubit then entangles with the counting register and
        // its reduced state leaves the expected eigenstate.
        let config = QpeConfig::paper_sec9b().with_bug(QpeBug::WrongParameterOrder);
        let sv = qpe_prefix(&config, config.num_slots())
            .statevector()
            .unwrap();
        let rho = qra_math::CMatrix::outer(&sv, &sv);
        let traced: Vec<usize> = (0..config.counting).collect();
        let eig_rho = rho.partial_trace(&traced).unwrap();
        // Fidelity with the expected eigenstate must drop well below 1.
        let s = 0.5f64.sqrt();
        let expect =
            qra_math::CVector::new(vec![qra_math::C64::from(s), qra_math::C64::new(0.0, s)]);
        let fid = expect.inner(&eig_rho.mul_vec(&expect)).unwrap().re;
        assert!(fid < 0.9, "fidelity {fid} should drop under the bug");
    }

    #[test]
    fn wrong_parameter_order_is_noop_for_phase_form() {
        // For the Phase gate family u3(0,φ,0) ≡ u3(0,0,φ), so the swapped
        // order changes nothing — the bug is §IX-B (RotationY) specific.
        let clean = QpeConfig::paper_sec9a();
        let buggy = clean.with_bug(QpeBug::WrongParameterOrder);
        let a = qpe(&clean).statevector().unwrap();
        let b = qpe(&buggy).statevector().unwrap();
        assert!(a.approx_eq_up_to_phase(&b, 1e-9));
    }
}
