//! Quantum teleportation (deferred-measurement form).
//!
//! The paper's related-work discussion motivates entangled-state
//! assertions with teleportation; this module provides a teleportation
//! workload whose intermediate Bell pair is an assertion target. The
//! classical corrections are applied coherently (deferred measurement), so
//! the circuit stays unitary and simulator-friendly.

use qra_circuit::Circuit;
use qra_math::CVector;

/// Builds a 3-qubit teleportation circuit sending the state prepared by
/// `prepare_payload` (applied to qubit 0) onto qubit 2. Qubits 1 and 2
/// form the shared Bell pair.
pub fn teleport<F>(prepare_payload: F) -> Circuit
where
    F: FnOnce(&mut Circuit),
{
    let mut c = Circuit::new(3);
    prepare_payload(&mut c);
    // Shared Bell pair between qubits 1 (Alice) and 2 (Bob).
    c.h(1).cx(1, 2);
    // Bell measurement basis change on (0, 1).
    c.cx(0, 1).h(0);
    // Deferred-measurement corrections.
    c.cx(1, 2);
    c.cz(0, 2);
    c
}

/// Extracts Bob's reduced state (qubit 2) from the teleportation output.
pub fn bob_state(circuit: &Circuit) -> Result<qra_math::CMatrix, qra_circuit::CircuitError> {
    let sv = circuit.statevector()?;
    let rho = qra_math::CMatrix::outer(&sv, &sv);
    rho.partial_trace(&[0, 1]).map_err(Into::into)
}

/// The Bell-pair state vector on qubits (1, 2) right after entanglement —
/// an assertion target for the teleportation workload.
pub fn shared_pair_vector() -> CVector {
    crate::states::bell_vector()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::CMatrix;

    fn payload_state(f: impl FnOnce(&mut Circuit)) -> CVector {
        let mut c = Circuit::new(1);
        f(&mut c);
        c.statevector().unwrap()
    }

    #[test]
    fn teleports_basis_states() {
        for bit in [false, true] {
            let circuit = teleport(|c| {
                if bit {
                    c.x(0);
                }
            });
            let rho = bob_state(&circuit).unwrap();
            let expect = payload_state(|c| {
                if bit {
                    c.x(0);
                }
            });
            let target = CMatrix::outer(&expect, &expect);
            assert!(rho.approx_eq(&target, 1e-9), "bit={bit}");
        }
    }

    #[test]
    fn teleports_arbitrary_superposition() {
        let prep = |c: &mut Circuit| {
            c.ry(0.9, 0);
            c.rz(1.3, 0);
        };
        let circuit = teleport(prep);
        let rho = bob_state(&circuit).unwrap();
        let expect = payload_state(prep);
        let target = CMatrix::outer(&expect, &expect);
        assert!(rho.approx_eq(&target, 1e-9));
        assert!((rho.purity().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shared_pair_matches_bell_vector() {
        // After the Bell-pair stage, qubits (1,2) are in (|00⟩+|11⟩)/√2.
        let mut c = Circuit::new(3);
        c.h(1).cx(1, 2);
        let sv = c.statevector().unwrap();
        let rho = CMatrix::outer(&sv, &sv).partial_trace(&[0]).unwrap();
        let bell = shared_pair_vector();
        let target = CMatrix::outer(&bell, &bell);
        assert!(rho.approx_eq(&target, 1e-9));
    }
}
