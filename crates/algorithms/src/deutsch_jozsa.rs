//! The Deutsch–Jozsa algorithm and its black-box oracles (paper §X).
//!
//! The approximate-assertion case study checks whether a black-box
//! function's joint output state `|x⟩|f(x)⟩` (with inputs in uniform
//! superposition) is a member of the *constant* output set, the *balanced*
//! set, or their union — catching bugs that make `f` neither constant nor
//! balanced, which no precise assertion can express.

use qra_circuit::synthesis::mc_gate::{mcx, ControlState};
use qra_circuit::Circuit;
use qra_math::{CVector, C64};

/// A black-box boolean function oracle on `n` input bits, computed into
/// one output qubit (`out ^= f(x)`).
#[derive(Debug, Clone, PartialEq)]
pub enum Oracle {
    /// `f(x) = 0` for all inputs.
    ConstantZero,
    /// `f(x) = 1` for all inputs.
    ConstantOne,
    /// Balanced linear function `f(x) = x · mask (mod 2)`, `mask ≠ 0`.
    BalancedLinear {
        /// Non-zero parity mask (bit `b` ↔ input qubit `n−1−b`).
        mask: usize,
    },
    /// Arbitrary truth table (used for buggy oracles). `table[x]` is
    /// `f(x)` with `x` read big-endian over the input qubits.
    Table(Vec<bool>),
}

impl Oracle {
    /// The §X buggy oracle for two inputs: `f = x₀ ∧ x₁`, which is neither
    /// constant nor balanced (three zeros, one one).
    pub fn buggy_and() -> Self {
        Oracle::Table(vec![false, false, false, true])
    }

    /// Evaluates the function classically.
    ///
    /// # Panics
    ///
    /// Panics when `x` is out of range for a `Table` oracle.
    pub fn eval(&self, x: usize, n: usize) -> bool {
        match self {
            Oracle::ConstantZero => false,
            Oracle::ConstantOne => true,
            Oracle::BalancedLinear { mask } => (x & mask).count_ones() % 2 == 1,
            Oracle::Table(t) => {
                let _ = n;
                t[x]
            }
        }
    }

    /// Returns `true` when the function is constant over `n` inputs.
    pub fn is_constant(&self, n: usize) -> bool {
        let dim = 1usize << n;
        let first = self.eval(0, n);
        (1..dim).all(|x| self.eval(x, n) == first)
    }

    /// Returns `true` when the function is balanced over `n` inputs.
    pub fn is_balanced(&self, n: usize) -> bool {
        let dim = 1usize << n;
        let ones = (0..dim).filter(|&x| self.eval(x, n)).count();
        ones == dim / 2
    }

    /// Appends the bit-flip oracle `|x⟩|b⟩ → |x⟩|b ⊕ f(x)⟩` to `circuit`
    /// on `inputs` and `output`.
    ///
    /// # Errors
    ///
    /// Propagates circuit index errors.
    pub fn append_to(
        &self,
        circuit: &mut Circuit,
        inputs: &[usize],
        output: usize,
    ) -> Result<(), qra_circuit::CircuitError> {
        let n = inputs.len();
        match self {
            Oracle::ConstantZero => {}
            Oracle::ConstantOne => {
                circuit.x(output);
            }
            Oracle::BalancedLinear { mask } => {
                for (i, &q) in inputs.iter().enumerate() {
                    if (mask >> (n - 1 - i)) & 1 == 1 {
                        circuit.cx(q, output);
                    }
                }
            }
            Oracle::Table(table) => {
                // One multi-controlled X per satisfying input pattern.
                for (x, &on) in table.iter().enumerate() {
                    if !on {
                        continue;
                    }
                    let controls: Vec<(usize, ControlState)> = inputs
                        .iter()
                        .enumerate()
                        .map(|(i, &q)| {
                            let bit = (x >> (n - 1 - i)) & 1;
                            (
                                q,
                                if bit == 1 {
                                    ControlState::Closed
                                } else {
                                    ControlState::Open
                                },
                            )
                        })
                        .collect();
                    mcx(circuit, &controls, output)?;
                }
            }
        }
        Ok(())
    }
}

/// Builds the §X probe circuit: inputs in `|+…+⟩`, then the oracle into a
/// `|0⟩` output qubit — the joint state `Σ_x |x⟩|f(x)⟩ / √2ⁿ` the
/// approximate assertion checks. Input qubits are `0..n`, output is `n`.
///
/// # Errors
///
/// Propagates circuit errors from the oracle.
pub fn probe_circuit(oracle: &Oracle, n: usize) -> Result<Circuit, qra_circuit::CircuitError> {
    let mut c = Circuit::new(n + 1);
    for q in 0..n {
        c.h(q);
    }
    let inputs: Vec<usize> = (0..n).collect();
    oracle.append_to(&mut c, &inputs, n)?;
    Ok(c)
}

/// The constant output set of §X / Table IV:
/// `{ |+…+⟩|0⟩, |+…+⟩|1⟩ }` (as vectors over `n+1` qubits).
pub fn constant_output_set(n: usize) -> Vec<CVector> {
    let dim = 1usize << n;
    let amp = C64::from(1.0 / (dim as f64).sqrt());
    let mut zero_out = CVector::zeros(2 * dim);
    let mut one_out = CVector::zeros(2 * dim);
    for x in 0..dim {
        zero_out[2 * x] = amp;
        one_out[2 * x + 1] = amp;
    }
    vec![zero_out, one_out]
}

/// The balanced output set: one joint state per balanced truth table
/// (`C(2ⁿ, 2ⁿ⁻¹)` members — Table IV's six rows for `n = 2`).
pub fn balanced_output_set(n: usize) -> Vec<CVector> {
    let dim = 1usize << n;
    let amp = C64::from(1.0 / (dim as f64).sqrt());
    let mut out = Vec::new();
    // Enumerate bitmasks of the truth table with exactly dim/2 ones.
    for table in 0..(1usize << dim) {
        if table.count_ones() as usize != dim / 2 {
            continue;
        }
        let mut v = CVector::zeros(2 * dim);
        for x in 0..dim {
            let fx = (table >> x) & 1;
            v[2 * x + fx] = amp;
        }
        out.push(v);
    }
    out
}

/// The full Deutsch–Jozsa algorithm: returns the circuit (inputs `0..n`,
/// output qubit `n`) whose input-register measurement is all-zero iff the
/// oracle is constant.
///
/// # Errors
///
/// Propagates circuit errors from the oracle.
pub fn deutsch_jozsa(oracle: &Oracle, n: usize) -> Result<Circuit, qra_circuit::CircuitError> {
    let mut c = Circuit::new(n + 1);
    c.x(n).h(n); // phase-kickback target |−⟩
    for q in 0..n {
        c.h(q);
    }
    let inputs: Vec<usize> = (0..n).collect();
    oracle.append_to(&mut c, &inputs, n)?;
    for q in 0..n {
        c.h(q);
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_sim::StatevectorSimulator;

    #[test]
    fn oracle_classification() {
        assert!(Oracle::ConstantZero.is_constant(2));
        assert!(Oracle::ConstantOne.is_constant(3));
        assert!(Oracle::BalancedLinear { mask: 0b10 }.is_balanced(2));
        assert!(!Oracle::BalancedLinear { mask: 0b10 }.is_constant(2));
        let buggy = Oracle::buggy_and();
        assert!(!buggy.is_constant(2));
        assert!(!buggy.is_balanced(2));
    }

    #[test]
    fn probe_state_matches_truth_table() {
        let oracle = Oracle::buggy_and();
        let sv = probe_circuit(&oracle, 2).unwrap().statevector().unwrap();
        // Expected: ½(|00⟩|0⟩ + |01⟩|0⟩ + |10⟩|0⟩ + |11⟩|1⟩) — the paper's
        // example state ½(|000⟩+|010⟩+|100⟩+|111⟩).
        for (idx, expect) in [
            (0b000usize, 0.25),
            (0b010, 0.25),
            (0b100, 0.25),
            (0b111, 0.25),
            (0b001, 0.0),
            (0b110, 0.0),
        ] {
            assert!(
                (sv.probability(idx) - expect).abs() < 1e-9,
                "index {idx:03b}"
            );
        }
    }

    #[test]
    fn table_oracle_matches_linear_oracle() {
        // f(x) = x·11: table [0,1,1,0].
        let linear = Oracle::BalancedLinear { mask: 0b11 };
        let table = Oracle::Table(vec![false, true, true, false]);
        let a = probe_circuit(&linear, 2).unwrap().statevector().unwrap();
        let b = probe_circuit(&table, 2).unwrap().statevector().unwrap();
        assert!(a.approx_eq_up_to_phase(&b, 1e-9));
    }

    #[test]
    fn constant_oracle_probe_is_in_constant_set() {
        let set = constant_output_set(2);
        for oracle in [Oracle::ConstantZero, Oracle::ConstantOne] {
            let sv = probe_circuit(&oracle, 2).unwrap().statevector().unwrap();
            assert!(
                set.iter().any(|m| sv.approx_eq_up_to_phase(m, 1e-9)),
                "constant probe not in constant set"
            );
        }
    }

    #[test]
    fn balanced_set_has_six_members_for_two_inputs() {
        let set = balanced_output_set(2);
        assert_eq!(set.len(), 6, "C(4,2) = 6 balanced functions — Table IV");
        for v in &set {
            assert!(v.is_normalized(1e-9));
        }
        // Every balanced linear oracle's probe is a member.
        for mask in 1..4usize {
            let sv = probe_circuit(&Oracle::BalancedLinear { mask }, 2)
                .unwrap()
                .statevector()
                .unwrap();
            assert!(set.iter().any(|m| sv.approx_eq_up_to_phase(m, 1e-9)));
        }
    }

    #[test]
    fn buggy_probe_is_in_neither_set() {
        let sv = probe_circuit(&Oracle::buggy_and(), 2)
            .unwrap()
            .statevector()
            .unwrap();
        for m in constant_output_set(2)
            .iter()
            .chain(balanced_output_set(2).iter())
        {
            assert!(!sv.approx_eq_up_to_phase(m, 1e-6));
        }
    }

    #[test]
    fn deutsch_jozsa_distinguishes_constant_from_balanced() {
        for (oracle, constant) in [
            (Oracle::ConstantZero, true),
            (Oracle::ConstantOne, true),
            (Oracle::BalancedLinear { mask: 0b01 }, false),
            (Oracle::BalancedLinear { mask: 0b11 }, false),
        ] {
            let mut c = deutsch_jozsa(&oracle, 2).unwrap();
            c.expand_clbits(2);
            c.measure(0, 0).unwrap();
            c.measure(1, 1).unwrap();
            let counts = StatevectorSimulator::with_seed(3).run(&c, 512).unwrap();
            let all_zero = counts.frequency("00").unwrap();
            if constant {
                assert!((all_zero - 1.0).abs() < 1e-9, "{oracle:?}");
            } else {
                assert!(all_zero < 1e-9, "{oracle:?}");
            }
        }
    }

    #[test]
    fn three_input_balanced_set_size() {
        // C(8, 4) = 70 balanced functions on 3 inputs.
        assert_eq!(balanced_output_set(3).len(), 70);
    }
}
