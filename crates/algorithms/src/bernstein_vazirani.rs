//! The Bernstein–Vazirani algorithm.
//!
//! Another phase-kickback program (§VIII of the paper lists it among the
//! algorithms sharing that pattern), recovering a hidden mask `s` from the
//! linear oracle `f(x) = x·s` in one query. The intermediate states are
//! product states of `|±⟩` factors — exactly the class the prior-work
//! primitives *can* assert — which makes it a good workload for comparing
//! baselines with the systematic designs.

use qra_circuit::Circuit;
use qra_math::{CVector, C64};

/// Builds the Bernstein–Vazirani circuit for a hidden `mask` over `n`
/// input qubits (bit `b` of `mask` ↔ input qubit `n−1−b`). Layout: inputs
/// `0..n`, oracle target `n`. Measuring the inputs yields the mask.
///
/// # Panics
///
/// Panics when `mask >= 2^n`.
pub fn bernstein_vazirani(n: usize, mask: usize) -> Circuit {
    assert!(mask < (1usize << n), "mask out of range");
    let mut c = Circuit::new(n + 1);
    c.x(n).h(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n {
        if (mask >> (n - 1 - q)) & 1 == 1 {
            c.cx(q, n);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// The expected state of the input register *before* the final Hadamard
/// layer: a `|±⟩` product with a minus at every mask bit — an assertable
/// superposition-state checkpoint (the paper's §VIII "assert after every
/// instruction" point, and a state the Primitive baseline supports).
pub fn pre_hadamard_state(n: usize, mask: usize) -> CVector {
    let s = 0.5f64.sqrt();
    let mut v = CVector::from_real(&[1.0]);
    for q in 0..n {
        let minus = (mask >> (n - 1 - q)) & 1 == 1;
        let factor = if minus {
            CVector::new(vec![C64::from(s), C64::from(-s)])
        } else {
            CVector::new(vec![C64::from(s), C64::from(s)])
        };
        v = v.kron(&factor);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::CMatrix;

    #[test]
    fn recovers_the_mask_deterministically() {
        for n in 1..=4usize {
            for mask in 0..(1usize << n) {
                let c = bernstein_vazirani(n, mask);
                let sv = c.statevector().unwrap();
                // The input register reads `mask` with certainty; the target
                // qubit stays in |−⟩ (ignore it by summing both values).
                let p: f64 = sv.probability(mask << 1) + sv.probability((mask << 1) | 1);
                assert!((p - 1.0).abs() < 1e-9, "n={n} mask={mask:0b}: p={p}");
            }
        }
    }

    #[test]
    fn pre_hadamard_state_matches_simulation() {
        let n = 3;
        let mask = 0b101;
        // Build the circuit up to (but excluding) the final H layer.
        let mut c = Circuit::new(n + 1);
        c.x(n).h(n);
        for q in 0..n {
            c.h(q);
        }
        for q in 0..n {
            if (mask >> (n - 1 - q)) & 1 == 1 {
                c.cx(q, n);
            }
        }
        let sv = c.statevector().unwrap();
        // Reduce out the oracle qubit and compare with the predicted product.
        let rho = CMatrix::outer(&sv, &sv).partial_trace(&[n]).unwrap();
        let expect = pre_hadamard_state(n, mask);
        let target = CMatrix::outer(&expect, &expect);
        assert!(rho.approx_eq(&target, 1e-9));
    }

    #[test]
    #[should_panic]
    fn rejects_oversized_mask() {
        bernstein_vazirani(2, 4);
    }
}
