//! Grover search on a marked computational basis state.
//!
//! Provides an assertion-friendly workload: the state after each Grover
//! iteration is a *known* superposition in the two-dimensional span of the
//! uniform state and the marked state, so precise assertions can checkpoint
//! every iteration, and approximate assertions can check membership in that
//! span without tracking the exact rotation angle.

use qra_circuit::synthesis::mc_gate::{mcz, Control, ControlState};
use qra_circuit::Circuit;
use qra_math::{CVector, C64};

/// Appends the phase oracle marking basis state `target` (phase −1).
///
/// # Errors
///
/// Propagates circuit/synthesis errors.
pub fn append_oracle(
    circuit: &mut Circuit,
    n: usize,
    target: usize,
) -> Result<(), qra_circuit::CircuitError> {
    // Multi-controlled Z with polarities matching the target bits.
    let controls: Vec<Control> = (0..n - 1)
        .map(|q| {
            let bit = (target >> (n - 1 - q)) & 1;
            (
                q,
                if bit == 1 {
                    ControlState::Closed
                } else {
                    ControlState::Open
                },
            )
        })
        .collect();
    let last = n - 1;
    let last_bit = target & 1;
    if last_bit == 0 {
        circuit.x(last);
    }
    mcz(circuit, &controls, last)?;
    if last_bit == 0 {
        circuit.x(last);
    }
    Ok(())
}

/// Appends the Grover diffusion operator (inversion about the mean).
///
/// # Errors
///
/// Propagates circuit/synthesis errors.
pub fn append_diffusion(circuit: &mut Circuit, n: usize) -> Result<(), qra_circuit::CircuitError> {
    for q in 0..n {
        circuit.h(q);
    }
    // Phase flip on |0…0⟩: X-conjugated multi-controlled Z.
    for q in 0..n {
        circuit.x(q);
    }
    let controls: Vec<Control> = (0..n - 1).map(|q| (q, ControlState::Closed)).collect();
    mcz(circuit, &controls, n - 1)?;
    for q in 0..n {
        circuit.x(q);
    }
    for q in 0..n {
        circuit.h(q);
    }
    Ok(())
}

/// Builds a Grover search circuit over `n` qubits for the marked basis
/// state `target`, running `iterations` rounds.
///
/// # Errors
///
/// Propagates circuit/synthesis errors.
///
/// # Panics
///
/// Panics when `target >= 2^n` or `n < 2`.
pub fn grover(
    n: usize,
    target: usize,
    iterations: usize,
) -> Result<Circuit, qra_circuit::CircuitError> {
    assert!(n >= 2, "grover needs at least two qubits");
    assert!(target < (1usize << n));
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..iterations {
        append_oracle(&mut c, n, target)?;
        append_diffusion(&mut c, n)?;
    }
    Ok(c)
}

/// The optimal iteration count `⌊π/4·√N⌋` (at least 1).
pub fn optimal_iterations(n: usize) -> usize {
    let big_n = (1usize << n) as f64;
    ((std::f64::consts::FRAC_PI_4) * big_n.sqrt())
        .floor()
        .max(1.0) as usize
}

/// The exact expected state after `iterations` rounds: the textbook
/// rotation `sin((2k+1)θ)|target⟩ + cos((2k+1)θ)|rest⟩` with
/// `sin θ = 1/√N` — the checkpoint vector for precise assertions.
pub fn expected_state(n: usize, target: usize, iterations: usize) -> CVector {
    let dim = 1usize << n;
    let theta = (1.0 / (dim as f64).sqrt()).asin();
    let angle = (2 * iterations as u32 + 1) as f64 * theta;
    let a_target = angle.sin();
    let a_rest = angle.cos() / ((dim - 1) as f64).sqrt();
    let mut v = CVector::zeros(dim);
    for i in 0..dim {
        v[i] = if i == target {
            C64::from(a_target)
        } else {
            C64::from(a_rest)
        };
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grover_amplifies_the_target() {
        for n in [2usize, 3] {
            let target = (1usize << n) - 2;
            let iters = optimal_iterations(n);
            let c = grover(n, target, iters).unwrap();
            let sv = c.statevector().unwrap();
            let p = sv.probability(target);
            assert!(p > 0.9, "n={n}: target probability {p}");
        }
    }

    #[test]
    fn matches_textbook_rotation_per_iteration() {
        let n = 3;
        let target = 0b101;
        for k in 0..=3usize {
            let c = grover(n, target, k).unwrap();
            let sv = c.statevector().unwrap();
            let expect = expected_state(n, target, k);
            assert!(
                sv.approx_eq_up_to_phase(&expect, 1e-8),
                "iteration {k} diverged"
            );
        }
    }

    #[test]
    fn oracle_flips_only_the_target_phase() {
        let n = 3;
        let target = 0b010;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        append_oracle(&mut c, n, target).unwrap();
        let sv = c.statevector().unwrap();
        let amp = 1.0 / (8.0f64).sqrt();
        for i in 0..8 {
            let expect = if i == target { -amp } else { amp };
            assert!(
                (sv.amplitude(i).re - expect).abs() < 1e-9,
                "index {i}: {} vs {expect}",
                sv.amplitude(i).re
            );
        }
    }

    #[test]
    fn diffusion_preserves_uniform_state() {
        let n = 3;
        let mut c = Circuit::new(n);
        for q in 0..n {
            c.h(q);
        }
        append_diffusion(&mut c, n).unwrap();
        let sv = c.statevector().unwrap();
        let uniform = CVector::from_real(&[1.0 / 8.0f64.sqrt(); 8]);
        assert!(sv.approx_eq_up_to_phase(&uniform, 1e-8));
    }

    #[test]
    fn optimal_iterations_reasonable() {
        assert_eq!(optimal_iterations(2), 1);
        assert_eq!(optimal_iterations(4), 3);
        assert!(optimal_iterations(6) >= 6);
    }
}
