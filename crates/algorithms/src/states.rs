//! Entangled-state preparation circuits and the paper's §III bug variants.

use qra_circuit::Circuit;
use qra_math::{CVector, C64};
use std::f64::consts::PI;

/// Prepares the n-qubit GHZ state `(|0…0⟩ + |1…1⟩)/√2`, using the `u2`
/// form of the paper's Fig. 2 for the leading Hadamard.
///
/// # Panics
///
/// Panics when `n == 0`.
///
/// ```rust
/// let c = qra_algorithms::states::ghz(3);
/// let sv = c.statevector()?;
/// assert!((sv.probability(0) - 0.5).abs() < 1e-12);
/// assert!((sv.probability(7) - 0.5).abs() < 1e-12);
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn ghz(n: usize) -> Circuit {
    assert!(n > 0, "GHZ needs at least one qubit");
    let mut c = Circuit::new(n);
    c.u2(0.0, PI, 0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

/// The paper's §III **Bug1**: the programmer swaps the `u2` parameters,
/// producing `(|0…0⟩ − |1…1⟩)/√2` — wrong coefficients, same
/// distribution.
pub fn ghz_bug1(n: usize) -> Circuit {
    assert!(n > 0);
    let mut c = Circuit::new(n);
    c.u2(PI, 0.0, 0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c
}

/// The paper's §III **Bug2**: the two CX lines are reordered, producing
/// the wrong entanglement structure (for n = 3:
/// `(|000⟩ + |110⟩)/√2` in big-endian indexing).
///
/// # Panics
///
/// Panics when `n < 3` (the bug needs two CX gates to swap).
pub fn ghz_bug2(n: usize) -> Circuit {
    assert!(n >= 3, "bug2 reorders two CX gates");
    let mut c = Circuit::new(n);
    c.u2(0.0, PI, 0);
    // Reversed fan-out order: the paper swaps lines 2 and 3.
    let mut order: Vec<usize> = (0..n - 1).collect();
    order.swap(0, 1);
    for q in order {
        c.cx(q, q + 1);
    }
    c
}

/// The GHZ state vector (big-endian indexing).
pub fn ghz_vector(n: usize) -> CVector {
    let dim = 1usize << n;
    let s = C64::from(0.5f64.sqrt());
    let mut v = CVector::zeros(dim);
    v[0] = s;
    v[dim - 1] = s;
    v
}

/// Prepares the Bell state `(|00⟩ + |11⟩)/√2`.
pub fn bell() -> Circuit {
    let mut c = Circuit::new(2);
    c.h(0).cx(0, 1);
    c
}

/// The Bell state vector.
pub fn bell_vector() -> CVector {
    let s = C64::from(0.5f64.sqrt());
    let mut v = CVector::zeros(4);
    v[0] = s;
    v[3] = s;
    v
}

/// Prepares the n-qubit W state `(|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n`
/// with a cascade of controlled rotations.
///
/// # Panics
///
/// Panics when `n == 0`.
pub fn w_state(n: usize) -> Circuit {
    assert!(n > 0);
    let mut c = Circuit::new(n);
    // Amplitude-passing chain: start with the excitation on qubit 0, then
    // at step k keep amplitude √(1/n) on qubit k and pass the rest down:
    // cry(θ_k, k, k+1) followed by cx(k+1, k) with cos(θ_k/2) = √(1/(n−k)).
    c.x(0);
    for k in 0..n - 1 {
        let theta = 2.0 * (1.0 / (n - k) as f64).sqrt().acos();
        c.cry(theta, k, k + 1);
        c.cx(k + 1, k);
    }
    c
}

/// The n-qubit W state vector.
pub fn w_vector(n: usize) -> CVector {
    let dim = 1usize << n;
    let a = C64::from(1.0 / (n as f64).sqrt());
    let mut v = CVector::zeros(dim);
    for q in 0..n {
        v[1usize << (n - 1 - q)] = a;
    }
    v
}

/// Prepares a 1D cluster state on `n` qubits: `H` on all, then CZ between
/// neighbours.
pub fn cluster_1d(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n.saturating_sub(1) {
        c.cz(q, q + 1);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn ghz_matches_vector() {
        for n in 1..=5 {
            let sv = ghz(n).statevector().unwrap();
            assert!(sv.approx_eq_up_to_phase(&ghz_vector(n), TOL), "n={n}");
        }
    }

    #[test]
    fn ghz_bug1_flips_sign_only() {
        let sv = ghz_bug1(3).statevector().unwrap();
        let mut expect = CVector::zeros(8);
        expect[0] = C64::from(0.5f64.sqrt());
        expect[7] = C64::from(-(0.5f64.sqrt()));
        assert!(sv.approx_eq_up_to_phase(&expect, TOL));
        // Same measurement distribution as the correct GHZ.
        let good = ghz(3).statevector().unwrap();
        for i in 0..8 {
            assert!((sv.probability(i) - good.probability(i)).abs() < TOL);
        }
    }

    #[test]
    fn ghz_bug2_wrong_entanglement() {
        let sv = ghz_bug2(3).statevector().unwrap();
        let mut expect = CVector::zeros(8);
        expect[0] = C64::from(0.5f64.sqrt());
        expect[0b110] = C64::from(0.5f64.sqrt());
        assert!(sv.approx_eq_up_to_phase(&expect, TOL));
    }

    #[test]
    fn bell_matches_vector() {
        let sv = bell().statevector().unwrap();
        assert!(sv.approx_eq_up_to_phase(&bell_vector(), TOL));
    }

    #[test]
    fn w_state_matches_vector() {
        for n in 2..=4 {
            let sv = w_state(n).statevector().unwrap();
            assert!(
                sv.approx_eq_up_to_phase(&w_vector(n), 1e-8),
                "W state n={n}: got {sv}"
            );
        }
    }

    #[test]
    fn cluster_state_stabilizers() {
        // 3-qubit cluster: check stabilizer ⟨X Z I⟩-type expectations via
        // the full state: applying K_1 = Z X Z must fix the state.
        let sv = cluster_1d(3).statevector().unwrap();
        let z = qra_circuit::Gate::Z.matrix();
        let x = qra_circuit::Gate::X.matrix();
        let k1 = z.kron(&x).kron(&z);
        let out = k1.mul_vec(&sv);
        assert!(out.approx_eq(&sv, 1e-9));
    }

    #[test]
    fn ghz_vector_is_normalized() {
        for n in 1..=6 {
            assert!(ghz_vector(n).is_normalized(TOL));
            assert!(w_vector(n.max(1)).is_normalized(TOL));
        }
    }
}
