//! QFT-based constant adders and the Appendix-D controlled-adder bug.
//!
//! The Draper adder adds a classical constant `a` to a register encoded in
//! Fourier space using only phase rotations. The paper's Appendix D uses
//! the 0/1/2-control recursion of this subroutine to show a recursion bug
//! (`j` typed instead of `i` as the rotation target) that precise and
//! mixed-state assertions catch.

use crate::qft::{append_iqft, append_qft};
use qra_circuit::synthesis::mc_gate::{mc_unitary, ControlState};
use qra_circuit::{Circuit, Gate};
use std::f64::consts::PI;

/// Bug injections for the controlled adder (Appendix D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdderBug {
    /// Correct program.
    #[default]
    None,
    /// The two-control branch rotates `qr[j]` instead of `qr[i]` — the
    /// recursion-pattern bug of Fig. 21 line 11.
    WrongTargetInDoubleControl,
}

/// Appends the Fourier-space addition of constant `a` to `qubits`
/// (`qubits[0]` = most significant), optionally controlled on up to two
/// control qubits — the paper's `controlled_adder` with `num_ctrl ∈
/// {0, 1, 2}` (Fig. 21).
///
/// # Errors
///
/// Propagates circuit/synthesis errors.
///
/// # Panics
///
/// Panics when more than two controls are supplied.
pub fn add_const_fourier(
    circuit: &mut Circuit,
    qubits: &[usize],
    a: u64,
    controls: &[usize],
    bug: AdderBug,
) -> Result<(), qra_circuit::CircuitError> {
    assert!(
        controls.len() <= 2,
        "the paper's recursion stops at 2 controls"
    );
    let width = qubits.len();
    for i in (0..width).rev() {
        for j in (0..=i).rev() {
            if (a >> j) & 1 == 1 {
                let angle = PI / (1u64 << (i - j)) as f64;
                // The buggy variant mis-targets the rotation in the
                // two-control branch only (Fig. 21 line 11).
                let target_idx = match (bug, controls.len()) {
                    (AdderBug::WrongTargetInDoubleControl, 2) => j,
                    _ => i,
                };
                let target = qubits[target_idx];
                match controls.len() {
                    0 => {
                        circuit.p(angle, target);
                    }
                    1 => {
                        circuit.cp(angle, controls[0], target);
                    }
                    _ => {
                        let ctrl: Vec<(usize, ControlState)> = controls
                            .iter()
                            .map(|&c| (c, ControlState::Closed))
                            .collect();
                        mc_unitary(circuit, &ctrl, target, &Gate::Phase(angle).matrix())?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// A complete demonstration adder: loads `b`, enters Fourier space, adds
/// constant `a` (optionally controlled), and returns. Register layout:
/// data qubits `0..width`, controls after.
///
/// # Errors
///
/// Propagates circuit errors.
pub fn adder_circuit(
    width: usize,
    a: u64,
    b: u64,
    num_controls: usize,
    bug: AdderBug,
) -> Result<Circuit, qra_circuit::CircuitError> {
    let mut c = Circuit::new(width + num_controls);
    // Load b (big-endian: qubit 0 = MSB).
    for q in 0..width {
        if (b >> (width - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    // Activate all controls so the addition actually happens.
    let controls: Vec<usize> = (width..width + num_controls).collect();
    for &ctl in &controls {
        c.x(ctl);
    }
    let data: Vec<usize> = (0..width).collect();
    append_qft(&mut c, &data);
    add_const_fourier(&mut c, &data, a, &controls, bug)?;
    append_iqft(&mut c, &data);
    Ok(c)
}

/// Reads the most probable data-register value from a state vector of the
/// adder circuit (exact for classical outputs).
pub fn dominant_value(sv: &qra_math::CVector, width: usize, total_qubits: usize) -> u64 {
    let mut best = (0usize, 0.0f64);
    for i in 0..sv.len() {
        let p = sv.probability(i);
        if p > best.1 {
            best = (i, p);
        }
    }
    (best.0 >> (total_qubits - width)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_adder(width: usize, a: u64, b: u64, ctrls: usize, bug: AdderBug) -> u64 {
        let c = adder_circuit(width, a, b, ctrls, bug).unwrap();
        let sv = c.statevector().unwrap();
        dominant_value(&sv, width, c.num_qubits())
    }

    #[test]
    fn plain_addition_mod_2n() {
        for (a, b) in [(1u64, 2u64), (3, 5), (7, 7), (0, 6), (5, 0)] {
            let got = run_adder(3, a, b, 0, AdderBug::None);
            assert_eq!(got, (a + b) % 8, "a={a} b={b}");
        }
    }

    #[test]
    fn single_controlled_addition() {
        for (a, b) in [(2u64, 3u64), (4, 4)] {
            let got = run_adder(3, a, b, 1, AdderBug::None);
            assert_eq!(got, (a + b) % 8);
        }
    }

    #[test]
    fn double_controlled_addition() {
        for (a, b) in [(1u64, 1u64), (3, 4)] {
            let got = run_adder(3, a, b, 2, AdderBug::None);
            assert_eq!(got, (a + b) % 8);
        }
    }

    #[test]
    fn inactive_control_means_no_addition() {
        // Build manually with the control left at |0⟩.
        let width = 3;
        let mut c = Circuit::new(width + 1);
        c.x(2); // b = 1
        let data: Vec<usize> = (0..width).collect();
        append_qft(&mut c, &data);
        add_const_fourier(&mut c, &data, 5, &[width], AdderBug::None).unwrap();
        append_iqft(&mut c, &data);
        let sv = c.statevector().unwrap();
        assert_eq!(dominant_value(&sv, width, width + 1), 1);
    }

    #[test]
    fn appendix_d_bug_changes_double_controlled_result() {
        // a = 3 exercises both the first rotation (i = j, unaffected) and
        // later rotations where i ≠ j.
        let good = run_adder(3, 3, 2, 2, AdderBug::None);
        let bad = run_adder(3, 3, 2, 2, AdderBug::WrongTargetInDoubleControl);
        assert_eq!(good, 5);
        assert_ne!(good, bad, "the Appendix D bug must corrupt the sum");
    }

    #[test]
    fn appendix_d_bug_does_not_affect_uncontrolled_adder() {
        let good = run_adder(3, 3, 2, 0, AdderBug::None);
        let bad = run_adder(3, 3, 2, 0, AdderBug::WrongTargetInDoubleControl);
        assert_eq!(good, bad);
    }

    #[test]
    fn appendix_d_bug_state_diverges_after_second_rotation() {
        // The paper: i and j agree for the first rz, so the states diverge
        // from the second rotation onwards — compare full Fourier-space
        // states gate by gate.
        let width = 3;
        let build = |bug: AdderBug| {
            let mut c = Circuit::new(width + 2);
            c.x(width).x(width + 1);
            let data: Vec<usize> = (0..width).collect();
            append_qft(&mut c, &data);
            add_const_fourier(&mut c, &data, 3, &[width, width + 1], bug).unwrap();
            c
        };
        let good = build(AdderBug::None).statevector().unwrap();
        let bad = build(AdderBug::WrongTargetInDoubleControl)
            .statevector()
            .unwrap();
        assert!(!good.approx_eq_up_to_phase(&bad, 1e-6));
    }

    #[test]
    fn wrap_around_addition() {
        assert_eq!(run_adder(3, 7, 7, 0, AdderBug::None), 6); // 14 mod 8
        assert_eq!(run_adder(4, 9, 8, 0, AdderBug::None), 1); // 17 mod 16
    }
}
