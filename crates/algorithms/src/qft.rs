//! The quantum Fourier transform and its inverse.

use qra_circuit::Circuit;
use std::f64::consts::PI;

/// Appends the `n`-qubit QFT to `circuit` on `qubits` (qubit order:
/// `qubits[0]` is the most significant). Includes the final qubit-reversal
/// swaps so the output ordering matches the textbook definition.
///
/// # Panics
///
/// Panics on invalid qubit indices.
pub fn append_qft(circuit: &mut Circuit, qubits: &[usize]) {
    let n = qubits.len();
    for i in 0..n {
        circuit.h(qubits[i]);
        for j in i + 1..n {
            let angle = PI / (1usize << (j - i)) as f64;
            circuit.cp(angle, qubits[j], qubits[i]);
        }
    }
    for i in 0..n / 2 {
        circuit.swap(qubits[i], qubits[n - 1 - i]);
    }
}

/// Appends the inverse QFT on `qubits`.
///
/// # Panics
///
/// Panics on invalid qubit indices.
pub fn append_iqft(circuit: &mut Circuit, qubits: &[usize]) {
    let n = qubits.len();
    for i in 0..n / 2 {
        circuit.swap(qubits[i], qubits[n - 1 - i]);
    }
    for i in (0..n).rev() {
        for j in (i + 1..n).rev() {
            let angle = -PI / (1usize << (j - i)) as f64;
            circuit.cp(angle, qubits[j], qubits[i]);
        }
        circuit.h(qubits[i]);
    }
}

/// A standalone `n`-qubit QFT circuit.
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    append_qft(&mut c, &qubits);
    c
}

/// A standalone `n`-qubit inverse QFT circuit.
pub fn iqft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    append_iqft(&mut c, &qubits);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::{CMatrix, CVector, C64};
    use std::f64::consts::TAU;

    const TOL: f64 = 1e-9;

    /// The textbook QFT matrix `F[j][k] = ω^{jk}/√N`.
    fn qft_matrix(n: usize) -> CMatrix {
        let dim = 1usize << n;
        let scale = 1.0 / (dim as f64).sqrt();
        CMatrix::from_fn(dim, dim, |j, k| {
            C64::from_polar(scale, TAU * (j as f64) * (k as f64) / dim as f64)
        })
    }

    #[test]
    fn qft_matches_dft_matrix() {
        for n in 1..=4 {
            let u = qft(n).unitary_matrix().unwrap();
            assert!(
                u.approx_eq_up_to_phase(&qft_matrix(n), 1e-8),
                "QFT mismatch at n={n}"
            );
        }
    }

    #[test]
    fn iqft_inverts_qft() {
        for n in 1..=4 {
            let mut c = qft(n);
            let qubits: Vec<usize> = (0..n).collect();
            append_iqft(&mut c, &qubits);
            let u = c.unitary_matrix().unwrap();
            assert!(
                u.approx_eq_up_to_phase(&CMatrix::identity(1 << n), 1e-8),
                "iQFT·QFT ≠ I at n={n}"
            );
        }
    }

    #[test]
    fn qft_of_zero_is_uniform() {
        let sv = qft(3).statevector().unwrap();
        for i in 0..8 {
            assert!((sv.probability(i) - 0.125).abs() < TOL);
        }
    }

    #[test]
    fn qft_of_basis_state_has_flat_magnitudes() {
        let mut c = Circuit::new(3);
        c.x(2);
        let qubits: Vec<usize> = (0..3).collect();
        append_qft(&mut c, &qubits);
        let sv = c.statevector().unwrap();
        for i in 0..8 {
            assert!((sv.probability(i) - 0.125).abs() < TOL);
        }
        // Phase gradient: amplitude k carries phase 2πk/8.
        let base = sv.amplitude(0);
        for k in 0..8 {
            let expect = base * C64::cis(TAU * k as f64 / 8.0);
            assert!(sv.amplitude(k).approx_eq(expect, 1e-9));
        }
    }

    #[test]
    fn append_on_scrambled_qubits() {
        // QFT on reversed qubit list equals the matrix conjugated by the
        // bit-reversal permutation; verify via round-trip instead.
        let mut c = Circuit::new(3);
        let order = [2usize, 0, 1];
        append_qft(&mut c, &order);
        append_iqft(&mut c, &order);
        let u = c.unitary_matrix().unwrap();
        assert!(u.approx_eq_up_to_phase(&CMatrix::identity(8), 1e-8));
    }

    #[test]
    fn qft_statevector_roundtrip_random_input() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let n = 4;
        let mut prep = Circuit::new(n);
        for q in 0..n {
            prep.ry(rng.gen_range(0.0..3.0), q);
        }
        let before = prep.statevector().unwrap();
        let qubits: Vec<usize> = (0..n).collect();
        append_qft(&mut prep, &qubits);
        append_iqft(&mut prep, &qubits);
        let after = prep.statevector().unwrap();
        assert!(before.approx_eq_up_to_phase(&after, 1e-8));
        let _ = CVector::zeros(2);
    }
}
