//! Line-delimited JSON wire protocol for the assertion service.
//!
//! Each request is one line. Job requests carry a client-chosen `id`
//! echoed in the response, and an `argv` array that is parsed by the
//! daemon exactly like a `qra` command line (so `qra submit run x.qasm
//! --shots 64` is byte-identical to running that command directly):
//!
//! ```text
//! {"id":1,"argv":["run","bell.qasm","--shots","1024","--seed","7"]}
//! {"control":"status"}
//! {"control":"shutdown"}
//! ```
//!
//! Responses (one line each; job responses may arrive out of submission
//! order — clients reorder by `id`):
//!
//! ```text
//! {"id":1,"ok":true,"code":0,"latency_us":412,"output":"..."}
//! {"id":2,"ok":false,"dropped":true,"error":"queue full"}
//! {"ok":true,"status":{...}}
//! {"ok":true,"draining":true}
//! ```

use qra_faults::json::{self, json_str, Json};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute `argv` as a `qra` command line and respond with its
    /// output and exit code.
    Job {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// The command line, excluding the program name.
        argv: Vec<String>,
    },
    /// Respond with a metrics/cache snapshot.
    Status,
    /// Begin graceful drain: finish queued and in-flight jobs, then exit.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, an unknown
/// control verb, or a job without `id`/`argv`.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = json::parse(line).map_err(|e| format!("bad request JSON: {}", e.0))?;
    if let Some(control) = value.get("control") {
        let verb = control
            .as_str()
            .map_err(|e| format!("bad control field: {}", e.0))?;
        return match verb {
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown control verb '{other}'")),
        };
    }
    let id = value
        .require("id")
        .and_then(Json::as_u64)
        .map_err(|e| format!("bad job id: {}", e.0))?;
    let argv = value
        .require("argv")
        .and_then(Json::as_arr)
        .map_err(|e| format!("bad job argv: {}", e.0))?
        .iter()
        .map(|v| v.as_str().map(str::to_string))
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| format!("bad argv element: {}", e.0))?;
    Ok(Request::Job { id, argv })
}

/// Renders a successful job response line.
pub fn job_ok(id: u64, code: i32, output: &str, latency_us: u64) -> String {
    format!(
        "{{\"id\":{id},\"ok\":true,\"code\":{code},\"latency_us\":{latency_us},\"output\":{}}}",
        json_str(output)
    )
}

/// Renders a failed job response line; `dropped` marks queue-full
/// rejections so clients can distinguish backpressure from job errors.
pub fn job_err(id: u64, error: &str, dropped: bool) -> String {
    if dropped {
        format!(
            "{{\"id\":{id},\"ok\":false,\"dropped\":true,\"error\":{}}}",
            json_str(error)
        )
    } else {
        format!("{{\"id\":{id},\"ok\":false,\"error\":{}}}", json_str(error))
    }
}

/// A parsed job response line (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: u64,
    /// `true` when the job executed (its own exit code may still be
    /// nonzero); `false` for parse failures and drops.
    pub ok: bool,
    /// The job's exit code (0 unless `ok`, then as executed).
    pub code: i32,
    /// The job's rendered output (empty unless `ok`).
    pub output: String,
    /// Error message when `!ok`.
    pub error: Option<String>,
    /// `true` when the job was rejected by queue backpressure.
    pub dropped: bool,
    /// Enqueue-to-response latency reported by the daemon.
    pub latency_us: u64,
}

/// Parses one job response line.
///
/// # Errors
///
/// Returns a message for malformed JSON or a line without an `id`
/// (status/drain acknowledgements have no `id`; route those separately).
pub fn parse_job_response(line: &str) -> Result<JobResponse, String> {
    let value = json::parse(line).map_err(|e| format!("bad response JSON: {}", e.0))?;
    let id = value
        .require("id")
        .and_then(Json::as_u64)
        .map_err(|e| format!("bad response id: {}", e.0))?;
    let ok = value
        .require("ok")
        .and_then(Json::as_bool)
        .map_err(|e| format!("bad ok field: {}", e.0))?;
    let code = value
        .get("code")
        .map(|v| v.as_u64().map(|c| c as i32))
        .transpose()
        .map_err(|e| format!("bad code field: {}", e.0))?
        .unwrap_or(0);
    let output = value
        .get("output")
        .map(|v| v.as_str().map(str::to_string))
        .transpose()
        .map_err(|e| format!("bad output field: {}", e.0))?
        .unwrap_or_default();
    let error = value
        .get("error")
        .map(|v| v.as_str().map(str::to_string))
        .transpose()
        .map_err(|e| format!("bad error field: {}", e.0))?;
    let dropped = value
        .get("dropped")
        .map(Json::as_bool)
        .transpose()
        .map_err(|e| format!("bad dropped field: {}", e.0))?
        .unwrap_or(false);
    let latency_us = value
        .get("latency_us")
        .map(Json::as_u64)
        .transpose()
        .map_err(|e| format!("bad latency field: {}", e.0))?
        .unwrap_or(0);
    Ok(JobResponse {
        id,
        ok,
        code,
        output,
        error,
        dropped,
        latency_us,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_job_request() {
        let req = parse_request(r#"{"id":3,"argv":["run","x.qasm","--shots","64"]}"#).unwrap();
        assert_eq!(
            req,
            Request::Job {
                id: 3,
                argv: vec![
                    "run".to_string(),
                    "x.qasm".to_string(),
                    "--shots".to_string(),
                    "64".to_string()
                ],
            }
        );
    }

    #[test]
    fn parses_controls() {
        assert_eq!(
            parse_request(r#"{"control":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"control":"shutdown"}"#).unwrap(),
            Request::Shutdown
        );
        assert!(parse_request(r#"{"control":"reboot"}"#).is_err());
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":1}"#).is_err());
    }

    #[test]
    fn responses_round_trip() {
        let ok = job_ok(7, 0, "shots: 64\n11: 64\n", 123);
        let parsed = parse_job_response(&ok).unwrap();
        assert_eq!(parsed.id, 7);
        assert!(parsed.ok);
        assert_eq!(parsed.code, 0);
        assert_eq!(parsed.output, "shots: 64\n11: 64\n");
        assert_eq!(parsed.latency_us, 123);
        assert!(!parsed.dropped);

        let err = job_err(8, "queue full", true);
        let parsed = parse_job_response(&err).unwrap();
        assert!(!parsed.ok);
        assert!(parsed.dropped);
        assert_eq!(parsed.error.as_deref(), Some("queue full"));
    }
}
