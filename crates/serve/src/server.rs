//! The `qra serve` daemon: a Unix-socket accept loop feeding a bounded
//! lock-free work queue drained by a pool of worker threads.
//!
//! # Shutdown / drain state machine
//!
//! ```text
//! ACCEPTING --(SIGTERM | {"control":"shutdown"} | drain_handle)--> DRAINING
//! DRAINING: stop accepting; connection readers exit (new jobs are
//!           refused with an error response); queued + in-flight jobs
//!           finish and their responses are written.
//! DRAINED:  workers join, the socket file is removed, `run` returns.
//! ```
//!
//! Jobs are never abandoned once enqueued: every accepted job gets a
//! response line before `run` returns. Jobs refused during drain or by
//! queue backpressure get an immediate error response and count in the
//! `dropped` metric (backpressure only).

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use qra_sim::ProgramCache;

use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::protocol::{self, JobResponse, Request};
use crate::spmc::SpmcQueue;

/// Errors from the daemon and its clients.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeError(pub String);

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ServeError {}

/// The function that executes one job's argv; the CLI injects its own
/// argument parser + command dispatcher so daemon jobs run byte-for-byte
/// the same code as direct invocations.
pub type JobExecutor = dyn Fn(&[String]) -> Result<(String, i32), String> + Send + Sync;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Unix socket path to listen on (created at startup, removed at
    /// drain). A stale socket file from a dead daemon is replaced; a
    /// live one is an error.
    pub socket: PathBuf,
    /// Worker threads; `0` resolves to available parallelism.
    pub workers: usize,
    /// Work-queue depth; jobs beyond it are refused (backpressure).
    pub queue_depth: usize,
    /// Compiled-program cache surfaced in status snapshots (the executor
    /// closure holds its own reference for actual lookups).
    pub cache: Option<Arc<ProgramCache>>,
    /// Worker host list advertised in status (the CLI layer appends
    /// `--hosts` to sweep-run jobs itself).
    pub hosts: Vec<String>,
    /// Install a SIGTERM handler that triggers graceful drain. Leave off
    /// for in-process servers (tests, benches) — handlers are
    /// process-global.
    pub handle_sigterm: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            socket: PathBuf::from("qra-serve.sock"),
            workers: 0,
            queue_depth: 256,
            cache: None,
            hosts: Vec::new(),
            handle_sigterm: false,
        }
    }
}

/// Final metrics returned by [`Server::run`] after drain.
#[derive(Debug, Clone)]
pub struct ServeSummary {
    /// Snapshot taken after the last job finished.
    pub metrics: MetricsSnapshot,
    /// Total daemon lifetime.
    pub uptime: Duration,
}

/// One queued job: the argv to execute plus the connection to answer on.
struct Job {
    id: u64,
    argv: Vec<String>,
    reply: Arc<Mutex<UnixStream>>,
    enqueued: Instant,
}

/// Process-global SIGTERM latch (handlers are process-global, so this
/// cannot live in the server struct).
static SIGTERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigterm(_signum: i32) {
    SIGTERM.store(true, Ordering::SeqCst);
}

extern "C" {
    // libc's signal(2), linked via std; avoids a libc crate dependency.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

const SIGTERM_NO: i32 = 15;

/// Shared daemon state: queue, metrics, drain latch.
struct Inner {
    queue: SpmcQueue<Job>,
    metrics: ServeMetrics,
    draining: AtomicBool,
    /// Set by `cleanup` only after every reader has been joined and the
    /// queue is dry — workers must not exit on `draining` alone, or a
    /// reader that has not yet observed the flag could enqueue a job
    /// with nobody left to run it.
    stop_workers: AtomicBool,
    executor: Arc<JobExecutor>,
    cache: Option<Arc<ProgramCache>>,
    hosts: Vec<String>,
    workers: usize,
    started: Instant,
}

impl Inner {
    fn status_line(&self) -> String {
        let snap = self.metrics.snapshot();
        let cache = match &self.cache {
            Some(c) => format!(
                "{{\"hits\":{},\"misses\":{},\"entries\":{}}}",
                c.hits(),
                c.misses(),
                c.entries()
            ),
            None => "null".to_string(),
        };
        let hosts = self
            .hosts
            .iter()
            .map(|h| qra_faults::json::json_str(h))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"ok\":true,\"status\":{{\"workers\":{},\"queue_capacity\":{},\"queued\":{},\
             \"in_flight\":{},\"processed\":{},\"dropped\":{},\"draining\":{},\
             \"uptime_ms\":{},\"hosts\":[{hosts}],\"cache\":{cache},\
             \"latency_us\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}}}}}",
            self.workers,
            self.queue.capacity(),
            self.queue.len(),
            snap.in_flight,
            snap.processed,
            snap.dropped,
            self.draining.load(Ordering::SeqCst),
            self.started.elapsed().as_millis(),
            snap.latency_count,
            snap.p50_us,
            snap.p95_us,
            snap.p99_us,
        )
    }
}

/// Writes one response line to a shared connection; a client that hung
/// up only fails its own responses.
fn respond(reply: &Mutex<UnixStream>, line: &str) {
    let mut stream = reply.lock().expect("reply stream poisoned");
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

/// The streaming assertion daemon. Construct with an executor closure,
/// then [`Server::run`] blocks until drained.
pub struct Server {
    config: ServerConfig,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a daemon executing jobs through `executor`.
    pub fn new(config: ServerConfig, executor: Arc<JobExecutor>) -> Server {
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            queue: SpmcQueue::with_capacity(config.queue_depth),
            metrics: ServeMetrics::new(),
            draining: AtomicBool::new(false),
            stop_workers: AtomicBool::new(false),
            executor: Arc::clone(&executor),
            cache: config.cache.clone(),
            hosts: config.hosts.clone(),
            workers,
            started: Instant::now(),
        });
        Server { config, inner }
    }

    /// A latch that triggers graceful drain when set — the in-process
    /// equivalent of SIGTERM for tests and benches.
    pub fn drain_when(&self) -> impl Fn() + Send + Sync + 'static {
        let inner = Arc::clone(&self.inner);
        move || inner.draining.store(true, Ordering::SeqCst)
    }

    /// Binds the socket, serves until drain is requested (SIGTERM,
    /// `{"control":"shutdown"}`, or [`Server::drain_when`]), finishes
    /// every accepted job, and returns the final metrics.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the socket cannot be bound (including another
    /// live daemon on the same path) or the accept loop fails.
    pub fn run(&self) -> Result<ServeSummary, ServeError> {
        if self.config.handle_sigterm {
            SIGTERM.store(false, Ordering::SeqCst);
            unsafe { signal(SIGTERM_NO, on_sigterm) };
        }
        let listener = bind_socket(&self.config.socket)?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError(format!("nonblocking accept: {e}")))?;

        let mut workers = Vec::with_capacity(self.inner.workers);
        for _ in 0..self.inner.workers {
            let inner = Arc::clone(&self.inner);
            workers.push(thread::spawn(move || worker_loop(&inner)));
        }

        let mut readers: Vec<thread::JoinHandle<()>> = Vec::new();
        loop {
            if SIGTERM.load(Ordering::SeqCst) {
                self.inner.draining.store(true, Ordering::SeqCst);
            }
            if self.inner.draining.load(Ordering::SeqCst) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let inner = Arc::clone(&self.inner);
                    readers.push(thread::spawn(move || read_connection(stream, &inner)));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                    readers.retain(|r| !r.is_finished());
                }
                Err(e) => {
                    self.inner.draining.store(true, Ordering::SeqCst);
                    cleanup(&self.config.socket, readers, workers, &self.inner);
                    return Err(ServeError(format!("accept failed: {e}")));
                }
            }
        }
        cleanup(&self.config.socket, readers, workers, &self.inner);
        Ok(ServeSummary {
            metrics: self.inner.metrics.snapshot(),
            uptime: self.inner.started.elapsed(),
        })
    }
}

/// Joins readers (no new jobs after this), waits for the queue and
/// in-flight set to empty, stops workers, removes the socket.
fn cleanup(
    socket: &Path,
    readers: Vec<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    inner: &Arc<Inner>,
) {
    for r in readers {
        let _ = r.join();
    }
    // All producers are gone; the queue can only shrink now.
    while !inner.queue.is_empty() || inner.metrics.in_flight() > 0 {
        thread::sleep(Duration::from_millis(1));
    }
    inner.stop_workers.store(true, Ordering::SeqCst);
    for w in workers {
        let _ = w.join();
    }
    let _ = std::fs::remove_file(socket);
}

/// Binds `path`, replacing a stale socket file but refusing to displace
/// a live daemon.
fn bind_socket(path: &Path) -> Result<UnixListener, ServeError> {
    if path.exists() {
        if UnixStream::connect(path).is_ok() {
            return Err(ServeError(format!(
                "socket {} already has a live daemon",
                path.display()
            )));
        }
        std::fs::remove_file(path)
            .map_err(|e| ServeError(format!("removing stale socket {}: {e}", path.display())))?;
    }
    UnixListener::bind(path).map_err(|e| ServeError(format!("binding {}: {e}", path.display())))
}

/// One worker: pop, execute (panic-isolated), respond, repeat until
/// drain is requested and the queue is dry.
fn worker_loop(inner: &Arc<Inner>) {
    loop {
        match inner.queue.try_pop() {
            Some(job) => {
                inner.metrics.job_started();
                let result = catch_unwind(AssertUnwindSafe(|| (inner.executor)(&job.argv)));
                let latency_us = job.enqueued.elapsed().as_micros() as u64;
                let line = match result {
                    Ok(Ok((output, code))) => protocol::job_ok(job.id, code, &output, latency_us),
                    Ok(Err(message)) => protocol::job_err(job.id, &message, false),
                    Err(_) => protocol::job_err(job.id, "job panicked", false),
                };
                respond(&job.reply, &line);
                inner.metrics.job_finished(latency_us);
            }
            None => {
                if inner.stop_workers.load(Ordering::SeqCst) {
                    return;
                }
                thread::sleep(Duration::from_micros(200));
            }
        }
    }
}

/// One connection: parse request lines, enqueue jobs, answer controls.
fn read_connection(stream: UnixStream, inner: &Arc<Inner>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let reply = Arc::new(Mutex::new(match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    }));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    handle_request(trimmed, &reply, inner);
                }
                line.clear();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Partial data stays in `line` across the timeout.
                if inner.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_request(line: &str, reply: &Arc<Mutex<UnixStream>>, inner: &Arc<Inner>) {
    match protocol::parse_request(line) {
        Ok(Request::Status) => respond(reply, &inner.status_line()),
        Ok(Request::Shutdown) => {
            respond(reply, "{\"ok\":true,\"draining\":true}");
            inner.draining.store(true, Ordering::SeqCst);
        }
        Ok(Request::Job { id, argv }) => {
            if inner.draining.load(Ordering::SeqCst) {
                respond(reply, &protocol::job_err(id, "daemon is draining", false));
                return;
            }
            let job = Job {
                id,
                argv,
                reply: Arc::clone(reply),
                enqueued: Instant::now(),
            };
            if let Err(refused) = inner.queue.try_push(job) {
                inner.metrics.job_dropped();
                respond(reply, &protocol::job_err(refused.id, "queue full", true));
            }
        }
        Err(message) => {
            respond(
                reply,
                &format!(
                    "{{\"ok\":false,\"error\":{}}}",
                    qra_faults::json::json_str(&message)
                ),
            );
        }
    }
}

/// Connects to a daemon, submits every argv as one job, and returns the
/// responses in submission order (ids are assigned 0..n and responses
/// reordered, so multi-worker daemons still yield deterministic output).
///
/// # Errors
///
/// [`ServeError`] on connect/write failures, malformed responses, or a
/// connection closed before every job was answered.
pub fn submit_jobs(socket: &Path, jobs: &[Vec<String>]) -> Result<Vec<JobResponse>, ServeError> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| ServeError(format!("connecting to {}: {e}", socket.display())))?;
    for (id, argv) in jobs.iter().enumerate() {
        let rendered = argv
            .iter()
            .map(|a| qra_faults::json::json_str(a))
            .collect::<Vec<_>>()
            .join(",");
        let line = format!("{{\"id\":{id},\"argv\":[{rendered}]}}\n");
        stream
            .write_all(line.as_bytes())
            .map_err(|e| ServeError(format!("submitting job {id}: {e}")))?;
    }
    stream
        .flush()
        .map_err(|e| ServeError(format!("flushing jobs: {e}")))?;
    let mut responses: Vec<Option<JobResponse>> = vec![None; jobs.len()];
    let mut pending = jobs.len();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while pending > 0 {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| ServeError(format!("reading response: {e}")))?;
        if n == 0 {
            return Err(ServeError(format!(
                "daemon closed the connection with {pending} job(s) unanswered"
            )));
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let response = protocol::parse_job_response(trimmed).map_err(ServeError)?;
        let slot = responses
            .get_mut(response.id as usize)
            .ok_or_else(|| ServeError(format!("response for unknown job id {}", response.id)))?;
        if slot.replace(response).is_none() {
            pending -= 1;
        }
    }
    Ok(responses
        .into_iter()
        .map(|r| r.expect("all answered"))
        .collect())
}

/// Sends one control request and returns the daemon's response line.
fn control(socket: &Path, verb: &str) -> Result<String, ServeError> {
    let mut stream = UnixStream::connect(socket)
        .map_err(|e| ServeError(format!("connecting to {}: {e}", socket.display())))?;
    stream
        .write_all(format!("{{\"control\":{}}}\n", qra_faults::json::json_str(verb)).as_bytes())
        .map_err(|e| ServeError(format!("sending {verb}: {e}")))?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| ServeError(format!("reading {verb} response: {e}")))?;
    if line.trim().is_empty() {
        return Err(ServeError(format!("empty {verb} response")));
    }
    Ok(line.trim().to_string())
}

/// Requests a status snapshot from a live daemon.
///
/// # Errors
///
/// [`ServeError`] when no daemon answers on `socket`.
pub fn request_status(socket: &Path) -> Result<String, ServeError> {
    control(socket, "status")
}

/// Asks a live daemon to drain and exit; returns its acknowledgement.
///
/// # Errors
///
/// [`ServeError`] when no daemon answers on `socket`.
pub fn request_shutdown(socket: &Path) -> Result<String, ServeError> {
    control(socket, "shutdown")
}
