//! Bounded lock-free work queue (Vyukov bounded-MPMC algorithm).
//!
//! The daemon's accept loop pushes jobs, a pool of worker threads pops
//! them — a single-producer/multi-consumer shape, though the algorithm
//! is safe for multiple producers too (connection reader threads push
//! concurrently). Each slot carries a sequence counter that encodes
//! whether it is ready for a push or a pop of a given lap, so producers
//! and consumers only contend on their own cursor CAS; no locks, no
//! allocation after construction.
//!
//! A full queue fails the push immediately ([`SpmcQueue::try_push`]
//! returns the job back) — backpressure is the caller's policy, the
//! queue never blocks.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot<T> {
    /// Lap marker: equals the slot index when empty for lap 0; a push at
    /// global position `pos` stores `pos + 1`, the matching pop restores
    /// `pos + capacity` for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free queue; capacity is rounded up to a power of two.
pub struct SpmcQueue<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    /// Producer cursor: next global push position.
    tail: AtomicUsize,
    /// Consumer cursor: next global pop position.
    head: AtomicUsize,
}

// SAFETY: slots are handed off between threads through the `seq`
// acquire/release protocol — a value is written before the release store
// that publishes it and read after the acquire load that observes it, so
// no two threads access a slot's value concurrently.
unsafe impl<T: Send> Sync for SpmcQueue<T> {}
unsafe impl<T: Send> Send for SpmcQueue<T> {}

impl<T> std::fmt::Debug for SpmcQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpmcQueue")
            .field("capacity", &self.capacity())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> SpmcQueue<T> {
    /// Creates a queue holding at least `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> SpmcQueue<T> {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpmcQueue {
            slots,
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate number of queued items (exact when quiescent).
    pub fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        tail.saturating_sub(head)
    }

    /// `true` when no items are queued (approximate under contention).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `value`, or returns it back when the queue is full.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot is empty for this lap: claim the position.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique
                        // writer of the slot for lap `pos`; the release
                        // store below publishes the value to the popper.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // The slot still holds the previous lap's value: full.
                return Err(value);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues the oldest item, or `None` when the queue is empty.
    pub fn try_pop(&self) -> Option<T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - (pos + 1) as isize;
            if dif == 0 {
                // Slot holds this lap's value: claim the position.
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS made this thread the unique
                        // reader of the slot for lap `pos`, and the
                        // acquire load of `seq` observed the producer's
                        // release store, so the value is initialized.
                        let value = unsafe { (*slot.value.get()).assume_init_read() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T> Drop for SpmcQueue<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_single_thread() {
        let q = SpmcQueue::with_capacity(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        assert!(q.try_push(99).is_err());
        for i in 0..4 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up() {
        let q: SpmcQueue<u8> = SpmcQueue::with_capacity(5);
        assert_eq!(q.capacity(), 8);
        let q: SpmcQueue<u8> = SpmcQueue::with_capacity(0);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn wraps_around_many_laps() {
        let q = SpmcQueue::with_capacity(2);
        for i in 0..1000 {
            q.try_push(i).unwrap();
            assert_eq!(q.try_pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn drop_releases_queued_values() {
        let q = SpmcQueue::with_capacity(8);
        let marker = Arc::new(());
        for _ in 0..5 {
            q.try_push(Arc::clone(&marker)).unwrap();
        }
        drop(q);
        assert_eq!(Arc::strong_count(&marker), 1);
    }

    #[test]
    fn concurrent_producers_and_consumers_lose_nothing() {
        const PRODUCERS: usize = 3;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 2000;
        let q = Arc::new(SpmcQueue::with_capacity(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let q = Arc::clone(&q);
            handles.push(thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut item = p * PER_PRODUCER + i;
                    loop {
                        match q.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..CONSUMERS {
            let q = Arc::clone(&q);
            consumers.push(thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match q.try_pop() {
                        Some(v) => {
                            if v == usize::MAX {
                                break;
                            }
                            seen.push(v);
                        }
                        None => thread::yield_now(),
                    }
                }
                seen
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // One poison pill per consumer.
        for _ in 0..CONSUMERS {
            loop {
                if q.try_push(usize::MAX).is_ok() {
                    break;
                }
                thread::yield_now();
            }
        }
        let mut all = HashSet::new();
        for c in consumers {
            for v in c.join().unwrap() {
                assert!(all.insert(v), "duplicate item {v}");
            }
        }
        assert_eq!(all.len(), PRODUCERS * PER_PRODUCER);
    }
}
