//! Streaming assertion service for the `qra` workspace.
//!
//! One-shot `qra` invocations pay process startup and full circuit
//! lowering per request; the paper's workload — repeated assertion
//! evaluation over a fixed circuit set — amortizes both behind a
//! long-lived daemon:
//!
//! * [`Server`] listens on a Unix socket for line-delimited JSON job
//!   requests ([`protocol`]), feeds them through a bounded lock-free
//!   SPMC work queue ([`SpmcQueue`]) to a pool of worker threads, and
//!   answers each with the job's exact one-shot output (byte-identical
//!   to running the same argv directly, by construction: the CLI injects
//!   its own dispatcher as the [`JobExecutor`]).
//! * A shared [`qra_sim::ProgramCache`] lets repeat circuits skip
//!   lowering; cached and fresh compiles are bit-identical, so cache
//!   hits never change results.
//! * [`ServeMetrics`] tracks processed/dropped counters and online
//!   p50/p95/p99 latency, surfaced through `{"control":"status"}`.
//! * SIGTERM (or `{"control":"shutdown"}`) triggers a graceful drain
//!   that finishes every accepted job before exit.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod metrics;
pub mod protocol;
pub mod server;
pub mod spmc;

pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use protocol::{JobResponse, Request};
pub use server::{
    request_shutdown, request_status, submit_jobs, JobExecutor, ServeError, ServeSummary, Server,
    ServerConfig,
};
pub use spmc::SpmcQueue;
