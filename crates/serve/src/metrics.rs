//! Streaming-harness metrics: processed/dropped counters and online
//! latency percentiles over a bounded reservoir of recent samples.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Most recent latency samples retained for percentile estimation; old
/// samples are overwritten ring-style so a long-lived daemon reports
/// current behavior, not its all-time history.
const LATENCY_WINDOW: usize = 4096;

/// Counters and latency reservoir shared by every worker thread.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    processed: AtomicU64,
    dropped: AtomicU64,
    in_flight: AtomicU64,
    latencies: Mutex<LatencyRing>,
}

#[derive(Debug, Default)]
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
    total: u64,
}

/// Point-in-time metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Jobs completed (successfully or with a job-level error response).
    pub processed: u64,
    /// Jobs rejected because the queue was full.
    pub dropped: u64,
    /// Jobs popped by a worker but not yet finished.
    pub in_flight: u64,
    /// Total latency samples ever recorded (may exceed the window).
    pub latency_count: u64,
    /// 50th-percentile job latency in microseconds (0 when no samples).
    pub p50_us: u64,
    /// 95th-percentile job latency in microseconds.
    pub p95_us: u64,
    /// 99th-percentile job latency in microseconds.
    pub p99_us: u64,
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> ServeMetrics {
        ServeMetrics::default()
    }

    /// Marks one job popped from the queue.
    pub fn job_started(&self) {
        self.in_flight.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one job finished, recording its end-to-end latency
    /// (enqueue to response) in microseconds.
    pub fn job_finished(&self, latency_us: u64) {
        self.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.processed.fetch_add(1, Ordering::Relaxed);
        let mut ring = self.latencies.lock().expect("metrics poisoned");
        ring.total += 1;
        if ring.samples.len() < LATENCY_WINDOW {
            ring.samples.push(latency_us);
        } else {
            let at = ring.next;
            ring.samples[at] = latency_us;
        }
        ring.next = (ring.next + 1) % LATENCY_WINDOW;
    }

    /// Marks one job rejected at the queue (backpressure drop).
    pub fn job_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of jobs completed so far.
    pub fn processed(&self) -> u64 {
        self.processed.load(Ordering::Relaxed)
    }

    /// Number of jobs rejected at the queue so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of jobs currently executing.
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// Computes a point-in-time snapshot; percentiles use nearest-rank
    /// over the retained window.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let (latency_count, sorted) = {
            let ring = self.latencies.lock().expect("metrics poisoned");
            let mut sorted = ring.samples.clone();
            sorted.sort_unstable();
            (ring.total, sorted)
        };
        MetricsSnapshot {
            processed: self.processed(),
            dropped: self.dropped(),
            in_flight: self.in_flight(),
            latency_count,
            p50_us: percentile(&sorted, 0.50),
            p95_us: percentile(&sorted, 0.95),
            p99_us: percentile(&sorted, 0.99),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice (0 when empty).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_lifecycle() {
        let m = ServeMetrics::new();
        m.job_started();
        assert_eq!(m.in_flight(), 1);
        m.job_finished(100);
        m.job_dropped();
        let snap = m.snapshot();
        assert_eq!(snap.processed, 1);
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.in_flight, 0);
        assert_eq!(snap.latency_count, 1);
        assert_eq!(snap.p50_us, 100);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let m = ServeMetrics::new();
        for us in 1..=100 {
            m.job_started();
            m.job_finished(us);
        }
        let snap = m.snapshot();
        assert_eq!(snap.p50_us, 50);
        assert_eq!(snap.p95_us, 95);
        assert_eq!(snap.p99_us, 99);
    }

    #[test]
    fn window_overwrites_oldest() {
        let m = ServeMetrics::new();
        for _ in 0..LATENCY_WINDOW {
            m.job_started();
            m.job_finished(1);
        }
        for _ in 0..LATENCY_WINDOW {
            m.job_started();
            m.job_finished(1000);
        }
        let snap = m.snapshot();
        assert_eq!(snap.latency_count, 2 * LATENCY_WINDOW as u64);
        assert_eq!(snap.p50_us, 1000);
    }

    #[test]
    fn empty_percentiles_are_zero() {
        let snap = ServeMetrics::new().snapshot();
        assert_eq!((snap.p50_us, snap.p95_us, snap.p99_us), (0, 0, 0));
        assert_eq!(snap.latency_count, 0);
    }
}
