//! Service-lifecycle integration tests against an in-process daemon
//! with a synthetic executor: concurrent clients, queue-full
//! backpressure accounting, and graceful drain finishing accepted jobs.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use qra_serve::{request_shutdown, request_status, submit_jobs, Server, ServerConfig};

static SOCKET_COUNTER: AtomicU64 = AtomicU64::new(0);

fn socket_path(tag: &str) -> PathBuf {
    let n = SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "qra-serve-test-{}-{tag}-{n}.sock",
        std::process::id()
    ))
}

fn wait_for_socket(path: &std::path::Path) {
    for _ in 0..500 {
        if std::os::unix::net::UnixStream::connect(path).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon never bound {}", path.display());
}

/// Echo executor: deterministic output derived from the argv alone.
fn echo_executor() -> Arc<qra_serve::JobExecutor> {
    Arc::new(|argv: &[String]| Ok((format!("echo:{}", argv.join(" ")), 0)))
}

#[test]
fn concurrent_clients_get_correct_ordered_responses() {
    let socket = socket_path("concurrent");
    let server = Arc::new(Server::new(
        ServerConfig {
            socket: socket.clone(),
            workers: 4,
            // Holds the full 4 x 25 burst: this test is about ordering
            // under concurrency, not backpressure (covered below), so
            // drops must be impossible whatever the scheduler does.
            queue_depth: 128,
            ..ServerConfig::default()
        },
        echo_executor(),
    ));
    let run = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.run().unwrap())
    };
    wait_for_socket(&socket);

    let mut clients = Vec::new();
    for c in 0..4 {
        let socket = socket.clone();
        clients.push(thread::spawn(move || {
            let jobs: Vec<Vec<String>> = (0..25)
                .map(|j| vec![format!("client{c}"), format!("job{j}")])
                .collect();
            let responses = submit_jobs(&socket, &jobs).unwrap();
            assert_eq!(responses.len(), 25);
            for (j, r) in responses.iter().enumerate() {
                assert!(r.ok, "client {c} job {j}: {:?}", r.error);
                assert_eq!(r.id, j as u64);
                assert_eq!(r.output, format!("echo:client{c} job{j}"));
            }
        }));
    }
    for c in clients {
        c.join().unwrap();
    }

    let status = request_status(&socket).unwrap();
    assert!(status.contains("\"processed\":100"), "status: {status}");
    assert!(status.contains("\"dropped\":0"), "status: {status}");

    request_shutdown(&socket).unwrap();
    let summary = run.join().unwrap();
    assert_eq!(summary.metrics.processed, 100);
    assert_eq!(summary.metrics.dropped, 0);
    assert!(summary.metrics.latency_count >= 100);
    assert!(!socket.exists(), "socket not removed after drain");
}

#[test]
fn queue_full_backpressure_drops_and_accounts() {
    let socket = socket_path("backpressure");
    let slow: Arc<qra_serve::JobExecutor> = Arc::new(|argv: &[String]| {
        thread::sleep(Duration::from_millis(40));
        Ok((argv.join(" "), 0))
    });
    let server = Arc::new(Server::new(
        ServerConfig {
            socket: socket.clone(),
            workers: 1,
            queue_depth: 2,
            ..ServerConfig::default()
        },
        slow,
    ));
    let run = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.run().unwrap())
    };
    wait_for_socket(&socket);

    let jobs: Vec<Vec<String>> = (0..20).map(|j| vec![format!("burst{j}")]).collect();
    let responses = submit_jobs(&socket, &jobs).unwrap();
    assert_eq!(responses.len(), 20);
    let dropped = responses.iter().filter(|r| r.dropped).count();
    let executed = responses.iter().filter(|r| r.ok).count();
    assert!(dropped > 0, "a 20-job burst into a depth-2 queue must drop");
    assert_eq!(dropped + executed, 20, "every job gets exactly one verdict");
    for r in &responses {
        if r.dropped {
            assert_eq!(r.error.as_deref(), Some("queue full"));
        }
    }

    request_shutdown(&socket).unwrap();
    let summary = run.join().unwrap();
    assert_eq!(summary.metrics.dropped, dropped as u64);
    assert_eq!(summary.metrics.processed, executed as u64);
}

#[test]
fn drain_finishes_accepted_jobs() {
    let socket = socket_path("drain");
    let slow: Arc<qra_serve::JobExecutor> = Arc::new(|argv: &[String]| {
        thread::sleep(Duration::from_millis(100));
        Ok((format!("done:{}", argv.join(" ")), 0))
    });
    let server = Arc::new(Server::new(
        ServerConfig {
            socket: socket.clone(),
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        },
        slow,
    ));
    let drain = server.drain_when();
    let run = {
        let server = Arc::clone(&server);
        thread::spawn(move || server.run().unwrap())
    };
    wait_for_socket(&socket);

    let client = {
        let socket = socket.clone();
        thread::spawn(move || {
            let jobs: Vec<Vec<String>> = (0..4).map(|j| vec![format!("slow{j}")]).collect();
            submit_jobs(&socket, &jobs).unwrap()
        })
    };
    // Let the jobs reach the queue, then drain mid-execution.
    thread::sleep(Duration::from_millis(120));
    drain();

    let responses = client.join().unwrap();
    let summary = run.join().unwrap();
    // Every accepted job completed and was answered before exit; none
    // were abandoned (drain refusals would carry an error, not output).
    assert_eq!(responses.len(), 4);
    for r in &responses {
        assert!(r.ok, "drain abandoned a job: {:?}", r.error);
        assert!(r.output.starts_with("done:"));
    }
    assert_eq!(summary.metrics.processed, 4);
    assert_eq!(summary.metrics.in_flight, 0);
}
