//! Randomized property tests for the §VIII checkpoint instrumentation and
//! the counts/post-selection invariants it relies on.
//!
//! Seeded PRNG loops replace the former proptest strategies; every case is
//! deterministic for a fixed base seed.

use qra::core::checkpoint::{
    instrument, instrument_against, CheckpointOptions, CheckpointPlacement,
};
use qra::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 8;

/// A random measurement-free program over `n` qubits.
fn random_program(rng: &mut StdRng, n: usize, max_len: usize) -> Circuit {
    let len = rng.gen_range(1usize..=max_len);
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let op = rng.gen_range(0usize..5);
        let a = rng.gen_range(0usize..n);
        let b = rng.gen_range(0usize..n);
        let angle = rng.gen_range(-2.0..2.0);
        let b2 = if a == b { (b + 1) % n } else { b };
        match op {
            0 => {
                c.h(a);
            }
            1 => {
                c.ry(angle, a);
            }
            2 => {
                c.rz(angle, a);
            }
            3 => {
                c.cx(a, b2);
            }
            _ => {
                c.cz(a, b2);
            }
        }
    }
    c
}

#[test]
fn self_instrumented_programs_never_flag() {
    let mut rng = StdRng::seed_from_u64(31);
    for _ in 0..CASES {
        let program = random_program(&mut rng, 3, 10);
        let instrumented = instrument(
            &program,
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::EveryN(3),
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        let counts = StatevectorSimulator::with_seed(1)
            .run(&instrumented.circuit, 256)
            .unwrap();
        for handle in &instrumented.handles {
            assert_eq!(handle.error_rate(&counts), 0.0);
        }
    }
}

#[test]
fn instrumentation_preserves_program_semantics() {
    let mut rng = StdRng::seed_from_u64(32);
    for _ in 0..CASES {
        // The data qubits' final reduced state must be unchanged by the
        // (passing) checkpoints.
        let program = random_program(&mut rng, 3, 8);
        let instrumented = instrument(
            &program,
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::EndOnly,
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        // Strip measurements to compare states.
        let mut stripped = Circuit::new(instrumented.circuit.num_qubits());
        for inst in instrumented.circuit.instructions() {
            if let Some(g) = inst.as_gate() {
                stripped.append(g.clone(), &inst.qubits).unwrap();
            }
        }
        let full = stripped.statevector().unwrap();
        let rho = CMatrix::outer(&full, &full);
        let traced: Vec<usize> = (3..stripped.num_qubits()).collect();
        let reduced = rho.partial_trace(&traced).unwrap();
        let expect = program.statevector().unwrap();
        let target = CMatrix::outer(&expect, &expect);
        assert!(reduced.approx_eq(&target, 1e-7));
    }
}

#[test]
fn single_gate_mutation_is_caught_by_dense_checkpoints() {
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..CASES {
        // Mutate one gate (replace it with a different gate at a position)
        // and verify the reference-based instrumentation flags some
        // checkpoint, unless the mutation is a no-op on the state.
        let program = random_program(&mut rng, 3, 6);
        let mutate_idx = rng.gen_range(0usize..6);
        let idx = mutate_idx % program.len();
        let mut mutated = Circuit::new(3);
        for (i, inst) in program.instructions().iter().enumerate() {
            let g = inst.as_gate().unwrap().clone();
            if i == idx {
                // Replace with a different gate on the same qubits.
                match g {
                    Gate::H => {
                        mutated.x(inst.qubits[0]);
                    }
                    Gate::Cx => {
                        mutated.cz(inst.qubits[0], inst.qubits[1]);
                    }
                    Gate::Cz => {
                        mutated.cx(inst.qubits[0], inst.qubits[1]);
                    }
                    Gate::Ry(t) => {
                        mutated.ry(t + 1.0, inst.qubits[0]);
                    }
                    Gate::Rz(t) => {
                        mutated.rz(t + 1.0, inst.qubits[0]);
                    }
                    other => {
                        mutated.append(other, &inst.qubits).unwrap();
                    }
                }
            } else {
                mutated.append(g, &inst.qubits).unwrap();
            }
        }
        // Detection is probabilistic with per-shot probability 1 − F where
        // F is the overlap at the first diverging checkpoint; only demand
        // detection when the mutation is observably large (final-state
        // fidelity ≤ 0.9), otherwise 512 shots lack statistical power —
        // e.g. a phase gate after a tiny rotation moves the state by <1%.
        let fidelity = mutated
            .statevector()
            .unwrap()
            .inner(&program.statevector().unwrap())
            .unwrap()
            .norm_sqr();
        if fidelity > 0.9 {
            continue;
        }

        let instrumented = instrument_against(
            &mutated,
            &program,
            &CheckpointOptions {
                design: Design::Swap,
                placement: CheckpointPlacement::EveryN(1),
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        let counts = StatevectorSimulator::with_seed(2)
            .run(&instrumented.circuit, 512)
            .unwrap();
        let report = AssertionReport::from_counts(&counts, &instrumented.handles);
        assert!(
            report.first_failing(0.01).is_some(),
            "mutation at {idx} escaped dense checkpoints"
        );
    }
}

#[test]
fn post_selection_total_is_consistent() {
    let mut rng = StdRng::seed_from_u64(34);
    for _ in 0..CASES {
        let program = random_program(&mut rng, 2, 6);
        let instrumented = instrument(
            &program,
            &CheckpointOptions {
                design: Design::Ndd,
                placement: CheckpointPlacement::EndOnly,
                qubits: None,
                reuse_ancillas: false,
            },
        )
        .unwrap();
        let counts = StatevectorSimulator::with_seed(3)
            .run(&instrumented.circuit, 512)
            .unwrap();
        for handle in &instrumented.handles {
            let (filtered, kept) = handle.post_select(&counts);
            assert!(filtered.total() <= counts.total());
            let expected_kept = if counts.total() == 0 {
                0.0
            } else {
                filtered.total() as f64 / counts.total() as f64
            };
            assert!((kept - expected_kept).abs() < 1e-12);
            assert!((handle.error_rate(&counts) - (1.0 - kept)).abs() < 1e-12);
        }
    }
}
