//! Randomized property tests on the synthesis substrate: state
//! preparation, unitary synthesis, the optimizer, and the cost model.
//!
//! Seeded PRNG loops replace the former proptest strategies; every case is
//! deterministic for a fixed base seed.

use qra::circuit::passes::peephole_optimize;
use qra::circuit::synthesis::{prepare_state, unitary_circuit};
use qra::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 16;

fn random_state(rng: &mut StdRng, n: usize) -> CVector {
    let dim = 1usize << n;
    loop {
        let v = CVector::new(
            (0..dim)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        if let Ok(u) = v.normalized() {
            return u;
        }
    }
}

/// A random small circuit over `n` qubits built from a fixed opcode set.
fn random_circuit(rng: &mut StdRng, n: usize, len: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for _ in 0..len {
        let op = rng.gen_range(0usize..6);
        let a = rng.gen_range(0usize..n);
        let b = rng.gen_range(0usize..n);
        let angle = rng.gen_range(-2.0..2.0);
        let b2 = if a == b { (b + 1) % n } else { b };
        match op {
            0 => {
                c.h(a);
            }
            1 => {
                c.rz(angle, a);
            }
            2 => {
                c.ry(angle, a);
            }
            3 => {
                c.cx(a, b2);
            }
            4 => {
                c.cz(a, b2);
            }
            _ => {
                c.t(a);
            }
        }
    }
    c
}

#[test]
fn prepare_state_roundtrips() {
    let mut rng = StdRng::seed_from_u64(11);
    for _ in 0..CASES {
        let state = random_state(&mut rng, 3);
        let c = prepare_state(&state).unwrap();
        let sv = c.statevector().unwrap();
        assert!(sv.approx_eq_up_to_phase(&state, 1e-7));
    }
}

#[test]
fn prepare_state_respects_cx_bound() {
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..CASES {
        let state = random_state(&mut rng, 4);
        let c = prepare_state(&state).unwrap();
        let counts = GateCounts::of(&c).unwrap();
        // O(2ⁿ) bound with a generous constant.
        assert!(counts.cx <= 2 * 16, "cx = {}", counts.cx);
    }
}

#[test]
fn peephole_preserves_semantics() {
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng, 3, 24);
        let opt = peephole_optimize(&c);
        assert!(opt.len() <= c.len());
        let u1 = c.unitary_matrix().unwrap();
        let u2 = opt.unitary_matrix().unwrap();
        assert!(u1.approx_eq_up_to_phase(&u2, 1e-7));
    }
}

#[test]
fn optimizer_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(14);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng, 3, 16);
        let once = peephole_optimize(&c);
        let twice = peephole_optimize(&once);
        assert_eq!(once.len(), twice.len());
    }
}

#[test]
fn unitary_synthesis_roundtrips_from_circuits() {
    let mut rng = StdRng::seed_from_u64(15);
    for _ in 0..CASES {
        // Any random 2-qubit unitary built from gates must re-synthesise.
        let c = random_circuit(&mut rng, 2, 8);
        let u = c.unitary_matrix().unwrap();
        let synth = unitary_circuit(&u).unwrap();
        let got = synth.unitary_matrix().unwrap();
        assert!(got.approx_eq_up_to_phase(&u, 1e-6));
    }
}

#[test]
fn cost_model_is_additive() {
    let mut rng = StdRng::seed_from_u64(16);
    for _ in 0..CASES {
        let a = random_circuit(&mut rng, 3, 10);
        let b = random_circuit(&mut rng, 3, 10);
        let ca = GateCounts::of(&a).unwrap();
        let cb = GateCounts::of(&b).unwrap();
        let mut joined = a.clone();
        joined.compose(&b, &[0, 1, 2], &[]).unwrap();
        let cj = GateCounts::of(&joined).unwrap();
        assert_eq!(cj.cx, ca.cx + cb.cx);
        assert_eq!(cj.sg, ca.sg + cb.sg);
    }
}

#[test]
fn inverse_circuit_cancels() {
    let mut rng = StdRng::seed_from_u64(17);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng, 3, 12);
        let mut full = c.clone();
        let inv = c.inverse().unwrap();
        full.compose(&inv, &[0, 1, 2], &[]).unwrap();
        let sv = full.statevector().unwrap();
        assert!(sv.approx_eq_up_to_phase(&CVector::basis_state(8, 0), 1e-7));
    }
}

#[test]
fn basis_completion_is_orthonormal() {
    let mut rng = StdRng::seed_from_u64(18);
    for _ in 0..CASES {
        let state = random_state(&mut rng, 3);
        let basis = qra::math::complete_basis(std::slice::from_ref(&state), 8).unwrap();
        assert_eq!(basis.len(), 8);
        assert!(qra::math::gram_schmidt::is_orthonormal(&basis, 1e-7));
        assert!(basis[0].approx_eq(&state, 1e-9));
    }
}

#[test]
fn density_eigendecomposition_roundtrips() {
    let mut rng = StdRng::seed_from_u64(19);
    for _ in 0..CASES {
        let a = random_state(&mut rng, 2);
        let b = random_state(&mut rng, 2);
        let p = rng.gen_range(0.05..0.95);
        let rho = CMatrix::outer(&a, &a)
            .scale(C64::from(p))
            .add(&CMatrix::outer(&b, &b).scale(C64::from(1.0 - p)))
            .unwrap();
        let eig = qra::math::hermitian_eigen(&rho).unwrap();
        assert!(eig.reconstruct().approx_eq(&rho, 1e-7));
        let trace: f64 = eig.values.iter().sum();
        assert!((trace - 1.0).abs() < 1e-7);
        for v in &eig.values {
            assert!(*v > -1e-9, "density eigenvalues must be ≥ 0");
        }
    }
}

#[test]
fn qasm_export_roundtrips_gate_names() {
    let mut rng = StdRng::seed_from_u64(20);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng, 3, 10);
        let text = qra::circuit::qasm::to_qasm(&c).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        for inst in c.instructions() {
            if let Some(g) = inst.as_gate() {
                let name = match g.name() {
                    "p" => "u1",
                    other => other,
                };
                assert!(text.contains(name), "missing {name}");
            }
        }
    }
}

#[test]
fn qasm_full_roundtrip_preserves_unitary() {
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..CASES {
        let c = random_circuit(&mut rng, 3, 12);
        let text = qra::circuit::qasm::to_qasm(&c).unwrap();
        let parsed = qra::circuit::qasm_parser::from_qasm(&text).unwrap();
        assert_eq!(parsed.num_qubits(), c.num_qubits());
        assert_eq!(parsed.gate_count(), c.gate_count());
        let u1 = c.unitary_matrix().unwrap();
        let u2 = parsed.unitary_matrix().unwrap();
        assert!(
            u1.approx_eq_up_to_phase(&u2, 1e-9),
            "QASM roundtrip changed the unitary"
        );
    }
}

#[test]
fn depth_is_consistent_under_composition() {
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..CASES {
        let a = random_circuit(&mut rng, 3, 8);
        let b = random_circuit(&mut rng, 3, 8);
        let da = a.depth();
        let db = b.depth();
        let mut joined = a.clone();
        joined.compose(&b, &[0, 1, 2], &[]).unwrap();
        let dj = joined.depth();
        assert!(dj <= da + db);
        assert!(dj >= da.max(db));
    }
}
