//! Property-based tests on the synthesis substrate: state preparation,
//! unitary synthesis, the optimizer, and the cost model.

use proptest::prelude::*;
use qra::circuit::passes::peephole_optimize;
use qra::circuit::synthesis::{prepare_state, unitary_circuit};
use qra::prelude::*;

fn arb_state(n: usize) -> impl Strategy<Value = CVector> {
    let dim = 1usize << n;
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), dim).prop_filter_map(
        "state must be normalisable",
        |parts| {
            let v = CVector::new(parts.iter().map(|&(re, im)| C64::new(re, im)).collect());
            v.normalized().ok()
        },
    )
}

/// A random small circuit over `n` qubits described by opcode tuples.
fn arb_circuit(n: usize, len: usize) -> impl Strategy<Value = Circuit> {
    proptest::collection::vec((0usize..6, 0usize..n, 0usize..n, -2.0f64..2.0), len).prop_map(
        move |ops| {
            let mut c = Circuit::new(n);
            for (op, a, b, angle) in ops {
                let b2 = if a == b { (b + 1) % n } else { b };
                match op {
                    0 => {
                        c.h(a);
                    }
                    1 => {
                        c.rz(angle, a);
                    }
                    2 => {
                        c.ry(angle, a);
                    }
                    3 => {
                        c.cx(a, b2);
                    }
                    4 => {
                        c.cz(a, b2);
                    }
                    _ => {
                        c.t(a);
                    }
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prepare_state_roundtrips(state in arb_state(3)) {
        let c = prepare_state(&state).unwrap();
        let sv = c.statevector().unwrap();
        prop_assert!(sv.approx_eq_up_to_phase(&state, 1e-7));
    }

    #[test]
    fn prepare_state_respects_cx_bound(state in arb_state(4)) {
        let c = prepare_state(&state).unwrap();
        let counts = GateCounts::of(&c).unwrap();
        // O(2ⁿ) bound with a generous constant.
        prop_assert!(counts.cx <= 2 * 16, "cx = {}", counts.cx);
    }

    #[test]
    fn peephole_preserves_semantics(c in arb_circuit(3, 24)) {
        let opt = peephole_optimize(&c);
        prop_assert!(opt.len() <= c.len());
        let u1 = c.unitary_matrix().unwrap();
        let u2 = opt.unitary_matrix().unwrap();
        prop_assert!(u1.approx_eq_up_to_phase(&u2, 1e-7));
    }

    #[test]
    fn optimizer_is_idempotent(c in arb_circuit(3, 16)) {
        let once = peephole_optimize(&c);
        let twice = peephole_optimize(&once);
        prop_assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn unitary_synthesis_roundtrips_from_circuits(c in arb_circuit(2, 8)) {
        // Any random 2-qubit unitary built from gates must re-synthesise.
        let u = c.unitary_matrix().unwrap();
        let synth = unitary_circuit(&u).unwrap();
        let got = synth.unitary_matrix().unwrap();
        prop_assert!(got.approx_eq_up_to_phase(&u, 1e-6));
    }

    #[test]
    fn cost_model_is_additive(a in arb_circuit(3, 10), b in arb_circuit(3, 10)) {
        let ca = GateCounts::of(&a).unwrap();
        let cb = GateCounts::of(&b).unwrap();
        let mut joined = a.clone();
        joined.compose(&b, &[0, 1, 2], &[]).unwrap();
        let cj = GateCounts::of(&joined).unwrap();
        prop_assert_eq!(cj.cx, ca.cx + cb.cx);
        prop_assert_eq!(cj.sg, ca.sg + cb.sg);
    }

    #[test]
    fn inverse_circuit_cancels(c in arb_circuit(3, 12)) {
        let mut full = c.clone();
        let inv = c.inverse().unwrap();
        full.compose(&inv, &[0, 1, 2], &[]).unwrap();
        let sv = full.statevector().unwrap();
        prop_assert!(sv.approx_eq_up_to_phase(&CVector::basis_state(8, 0), 1e-7));
    }

    #[test]
    fn basis_completion_is_orthonormal(state in arb_state(3)) {
        let basis = qra::math::complete_basis(std::slice::from_ref(&state), 8).unwrap();
        prop_assert_eq!(basis.len(), 8);
        prop_assert!(qra::math::gram_schmidt::is_orthonormal(&basis, 1e-7));
        prop_assert!(basis[0].approx_eq(&state, 1e-9));
    }

    #[test]
    fn density_eigendecomposition_roundtrips(a in arb_state(2), b in arb_state(2), p in 0.05f64..0.95) {
        let rho = CMatrix::outer(&a, &a).scale(C64::from(p))
            .add(&CMatrix::outer(&b, &b).scale(C64::from(1.0 - p))).unwrap();
        let eig = qra::math::hermitian_eigen(&rho).unwrap();
        prop_assert!(eig.reconstruct().approx_eq(&rho, 1e-7));
        let trace: f64 = eig.values.iter().sum();
        prop_assert!((trace - 1.0).abs() < 1e-7);
        for v in &eig.values {
            prop_assert!(*v > -1e-9, "density eigenvalues must be ≥ 0");
        }
    }

    #[test]
    fn qasm_export_roundtrips_gate_names(c in arb_circuit(3, 10)) {
        let text = qra::circuit::qasm::to_qasm(&c).unwrap();
        prop_assert!(text.starts_with("OPENQASM 2.0;"));
        for inst in c.instructions() {
            if let Some(g) = inst.as_gate() {
                let name = match g.name() {
                    "p" => "u1",
                    other => other,
                };
                prop_assert!(text.contains(name), "missing {name}");
            }
        }
    }

    #[test]
    fn qasm_full_roundtrip_preserves_unitary(c in arb_circuit(3, 12)) {
        let text = qra::circuit::qasm::to_qasm(&c).unwrap();
        let parsed = qra::circuit::qasm_parser::from_qasm(&text).unwrap();
        prop_assert_eq!(parsed.num_qubits(), c.num_qubits());
        prop_assert_eq!(parsed.gate_count(), c.gate_count());
        let u1 = c.unitary_matrix().unwrap();
        let u2 = parsed.unitary_matrix().unwrap();
        prop_assert!(u1.approx_eq_up_to_phase(&u2, 1e-9),
            "QASM roundtrip changed the unitary");
    }

    #[test]
    fn depth_is_consistent_under_composition(a in arb_circuit(3, 8), b in arb_circuit(3, 8)) {
        let da = a.depth();
        let db = b.depth();
        let mut joined = a.clone();
        joined.compose(&b, &[0, 1, 2], &[]).unwrap();
        let dj = joined.depth();
        prop_assert!(dj <= da + db);
        prop_assert!(dj >= da.max(db));
    }
}
