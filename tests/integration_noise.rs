//! Integration tests for noisy-device behaviour (§IX-B semantics): the
//! assertion-error rate rises above the noise floor when a bug is present,
//! and post-selection on passing assertions improves the success rate.

use qra::algorithms::qpe::{expected_slot_state, qpe, QpeBug, QpeConfig};
use qra::algorithms::states;
use qra::prelude::*;

fn noisy_sim() -> DensityMatrixSimulator {
    DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like())
}

#[test]
fn noise_floor_is_nonzero_but_bounded() {
    // A correct GHZ program still raises some assertion errors under noise.
    let mut circuit = states::ghz(3);
    let handle = insert_assertion(
        &mut circuit,
        &[0, 1, 2],
        &StateSpec::pure(states::ghz_vector(3)).unwrap(),
        Design::Swap,
    )
    .unwrap();
    let dist = noisy_sim().outcome_distribution(&circuit).unwrap();
    let error_rate: f64 = dist
        .iter()
        .filter(|(k, _)| handle.clbits.iter().any(|&b| (k >> b) & 1 == 1))
        .map(|(_, p)| p)
        .sum();
    assert!(error_rate > 0.005, "noise floor too low: {error_rate}");
    assert!(error_rate < 0.45, "noise floor too high: {error_rate}");
}

#[test]
fn bug_signal_exceeds_noise_floor() {
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let rate = |program: Circuit| {
        let mut circuit = program;
        let handle = insert_assertion(&mut circuit, &[0, 1, 2], &spec, Design::Swap).unwrap();
        let dist = noisy_sim().outcome_distribution(&circuit).unwrap();
        dist.iter()
            .filter(|(k, _)| handle.clbits.iter().any(|&b| (k >> b) & 1 == 1))
            .map(|(_, p)| p)
            .sum::<f64>()
    };
    let floor = rate(states::ghz(3));
    let with_bug = rate(states::ghz_bug1(3));
    assert!(
        with_bug > floor + 0.2,
        "bug signal {with_bug} not above floor {floor}"
    );
}

#[test]
fn post_selection_improves_ghz_fidelity() {
    // Measure the GHZ register under noise; filtering on the assertion
    // ancilla must raise the fraction of |000⟩/|111⟩ outcomes.
    let mut circuit = states::ghz(3);
    let handle = insert_assertion(
        &mut circuit,
        &[0, 1, 2],
        &StateSpec::pure(states::ghz_vector(3)).unwrap(),
        Design::Swap,
    )
    .unwrap();
    let cl_base = circuit.num_clbits();
    circuit.expand_clbits(cl_base + 3);
    for q in 0..3 {
        circuit.measure(q, cl_base + q).unwrap();
    }
    let counts = noisy_sim().run(&circuit, 8192, 11).unwrap();
    let success = |c: &Counts| {
        let mut good = 0u64;
        for (key, n) in c.iter() {
            let bits: u64 = (key >> cl_base) & 0b111;
            if bits == 0 || bits == 0b111 {
                good += n;
            }
        }
        if c.total() == 0 {
            0.0
        } else {
            good as f64 / c.total() as f64
        }
    };
    let raw = success(&counts);
    let (filtered, kept) = handle.post_select(&counts);
    let improved = success(&filtered);
    assert!(kept > 0.3, "post-selection kept too little: {kept}");
    assert!(
        improved > raw,
        "filtering must improve success: {raw} → {improved}"
    );
}

#[test]
fn sec9b_single_qubit_assertion_under_noise() {
    // The §IX-B setup at reduced size (2 counting qubits keeps the density
    // simulation fast): single-qubit SWAP assertion at the final slot.
    let config = QpeConfig {
        counting: 2,
        ..QpeConfig::paper_sec9b()
    };
    let build = |bug: QpeBug| {
        let cfg = config.with_bug(bug);
        let mut circuit = qpe(&cfg);
        let v = expected_slot_state(&config, config.num_slots());
        let rho = CMatrix::outer(&v, &v);
        let traced: Vec<usize> = (0..config.counting).collect();
        let reduced = rho.partial_trace(&traced).unwrap();
        let eig = qra::math::hermitian_eigen(&reduced).unwrap();
        assert_eq!(eig.rank(1e-9), 1);
        let spec = StateSpec::pure(eig.vectors[0].clone()).unwrap();
        let handle =
            insert_assertion(&mut circuit, &[config.eigen_qubit()], &spec, Design::Swap).unwrap();
        (circuit, handle)
    };
    let (clean_c, clean_h) = build(QpeBug::None);
    let dist = noisy_sim().outcome_distribution(&clean_c).unwrap();
    let floor: f64 = dist
        .iter()
        .filter(|(k, _)| clean_h.clbits.iter().any(|&b| (k >> b) & 1 == 1))
        .map(|(_, p)| p)
        .sum();

    let (bug_c, bug_h) = build(QpeBug::WrongParameterOrder);
    let dist = noisy_sim().outcome_distribution(&bug_c).unwrap();
    let bug_rate: f64 = dist
        .iter()
        .filter(|(k, _)| bug_h.clbits.iter().any(|&b| (k >> b) & 1 == 1))
        .map(|(_, p)| p)
        .sum();
    assert!(
        bug_rate > floor + 0.02,
        "§IX-B ordering violated: floor {floor}, bug {bug_rate}"
    );
}

#[test]
fn noise_models_are_ordered() {
    // More noise ⇒ higher assertion-error floor, monotonic across presets.
    let spec = StateSpec::pure(states::bell_vector()).unwrap();
    let floor = |preset: DevicePreset| {
        let mut circuit = states::bell();
        let handle = insert_assertion(&mut circuit, &[0, 1], &spec, Design::Ndd).unwrap();
        let sim = DensityMatrixSimulator::with_noise(preset.noise_model());
        let dist = sim.outcome_distribution(&circuit).unwrap();
        dist.iter()
            .filter(|(k, _)| handle.clbits.iter().any(|&b| (k >> b) & 1 == 1))
            .map(|(_, p)| p)
            .sum::<f64>()
    };
    let ideal = floor(DevicePreset::Ideal);
    let low = floor(DevicePreset::LowNoise);
    let mel = floor(DevicePreset::MelbourneLike);
    assert!(ideal < 1e-9);
    assert!(
        low > ideal && mel > low,
        "ideal {ideal}, low {low}, mel {mel}"
    );
}
