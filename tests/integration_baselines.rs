//! Integration tests for the baseline schemes (Stat / Primitive / Proq)
//! against the proposed designs — the behavioural content of Table I.

use qra::algorithms::states;
use qra::core::baselines::{primitive, proq, statistical_assertion};
use qra::prelude::*;

#[test]
fn table1_stat_row() {
    // Stat: Bug1 False (phase invisible), Bug2 True.
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let bug1 = statistical_assertion(&states::ghz_bug1(3), &[0, 1, 2], &spec, 8192, 1).unwrap();
    assert!(bug1.passed(0.05), "Stat must MISS Bug1 (Table I)");
    let bug2 = statistical_assertion(&states::ghz_bug2(3), &[0, 1, 2], &spec, 8192, 2).unwrap();
    assert!(!bug2.passed(0.05), "Stat must CATCH Bug2 (Table I)");
}

#[test]
fn table1_primitive_row() {
    // Primitive: N/A for the precise GHZ state.
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    assert!(
        primitive::supports(&spec).is_none(),
        "Table I: Primitive N/A"
    );
    assert!(primitive::build(&spec).is_err());
}

#[test]
fn table1_proq_row() {
    // Proq: detects both bugs, using zero ancillas.
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    for (program, min_rate, name) in [
        (states::ghz_bug1(3), 0.4, "bug1"),
        (states::ghz_bug2(3), 0.2, "bug2"),
    ] {
        let mut circuit = program;
        let handle = proq::insert(&mut circuit, &[0, 1, 2], &spec).unwrap();
        let counts = StatevectorSimulator::with_seed(3)
            .run(&circuit, 4096)
            .unwrap();
        assert!(handle.error_rate(&counts) > min_rate, "Proq missed {name}");
    }
}

#[test]
fn table1_proposed_rows() {
    // SWAP precise: catches both bugs. Mixed-state (last two qubits):
    // catches Bug2 only. NDD approximate (paper's parity-pair set):
    // catches both.
    let precise = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let mixed = {
        let e0 = CVector::basis_state(4, 0);
        let e3 = CVector::basis_state(4, 3);
        let rho = CMatrix::outer(&e0, &e0)
            .scale(C64::from(0.5))
            .add(&CMatrix::outer(&e3, &e3).scale(C64::from(0.5)))
            .unwrap();
        StateSpec::mixed(rho).unwrap()
    };

    let rate = |program: &Circuit, qubits: &[usize], spec: &StateSpec, design: Design| {
        let mut c = program.clone();
        let h = insert_assertion(&mut c, qubits, spec, design).unwrap();
        let counts = StatevectorSimulator::with_seed(4).run(&c, 8192).unwrap();
        h.error_rate(&counts)
    };

    // SWAP-based precise assertion: True / True.
    assert!(rate(&states::ghz_bug1(3), &[0, 1, 2], &precise, Design::Swap) > 0.4);
    assert!(rate(&states::ghz_bug2(3), &[0, 1, 2], &precise, Design::Swap) > 0.2);

    // SWAP-based mixed-state assertion on the last two qubits:
    // False (Bug1 keeps the parity structure) / True.
    assert_eq!(
        rate(&states::ghz_bug1(3), &[1, 2], &mixed, Design::Swap),
        0.0,
        "Table I: mixed-state assertion must miss Bug1"
    );
    assert!(rate(&states::ghz_bug2(3), &[1, 2], &mixed, Design::Swap) > 0.2);

    // NDD with the ± parity-pair set (3 CX): True / True.
    let s = 0.5f64.sqrt();
    let pair = |a: usize, b: usize, sign: f64| {
        let mut v = CVector::zeros(8);
        v[a] = C64::from(s);
        v[b] = C64::from(sign * s);
        v
    };
    let ndd_set = StateSpec::set(vec![
        pair(0b000, 0b111, 1.0),
        pair(0b001, 0b110, 1.0),
        pair(0b011, 0b100, 1.0),
        pair(0b010, 0b101, 1.0),
    ])
    .unwrap();
    assert!(rate(&states::ghz_bug1(3), &[0, 1, 2], &ndd_set, Design::Ndd) > 0.4);
    assert!(rate(&states::ghz_bug2(3), &[0, 1, 2], &ndd_set, Design::Ndd) > 0.2);
}

#[test]
fn primitive_matches_proposed_on_supported_states() {
    // Where the primitives DO apply, they agree with our designs.
    let even =
        StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
    let built = primitive::build(&even).unwrap();

    // Correct Bell program passes the primitive parity check.
    let mut ok = Circuit::with_clbits(2 + built.num_ancilla, built.num_clbits);
    ok.h(0).cx(0, 1);
    let map: Vec<usize> = (0..2 + built.num_ancilla).collect();
    let cl: Vec<usize> = (0..built.num_clbits).collect();
    ok.compose(&built.circuit, &map, &cl).unwrap();
    let counts = StatevectorSimulator::with_seed(5).run(&ok, 2048).unwrap();
    assert_eq!(counts.any_set_frequency(&cl), 0.0);

    // And the proposed NDD agrees.
    let mut ndd_prog = Circuit::new(2);
    ndd_prog.h(0).cx(0, 1);
    let h = insert_assertion(&mut ndd_prog, &[0, 1], &even, Design::Ndd).unwrap();
    let counts = StatevectorSimulator::with_seed(5)
        .run(&ndd_prog, 2048)
        .unwrap();
    assert_eq!(h.error_rate(&counts), 0.0);
}

#[test]
fn proq_handles_mixed_states_partially() {
    // Proq on a rank-2 mixed state: passes correct mixtures.
    let e0 = CVector::basis_state(4, 0);
    let e3 = CVector::basis_state(4, 3);
    let rho = CMatrix::outer(&e0, &e0)
        .scale(C64::from(0.5))
        .add(&CMatrix::outer(&e3, &e3).scale(C64::from(0.5)))
        .unwrap();
    let spec = StateSpec::mixed(rho).unwrap();
    let mut program = states::ghz(3);
    let handle = proq::insert(&mut program, &[1, 2], &spec).unwrap();
    let counts = StatevectorSimulator::with_seed(6)
        .run(&program, 2048)
        .unwrap();
    assert_eq!(handle.error_rate(&counts), 0.0);
}

#[test]
fn cost_comparison_proq_cheapest_single_qubit() {
    // Table III single-qubit column: proq 0 CX, swap ≥ 2 CX, or 1 CX,
    // ndd 2 CX (general 1q state).
    let tilted = StateSpec::pure(CVector::from_real(&[0.6, 0.8])).unwrap();
    let swap = synthesize_assertion(&tilted, Design::Swap).unwrap();
    let or = synthesize_assertion(&tilted, Design::LogicalOr).unwrap();
    let ndd = synthesize_assertion(&tilted, Design::Ndd).unwrap();
    assert_eq!(or.gate_counts().cx, 1);
    assert_eq!(swap.gate_counts().cx, 2);
    assert_eq!(ndd.gate_counts().cx, 2);
    // Auto must pick the logical-OR design here.
    let auto = synthesize_assertion(&tilted, Design::Auto).unwrap();
    assert_eq!(auto.design(), Design::LogicalOr);
}
