//! Randomized property tests on the assertion designs: for randomly
//! generated states and programs, a correct program never raises an
//! assertion error and an orthogonal state always does.
//!
//! These use a seeded PRNG loop (deterministic run-to-run) rather than a
//! shrinking framework; each case derives its generator from the test's
//! base seed so failures reproduce exactly.

use qra::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 12;

/// A random normalised state vector on `n` qubits.
fn random_state(rng: &mut StdRng, n: usize) -> CVector {
    let dim = 1usize << n;
    loop {
        let v = CVector::new(
            (0..dim)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect(),
        );
        if let Ok(u) = v.normalized() {
            return u;
        }
    }
}

/// Builds a program preparing exactly `state` using the synthesis pipeline.
fn preparation_program(state: &CVector) -> Circuit {
    qra::circuit::synthesis::prepare_state(state).expect("synthesis")
}

fn error_rate(circuit: &Circuit, handle: &AssertionHandle, seed: u64) -> f64 {
    let counts = StatevectorSimulator::with_seed(seed)
        .run(circuit, 512)
        .expect("simulation");
    handle.error_rate(&counts)
}

fn correct_states_never_flag(design: Design, base_seed: u64) {
    let mut rng = StdRng::seed_from_u64(base_seed);
    for case in 0..CASES {
        let state = random_state(&mut rng, 2);
        let mut circuit = preparation_program(&state);
        let handle = insert_assertion(
            &mut circuit,
            &[0, 1],
            &StateSpec::pure(state).unwrap(),
            design,
        )
        .unwrap();
        assert_eq!(
            error_rate(&circuit, &handle, base_seed + case as u64),
            0.0,
            "{design} flagged its own state (case {case})"
        );
    }
}

#[test]
fn correct_states_never_flag_swap() {
    correct_states_never_flag(Design::Swap, 101);
}

#[test]
fn correct_states_never_flag_ndd() {
    correct_states_never_flag(Design::Ndd, 202);
}

#[test]
fn correct_states_never_flag_logical_or() {
    correct_states_never_flag(Design::LogicalOr, 303);
}

#[test]
fn three_qubit_states_pass_their_own_assertion() {
    let mut rng = StdRng::seed_from_u64(404);
    for case in 0..CASES {
        let state = random_state(&mut rng, 3);
        let mut circuit = preparation_program(&state);
        let handle = insert_assertion(
            &mut circuit,
            &[0, 1, 2],
            &StateSpec::pure(state).unwrap(),
            Design::Auto,
        )
        .unwrap();
        assert_eq!(error_rate(&circuit, &handle, 4 + case as u64), 0.0);
    }
}

#[test]
fn orthogonal_states_always_flag() {
    let mut rng = StdRng::seed_from_u64(505);
    for _ in 0..CASES {
        // Build a state orthogonal to the asserted one by completing the
        // basis and preparing the second basis vector.
        let seed_state = random_state(&mut rng, 2);
        let basis = qra::math::complete_basis(std::slice::from_ref(&seed_state), 4).unwrap();
        let orthogonal = basis[1].clone();
        let mut circuit = preparation_program(&orthogonal);
        let handle = insert_assertion(
            &mut circuit,
            &[0, 1],
            &StateSpec::pure(seed_state).unwrap(),
            Design::Swap,
        )
        .unwrap();
        // Orthogonal states are "incorrect" with certainty.
        assert!(error_rate(&circuit, &handle, 5) > 0.99);
    }
}

#[test]
fn error_rate_tracks_overlap_for_ndd() {
    let mut rng = StdRng::seed_from_u64(606);
    for _ in 0..CASES {
        // NDD pass probability equals |⟨ψ|φ⟩|² exactly.
        let state = random_state(&mut rng, 1);
        let probe = random_state(&mut rng, 1);
        let overlap = state.inner(&probe).unwrap().norm_sqr();
        let mut circuit = preparation_program(&probe);
        let handle = insert_assertion(
            &mut circuit,
            &[0],
            &StateSpec::pure(state).unwrap(),
            Design::Ndd,
        )
        .unwrap();
        let counts = StatevectorSimulator::with_seed(6)
            .run(&circuit, 4096)
            .unwrap();
        let rate = handle.error_rate(&counts);
        assert!(
            ((1.0 - overlap) - rate).abs() < 0.08,
            "overlap {overlap}, rate {rate}"
        );
    }
}

#[test]
fn set_members_pass_approximate_assertion() {
    let mut rng = StdRng::seed_from_u64(707);
    for case in 0..CASES {
        let a = random_state(&mut rng, 2);
        let b = random_state(&mut rng, 2);
        let pick_second = rng.gen_bool(0.5);
        let spec = StateSpec::set(vec![a.clone(), b.clone()]).unwrap();
        // Full-rank degenerate sets (t = 4) are unassertable; skip those.
        if spec.correct_states().is_err() {
            continue;
        }
        let member = if pick_second { &b } else { &a };
        let mut circuit = preparation_program(member);
        let handle = insert_assertion(&mut circuit, &[0, 1], &spec, Design::Ndd).unwrap();
        assert_eq!(
            error_rate(&circuit, &handle, 7),
            0.0,
            "set member flagged (case {case})"
        );
    }
}

#[test]
fn mixed_state_purifications_pass() {
    let mut rng = StdRng::seed_from_u64(808);
    for _ in 0..CASES {
        // Entangle the 2 test qubits with an environment qubit, assert the
        // reduced density matrix: must pass.
        let state = random_state(&mut rng, 2);
        let mut program = Circuit::new(3);
        program
            .compose(&preparation_program(&state), &[0, 1], &[])
            .unwrap();
        program.cx(1, 2); // entangle with environment
        let sv = program.statevector().unwrap();
        let rho = CMatrix::outer(&sv, &sv).partial_trace(&[2]).unwrap();
        let spec = match StateSpec::mixed(rho) {
            Ok(s) => s,
            Err(_) => continue, // numerically degenerate: skip
        };
        if spec.correct_states().is_err() {
            continue; // full rank: unassertable by design
        }
        let mut circuit = program;
        let handle = insert_assertion(&mut circuit, &[0, 1], &spec, Design::Ndd).unwrap();
        assert_eq!(error_rate(&circuit, &handle, 8), 0.0);
    }
}
