//! Property-based tests on the assertion designs: for randomly generated
//! states and programs, a correct program never raises an assertion error
//! and an orthogonal state always does.

use proptest::prelude::*;
use qra::prelude::*;

/// A random normalised state vector on `n` qubits from raw amplitude parts.
fn arb_state(n: usize) -> impl Strategy<Value = CVector> {
    let dim = 1usize << n;
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), dim).prop_filter_map(
        "state must be normalisable",
        |parts| {
            let v = CVector::new(parts.iter().map(|&(re, im)| C64::new(re, im)).collect());
            v.normalized().ok()
        },
    )
}

/// Builds a program preparing exactly `state` using the synthesis pipeline.
fn preparation_program(state: &CVector) -> Circuit {
    qra::circuit::synthesis::prepare_state(state).expect("synthesis")
}

fn error_rate(circuit: &Circuit, handle: &AssertionHandle, seed: u64) -> f64 {
    let counts = StatevectorSimulator::with_seed(seed)
        .run(circuit, 512)
        .expect("simulation");
    handle.error_rate(&counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn correct_states_never_flag_swap(state in arb_state(2)) {
        let mut circuit = preparation_program(&state);
        let handle = insert_assertion(
            &mut circuit, &[0, 1],
            &StateSpec::pure(state).unwrap(), Design::Swap,
        ).unwrap();
        prop_assert_eq!(error_rate(&circuit, &handle, 1), 0.0);
    }

    #[test]
    fn correct_states_never_flag_ndd(state in arb_state(2)) {
        let mut circuit = preparation_program(&state);
        let handle = insert_assertion(
            &mut circuit, &[0, 1],
            &StateSpec::pure(state).unwrap(), Design::Ndd,
        ).unwrap();
        prop_assert_eq!(error_rate(&circuit, &handle, 2), 0.0);
    }

    #[test]
    fn correct_states_never_flag_logical_or(state in arb_state(2)) {
        let mut circuit = preparation_program(&state);
        let handle = insert_assertion(
            &mut circuit, &[0, 1],
            &StateSpec::pure(state).unwrap(), Design::LogicalOr,
        ).unwrap();
        prop_assert_eq!(error_rate(&circuit, &handle, 3), 0.0);
    }

    #[test]
    fn three_qubit_states_pass_their_own_assertion(state in arb_state(3)) {
        let mut circuit = preparation_program(&state);
        let handle = insert_assertion(
            &mut circuit, &[0, 1, 2],
            &StateSpec::pure(state).unwrap(), Design::Auto,
        ).unwrap();
        prop_assert_eq!(error_rate(&circuit, &handle, 4), 0.0);
    }

    #[test]
    fn orthogonal_states_always_flag(seed_state in arb_state(2)) {
        // Build a state orthogonal to the asserted one by completing the
        // basis and preparing the second basis vector.
        let basis = qra::math::complete_basis(
            std::slice::from_ref(&seed_state), 4).unwrap();
        let orthogonal = basis[1].clone();
        let mut circuit = preparation_program(&orthogonal);
        let handle = insert_assertion(
            &mut circuit, &[0, 1],
            &StateSpec::pure(seed_state).unwrap(), Design::Swap,
        ).unwrap();
        // Orthogonal states are "incorrect" with certainty.
        prop_assert!(error_rate(&circuit, &handle, 5) > 0.99);
    }

    #[test]
    fn error_rate_tracks_overlap_for_ndd(state in arb_state(1), probe in arb_state(1)) {
        // NDD pass probability equals |⟨ψ|φ⟩|² exactly.
        let overlap = state.inner(&probe).unwrap().norm_sqr();
        let mut circuit = preparation_program(&probe);
        let handle = insert_assertion(
            &mut circuit, &[0],
            &StateSpec::pure(state).unwrap(), Design::Ndd,
        ).unwrap();
        let counts = StatevectorSimulator::with_seed(6)
            .run(&circuit, 4096).unwrap();
        let rate = handle.error_rate(&counts);
        prop_assert!(((1.0 - overlap) - rate).abs() < 0.08,
            "overlap {overlap}, rate {rate}");
    }

    #[test]
    fn set_members_pass_approximate_assertion(
        a in arb_state(2), b in arb_state(2), pick_second in any::<bool>()
    ) {
        let spec = StateSpec::set(vec![a.clone(), b.clone()]).unwrap();
        // Full-rank degenerate sets (t = 4) are unassertable; skip those.
        prop_assume!(spec.correct_states().is_ok());
        let member = if pick_second { &b } else { &a };
        let mut circuit = preparation_program(member);
        let handle = insert_assertion(&mut circuit, &[0, 1], &spec, Design::Ndd).unwrap();
        prop_assert_eq!(error_rate(&circuit, &handle, 7), 0.0);
    }

    #[test]
    fn mixed_state_purifications_pass(state in arb_state(2)) {
        // Entangle the 2 test qubits with an environment qubit, assert the
        // reduced density matrix: must pass.
        let mut program = Circuit::new(3);
        program.compose(&preparation_program(&state), &[0, 1], &[]).unwrap();
        program.cx(1, 2); // entangle with environment
        let sv = program.statevector().unwrap();
        let rho = CMatrix::outer(&sv, &sv).partial_trace(&[2]).unwrap();
        let spec = match StateSpec::mixed(rho) {
            Ok(s) => s,
            Err(_) => return Ok(()), // numerically degenerate: skip
        };
        match spec.correct_states() {
            Ok(_) => {}
            Err(_) => return Ok(()), // full rank: unassertable by design
        }
        let mut circuit = program;
        let handle = insert_assertion(&mut circuit, &[0, 1], &spec, Design::Ndd).unwrap();
        prop_assert_eq!(error_rate(&circuit, &handle, 8), 0.0);
    }
}
