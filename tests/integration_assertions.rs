//! Cross-crate integration tests: full programs with inserted assertions
//! running end-to-end through the state-vector simulator.

use qra::algorithms::{deutsch_jozsa, qpe, states};
use qra::prelude::*;

fn run(circuit: &Circuit, seed: u64) -> Counts {
    StatevectorSimulator::with_seed(seed)
        .run(circuit, 4096)
        .expect("simulation")
}

#[test]
fn all_designs_pass_on_all_case_study_states() {
    let cases: Vec<(Circuit, CVector)> = vec![
        (states::bell(), states::bell_vector()),
        (states::ghz(3), states::ghz_vector(3)),
        (states::ghz(4), states::ghz_vector(4)),
        (states::w_state(3), states::w_vector(3)),
    ];
    for (program, expected) in cases {
        for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
            let mut circuit = program.clone();
            let qubits: Vec<usize> = (0..program.num_qubits()).collect();
            let handle = insert_assertion(
                &mut circuit,
                &qubits,
                &StateSpec::pure(expected.clone()).unwrap(),
                design,
            )
            .unwrap();
            let counts = run(&circuit, 1);
            assert_eq!(
                handle.error_rate(&counts),
                0.0,
                "{design} flagged a correct {}-qubit program",
                program.num_qubits()
            );
        }
    }
}

#[test]
fn every_design_detects_ghz_sign_bug() {
    for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
        let mut circuit = states::ghz_bug1(3);
        let handle = insert_assertion(
            &mut circuit,
            &[0, 1, 2],
            &StateSpec::pure(states::ghz_vector(3)).unwrap(),
            design,
        )
        .unwrap();
        let counts = run(&circuit, 2);
        assert!(
            handle.error_rate(&counts) > 0.4,
            "{design} missed the GHZ sign bug"
        );
    }
}

#[test]
fn qpe_slot_assertions_localize_bug1() {
    // The paper's §IX-A1 localisation: Bug1 passes slots 1–2, fails 3+.
    let clean = qpe::QpeConfig::paper_sec9a();
    let buggy = clean.with_bug(qpe::QpeBug::MissingLoopIndex);
    let mut rates = Vec::new();
    for slot in 1..=5 {
        let mut circuit = qpe::qpe_prefix(&buggy, slot);
        let expected = qpe::expected_slot_state(&clean, slot);
        let qubits: Vec<usize> = (0..clean.num_qubits()).collect();
        let handle = insert_assertion(
            &mut circuit,
            &qubits,
            &StateSpec::pure(expected).unwrap(),
            Design::Swap,
        )
        .unwrap();
        rates.push(handle.error_rate(&run(&circuit, 3)));
    }
    assert_eq!(rates[0], 0.0, "slot 1 must pass");
    assert_eq!(rates[1], 0.0, "slot 2 must pass (2^0 angle unchanged)");
    for (i, &r) in rates[2..].iter().enumerate() {
        assert!(r > 0.01, "slot {} should fail, rate {r}", i + 3);
    }
}

#[test]
fn qpe_mixed_state_assertion_catches_bug1_but_not_bug2() {
    // §IX-A2: the four-counting-qubit mixed state flags Bug1; under Bug2
    // the counting register is still |++++⟩ — a "correct" basis state —
    // so the mixed assertion stays silent.
    let clean = qpe::QpeConfig::paper_sec9a();
    let v5 = qpe::expected_slot_state(&clean, 5);
    let rho = CMatrix::outer(&v5, &v5);
    let counting_rho = rho.partial_trace(&[4]).unwrap();
    let spec = StateSpec::mixed(counting_rho).unwrap();

    let mut rates = Vec::new();
    for bug in [
        qpe::QpeBug::None,
        qpe::QpeBug::MissingLoopIndex,
        qpe::QpeBug::UncontrolledGate,
    ] {
        let mut circuit = qpe::qpe_prefix(&clean.with_bug(bug), 5);
        let handle = insert_assertion(&mut circuit, &[0, 1, 2, 3], &spec, Design::Ndd).unwrap();
        rates.push(handle.error_rate(&run(&circuit, 4)));
    }
    assert_eq!(rates[0], 0.0, "clean program must pass");
    assert!(rates[1] > 0.05, "mixed assertion must flag Bug1");
    assert!(
        rates[2] < 0.01,
        "mixed assertion must NOT flag Bug2 (paper §IX-A2)"
    );
}

#[test]
fn deutsch_jozsa_constant_set_assertion() {
    // §X: constant oracles pass the constant-set assertion; the buggy
    // ¾-constant oracle fails part of the time (not orthogonal).
    let set = StateSpec::set(deutsch_jozsa::constant_output_set(2)).unwrap();
    let mut pass_rates = Vec::new();
    for oracle in [
        deutsch_jozsa::Oracle::ConstantZero,
        deutsch_jozsa::Oracle::ConstantOne,
        deutsch_jozsa::Oracle::buggy_and(),
    ] {
        let mut circuit = deutsch_jozsa::probe_circuit(&oracle, 2).unwrap();
        let handle = insert_assertion(&mut circuit, &[0, 1, 2], &set, Design::Auto).unwrap();
        pass_rates.push(handle.error_rate(&run(&circuit, 5)));
    }
    assert_eq!(pass_rates[0], 0.0);
    assert_eq!(pass_rates[1], 0.0);
    assert!(
        pass_rates[2] > 0.1 && pass_rates[2] < 0.9,
        "buggy oracle overlaps the set partially: rate {}",
        pass_rates[2]
    );
}

#[test]
fn adder_assertion_catches_appendix_d_bug() {
    use qra::algorithms::adder::{add_const_fourier, AdderBug};
    use qra::algorithms::qft::append_qft;

    // Build the double-controlled adder in Fourier space and assert the
    // expected (clean) state right after the addition.
    let width = 3;
    let build = |bug: AdderBug| {
        let mut c = Circuit::new(width + 2);
        c.x(width).x(width + 1);
        c.x(width - 1); // b = 1
        let data: Vec<usize> = (0..width).collect();
        append_qft(&mut c, &data);
        add_const_fourier(&mut c, &data, 3, &[width, width + 1], bug).unwrap();
        c
    };
    let expected = build(AdderBug::None).statevector().unwrap();
    let spec = StateSpec::pure(expected).unwrap();
    let qubits: Vec<usize> = (0..width + 2).collect();

    let mut clean = build(AdderBug::None);
    let h = insert_assertion(&mut clean, &qubits, &spec, Design::Swap).unwrap();
    assert_eq!(h.error_rate(&run(&clean, 6)), 0.0);

    let mut buggy = build(AdderBug::WrongTargetInDoubleControl);
    let h = insert_assertion(&mut buggy, &qubits, &spec, Design::Swap).unwrap();
    assert!(
        h.error_rate(&run(&buggy, 6)) > 0.05,
        "Appendix D bug missed"
    );
}

#[test]
fn teleportation_shared_pair_assertion() {
    // Assert the Bell pair inside a teleportation circuit, then check the
    // payload still arrives.
    let mut circuit = Circuit::new(3);
    circuit.ry(0.8, 0); // payload
    circuit.h(1).cx(1, 2); // shared pair
    let handle = insert_assertion(
        &mut circuit,
        &[1, 2],
        &StateSpec::pure(states::bell_vector()).unwrap(),
        Design::Swap,
    )
    .unwrap();
    // Continue the teleportation protocol.
    circuit.cx(0, 1).h(0);
    circuit.cx(1, 2);
    circuit.cz(0, 2);
    let counts = run(&circuit, 7);
    assert_eq!(handle.error_rate(&counts), 0.0);
}

#[test]
fn stacked_assertions_report() {
    // Three assertion slots on a GHZ pipeline; report localises correctly.
    let mut circuit = Circuit::new(3);
    circuit.h(0);
    let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
    let h1 = insert_assertion(
        &mut circuit,
        &[0],
        &StateSpec::pure(plus).unwrap(),
        Design::LogicalOr,
    )
    .unwrap();
    circuit.cx(0, 1);
    let h2 = insert_assertion(
        &mut circuit,
        &[0, 1],
        &StateSpec::pure(states::bell_vector()).unwrap(),
        Design::Ndd,
    )
    .unwrap();
    circuit.cx(1, 2);
    // Deliberately wrong final assertion: expect W state instead of GHZ.
    let h3 = insert_assertion(
        &mut circuit,
        &[0, 1, 2],
        &StateSpec::pure(states::w_vector(3)).unwrap(),
        Design::Swap,
    )
    .unwrap();
    let counts = run(&circuit, 8);
    let report = AssertionReport::from_counts(&counts, &[h1, h2, h3]);
    assert_eq!(report.first_failing(0.01), Some(2));
    assert_eq!(report.per_assertion_error_rates()[0], 0.0);
    assert_eq!(report.per_assertion_error_rates()[1], 0.0);
    assert!(report.per_assertion_error_rates()[2] > 0.5);
}

#[test]
fn swap_assertion_enables_continued_computation() {
    // After a passing SWAP assertion mid-circuit, the program continues
    // and produces the same final distribution as without the assertion.
    let mut with_assert = Circuit::new(2);
    with_assert.h(0);
    let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
    let handle = insert_assertion(
        &mut with_assert,
        &[0],
        &StateSpec::pure(plus).unwrap(),
        Design::Swap,
    )
    .unwrap();
    with_assert.cx(0, 1);
    with_assert.h(0);
    let data_base = with_assert.num_clbits();
    with_assert.expand_clbits(data_base + 2);
    with_assert.measure(0, data_base).unwrap();
    with_assert.measure(1, data_base + 1).unwrap();
    let counts = run(&with_assert, 9);
    assert_eq!(handle.error_rate(&counts), 0.0);
    // Reference: |+⟩ → CX → H gives (|00⟩+|11⟩)... after H on qubit 0 the
    // marginal of qubit 0 is 50/50 and qubit 1 is 50/50, correlated.
    let p_q1 = counts.marginal_frequency(data_base + 1);
    assert!((p_q1 - 0.5).abs() < 0.05);
}
