//! Integration tests spanning the QASM import/export pipeline and the
//! trajectory noise back-end: assertion circuits survive a QASM roundtrip,
//! and the trajectory simulator reproduces the exact noisy statistics of
//! the density back-end on assertion workloads.

use qra::algorithms::states;
use qra::circuit::passes::peephole_optimize;
use qra::circuit::qasm::to_qasm;
use qra::circuit::qasm_parser::from_qasm;
use qra::prelude::*;
use qra::sim::TrajectorySimulator;

/// Lowers opaque gates so the exporter accepts the circuit.
fn lower_for_export(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    for inst in circuit.instructions() {
        match &inst.operation {
            qra::circuit::Operation::Gate(g) => match g {
                Gate::Ccz => {
                    out.h(inst.qubits[2]);
                    out.ccx(inst.qubits[0], inst.qubits[1], inst.qubits[2]);
                    out.h(inst.qubits[2]);
                }
                Gate::Unitary(m, _) if m.rows() == 2 => {
                    let angles = qra::circuit::synthesis::zyz_decompose(m).unwrap();
                    out.rz(angles.delta, inst.qubits[0]);
                    out.ry(angles.gamma, inst.qubits[0]);
                    out.rz(angles.beta, inst.qubits[0]);
                }
                g => {
                    out.append(g.clone(), &inst.qubits).unwrap();
                }
            },
            qra::circuit::Operation::Measure => {
                out.measure(inst.qubits[0], inst.clbits[0]).unwrap();
            }
            qra::circuit::Operation::Reset => {
                out.reset(inst.qubits[0]).unwrap();
            }
            qra::circuit::Operation::Barrier => {
                out.barrier_on(inst.qubits.clone());
            }
        }
    }
    out
}

#[test]
fn assertion_circuit_roundtrips_through_qasm() {
    for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
        let mut program = states::ghz(3);
        let handle = insert_assertion(
            &mut program,
            &[0, 1, 2],
            &StateSpec::pure(states::ghz_vector(3)).unwrap(),
            design,
        )
        .unwrap();
        let lowered = lower_for_export(&program);
        let text = to_qasm(&lowered).unwrap();
        let parsed = from_qasm(&text).unwrap();
        assert_eq!(parsed.num_qubits(), program.num_qubits());
        // The reparsed circuit must behave identically: zero error rate.
        let counts = StatevectorSimulator::with_seed(1)
            .run(&parsed, 4096)
            .unwrap();
        assert_eq!(
            handle.error_rate(&counts),
            0.0,
            "{design} assertion broke across the QASM roundtrip"
        );
    }
}

#[test]
fn optimized_assertion_circuit_roundtrips() {
    let mut program = states::ghz(3);
    let handle = insert_assertion(
        &mut program,
        &[0, 1, 2],
        &StateSpec::pure(states::ghz_vector(3)).unwrap(),
        Design::Swap,
    )
    .unwrap();
    let optimized = peephole_optimize(&program);
    assert!(optimized.len() <= program.len());
    let text = to_qasm(&lower_for_export(&optimized)).unwrap();
    let parsed = from_qasm(&text).unwrap();
    let counts = StatevectorSimulator::with_seed(2)
        .run(&parsed, 4096)
        .unwrap();
    assert_eq!(handle.error_rate(&counts), 0.0);
}

#[test]
fn trajectory_matches_density_on_assertion_workload() {
    // The §IX-B style check through BOTH noisy back-ends must agree.
    let mut circuit = states::ghz(3);
    let handle = insert_assertion(
        &mut circuit,
        &[0, 1, 2],
        &StateSpec::pure(states::ghz_vector(3)).unwrap(),
        Design::Swap,
    )
    .unwrap();
    let noise = DevicePreset::melbourne_like();

    // Exact error rate from the density back-end.
    let exact: f64 = DensityMatrixSimulator::with_noise(noise.clone())
        .outcome_distribution(&circuit)
        .unwrap()
        .iter()
        .filter(|(k, _)| handle.clbits.iter().any(|&b| (k >> b) & 1 == 1))
        .map(|(_, p)| p)
        .sum();

    // Sampled error rate from trajectories.
    let counts = TrajectorySimulator::new(noise, 11)
        .run(&circuit, 20_000)
        .unwrap();
    let sampled = handle.error_rate(&counts);
    assert!(
        (exact - sampled).abs() < 0.02,
        "density {exact} vs trajectory {sampled}"
    );
}

#[test]
fn trajectory_detects_bug_above_noise_floor() {
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let noise = DevicePreset::melbourne_like();
    let rate = |program: Circuit, seed: u64| {
        let mut circuit = program;
        let handle = insert_assertion(&mut circuit, &[0, 1, 2], &spec, Design::Swap).unwrap();
        let counts = TrajectorySimulator::new(noise.clone(), seed)
            .run(&circuit, 8192)
            .unwrap();
        handle.error_rate(&counts)
    };
    let floor = rate(states::ghz(3), 3);
    let bug = rate(states::ghz_bug1(3), 4);
    assert!(bug > floor + 0.2, "floor {floor}, bug {bug}");
}

#[test]
fn wide_noisy_assertion_beyond_density_limit() {
    // 6-qubit GHZ + 6 SWAP ancillas = 12 qubits with noise: the density
    // back-end caps at 10 qubits; trajectories handle it, and the
    // assertion still detects a sign bug. (The SWAP design keeps the gate
    // count linear, which keeps debug-mode trajectories fast.)
    let n = 6;
    let spec = StateSpec::pure(states::ghz_vector(n)).unwrap();
    let noise = DevicePreset::LowNoise.noise_model();
    let rate = |program: Circuit, seed: u64| {
        let mut circuit = program;
        let qubits: Vec<usize> = (0..n).collect();
        let handle = insert_assertion(&mut circuit, &qubits, &spec, Design::Swap).unwrap();
        assert!(
            circuit.num_qubits() > 10,
            "must exceed the density back-end limit"
        );
        let counts = TrajectorySimulator::new(noise.clone(), seed)
            .run(&circuit, 512)
            .unwrap();
        handle.error_rate(&counts)
    };
    let floor = rate(states::ghz(n), 5);
    let bug = rate(states::ghz_bug1(n), 6);
    assert!(floor < 0.5, "floor too high: {floor}");
    assert!(bug > floor + 0.2, "floor {floor}, bug {bug}");
}
