//! Cross-design integration tests: the three assertion designs implement
//! the same logical check, so they must agree on error rates (SWAP/OR
//! exactly; NDD agrees on zero/nonzero and on pure-state overlap values).

use qra::algorithms::{bernstein_vazirani, grover, states};
use qra::core::baselines::primitive;
use qra::prelude::*;

fn rate(program: &Circuit, qubits: &[usize], spec: &StateSpec, design: Design, seed: u64) -> f64 {
    let mut circuit = program.clone();
    let handle = insert_assertion(&mut circuit, qubits, spec, design).unwrap();
    let counts = StatevectorSimulator::with_seed(seed)
        .run(&circuit, 8192)
        .unwrap();
    handle.error_rate(&counts)
}

#[test]
fn designs_agree_on_pass_fail_for_probe_grid() {
    // Assert |+0⟩ against a grid of probe programs spanning pass/partial/fail.
    let s = 0.5f64.sqrt();
    let spec = StateSpec::pure(CVector::from_real(&[s, 0.0, s, 0.0])).unwrap();
    let probes: Vec<(Circuit, &str)> = vec![
        (
            {
                let mut c = Circuit::new(2);
                c.h(0);
                c
            },
            "exact",
        ),
        (
            {
                let mut c = Circuit::new(2);
                c.h(0).x(1);
                c
            },
            "orthogonal",
        ),
        (
            {
                let mut c = Circuit::new(2);
                c.ry(0.6, 0);
                c
            },
            "partial overlap",
        ),
    ];
    for (probe, name) in &probes {
        let r_swap = rate(probe, &[0, 1], &spec, Design::Swap, 1);
        let r_or = rate(probe, &[0, 1], &spec, Design::LogicalOr, 2);
        let r_ndd = rate(probe, &[0, 1], &spec, Design::Ndd, 3);
        // All three measure 1 − |⟨ψ|φ⟩|² for pure-state assertions.
        assert!(
            (r_swap - r_or).abs() < 0.03,
            "{name}: swap {r_swap} vs or {r_or}"
        );
        assert!(
            (r_swap - r_ndd).abs() < 0.03,
            "{name}: swap {r_swap} vs ndd {r_ndd}"
        );
    }
}

#[test]
fn designs_agree_on_mixed_state_specs() {
    let e = |i: usize| CVector::basis_state(4, i);
    let rho = CMatrix::outer(&e(0), &e(0))
        .scale(C64::from(0.5))
        .add(&CMatrix::outer(&e(3), &e(3)).scale(C64::from(0.5)))
        .unwrap();
    let spec = StateSpec::mixed(rho).unwrap();
    // Probe: partially inside the span.
    let mut probe = Circuit::new(2);
    probe.ry(1.0, 0); // cos|00⟩ + sin|10⟩: |00⟩ in span, |10⟩ not.
    let expect_fail = (0.5f64).sin().powi(2);
    for (design, seed) in [(Design::Swap, 4), (Design::LogicalOr, 5), (Design::Ndd, 6)] {
        let r = rate(&probe, &[0, 1], &spec, design, seed);
        assert!(
            (r - expect_fail).abs() < 0.03,
            "{design}: rate {r} vs expected {expect_fail}"
        );
    }
}

#[test]
fn bernstein_vazirani_checkpoint_supported_by_primitive_and_designs() {
    // The BV pre-Hadamard |±⟩-product state is assertable by the Primitive
    // baseline AND the systematic designs — and they agree.
    let n = 3;
    let mask = 0b110;
    let state = bernstein_vazirani::pre_hadamard_state(n, mask);
    let spec = StateSpec::pure(state).unwrap();
    assert!(
        primitive::supports(&spec).is_some(),
        "BV checkpoint must be primitive-assertable"
    );

    // Build the BV prefix (without final H layer).
    let mut prefix = Circuit::new(n + 1);
    prefix.x(n).h(n);
    for q in 0..n {
        prefix.h(q);
    }
    for q in 0..n {
        if (mask >> (n - 1 - q)) & 1 == 1 {
            prefix.cx(q, n);
        }
    }
    for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
        let r = rate(&prefix, &[0, 1, 2], &spec, design, 7);
        assert_eq!(r, 0.0, "{design} flagged a correct BV checkpoint");
    }
    // A wrong-mask program is flagged by all.
    let mut wrong = Circuit::new(n + 1);
    wrong.x(n).h(n);
    for q in 0..n {
        wrong.h(q);
    }
    wrong.cx(2, n); // mask 001 instead of 110
    for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
        let r = rate(&wrong, &[0, 1, 2], &spec, design, 8);
        assert!(r > 0.5, "{design} missed the BV mask bug: {r}");
    }
}

#[test]
fn grover_span_assertion_consistent_across_designs() {
    let n = 3;
    let target = 0b101;
    let dim = 1usize << n;
    let rest = {
        let amp = 1.0 / ((dim - 1) as f64).sqrt();
        let mut v = CVector::zeros(dim);
        for i in 0..dim {
            if i != target {
                v[i] = C64::from(amp);
            }
        }
        v
    };
    let span = StateSpec::set(vec![CVector::basis_state(dim, target), rest]).unwrap();
    for k in 0..3usize {
        let program = grover::grover(n, target, k).unwrap();
        for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
            let r = rate(&program, &[0, 1, 2], &span, design, 9);
            assert_eq!(r, 0.0, "{design} flagged Grover iteration {k}");
        }
    }
}

#[test]
fn auto_never_loses_to_fixed_designs() {
    let specs: Vec<StateSpec> = vec![
        StateSpec::pure(states::ghz_vector(3)).unwrap(),
        StateSpec::pure(states::w_vector(3)).unwrap(),
        StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)]).unwrap(),
        StateSpec::pure(CVector::basis_state(4, 2)).unwrap(),
    ];
    for spec in &specs {
        let auto = synthesize_assertion(spec, Design::Auto).unwrap();
        for d in [Design::Swap, Design::LogicalOr, Design::Ndd] {
            let fixed = synthesize_assertion(spec, d).unwrap();
            assert!(
                auto.gate_counts().cx <= fixed.gate_counts().cx,
                "auto lost to {d} on {spec:?}"
            );
        }
    }
}

#[test]
fn repeated_assertions_project_rather_than_amplify() {
    // Physics check on the paper's Fig. 17 discussion: a passing
    // approximate assertion PROJECTS the state into the set span, so a
    // second identical assertion in the same shot always passes — the
    // error rate does not amplify within a shot; amplification happens
    // across program reruns.
    use qra::algorithms::deutsch_jozsa::{constant_output_set, probe_circuit, Oracle};
    let set = StateSpec::set(constant_output_set(2)).unwrap();
    let mut circuit = probe_circuit(&Oracle::buggy_and(), 2).unwrap();
    let h1 = insert_assertion(&mut circuit, &[0, 1, 2], &set, Design::Ndd).unwrap();
    let h2 = insert_assertion(&mut circuit, &[0, 1, 2], &set, Design::Ndd).unwrap();
    let counts = StatevectorSimulator::with_seed(31)
        .run(&circuit, 8192)
        .unwrap();
    let r1 = h1.error_rate(&counts);
    // Conditioned on the first assertion passing, the second never fires.
    let (passed_first, _) = counts.post_select_zero(&h1.clbits);
    let r2_given_pass = passed_first.any_set_frequency(&h2.clbits);
    assert!(
        r1 > 0.2,
        "first assertion must fire probabilistically: {r1}"
    );
    assert!(
        r2_given_pass < 0.01,
        "projection must make the second assertion silent: {r2_given_pass}"
    );
}

#[test]
fn swap_design_uniquely_corrects_the_state() {
    // After a FAILING assertion, only the SWAP design leaves the test
    // qubits in the asserted state (it swaps in a fresh copy).
    let spec = StateSpec::pure(CVector::basis_state(2, 0)).unwrap();
    for (design, corrects) in [
        (Design::Swap, true),
        (Design::LogicalOr, false),
        (Design::Ndd, false),
    ] {
        let assertion = synthesize_assertion(&spec, design).unwrap();
        assert_eq!(assertion.corrects_state(), corrects);
        // Apply the assertion (gates only) to |1⟩ and inspect the test qubit.
        let total = 1 + assertion.num_ancillas();
        let mut full = Circuit::new(total);
        full.x(0);
        let mut stripped = Circuit::new(assertion.circuit().num_qubits());
        for inst in assertion.circuit().instructions() {
            if let Some(g) = inst.as_gate() {
                stripped.append(g.clone(), &inst.qubits).unwrap();
            }
        }
        let map: Vec<usize> = (0..total).collect();
        full.compose(&stripped, &map, &[]).unwrap();
        let sv = full.statevector().unwrap();
        let rho = CMatrix::outer(&sv, &sv);
        let traced: Vec<usize> = (1..total).collect();
        let test_qubit = rho.partial_trace(&traced).unwrap();
        let p0 = test_qubit.get(0, 0).re;
        if corrects {
            assert!(p0 > 0.99, "{design}: test qubit not corrected, p0={p0}");
        } else {
            assert!(
                p0 < 0.01,
                "{design}: test qubit unexpectedly reset, p0={p0}"
            );
        }
    }
}
